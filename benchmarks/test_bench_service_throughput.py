"""Service-layer throughput: concurrent warm-cache serving vs sequential execution.

Replays a mixed D1–D10 workload (three deterministic queries per dataset,
interleaved round-robin) two ways:

* **baseline** — sequential, cache-bypassing ``execute()`` calls, i.e. what a
  single-threaded caller paid before the service layer existed;
* **service** — the same operation stream through per-dataset
  :class:`repro.service.QueryService` instances with a warm result cache,
  each sized by the planner's
  :func:`~repro.engine.planner.default_service_workers` (scales with cores
  under the GIL-releasing numpy kernels, the historical 8 under pure
  Python); the executor configuration used lands in the benchmark's
  ``extra_info`` and with it in the ``BENCH_<run>.json`` artifact.

Both passes run against pre-built session artifacts, so the comparison is
steady-state serving, not construction.  The acceptance bar is a ≥2x
throughput win for the service path; the warm cache turns evaluations into
dictionary lookups, and ~4x is typical on the mixed workload.  p50/p95/p99
latencies of both passes land in the report.

Environment knobs
-----------------
``REPRO_BENCH_SERVICE_DATASETS``
    Comma-separated dataset ids to replay (default: all of D1–D10).
"""

from __future__ import annotations

import os

from repro.engine import Dataspace
from repro.service import QueryService, build_workload, replay_workload
from repro.workloads.datasets import DATASET_IDS

#: Required speedup of the warm concurrent service over sequential execution.
MIN_SPEEDUP = 2.0
#: Mapping-set size: small enough that all ten datasets stay cheap to build.
SERVICE_H = 25


def _datasets() -> list[str]:
    raw = os.environ.get("REPRO_BENCH_SERVICE_DATASETS", "")
    if raw.strip():
        return [item.strip().upper() for item in raw.split(",") if item.strip()]
    return list(DATASET_IDS)


def test_service_throughput(benchmark, experiment_report):
    datasets = _datasets()
    ops = build_workload(datasets, queries_per_dataset=3, repeats=3)

    sessions = {
        dataset_id: Dataspace.from_dataset(dataset_id, h=SERVICE_H)
        for dataset_id in datasets
    }
    # No explicit max_workers: the planner's backend-aware default sizes the
    # pool (cores-scaled under numpy, the historical 8 under pure Python).
    cached = {
        dataset_id: QueryService(session)
        for dataset_id, session in sessions.items()
    }
    concurrency = next(iter(cached.values())).executor_config()["max_workers"]
    uncached = {
        dataset_id: QueryService(session, max_workers=1, use_cache=False)
        for dataset_id, session in sessions.items()
    }
    try:
        # Build every session's artifacts outside the timed windows, so the
        # baseline measures steady-state sequential evaluation — not one-time
        # matching/mapping construction.  The default (compiled) plan needs
        # the compiled mapping set but no block tree.
        for session in sessions.values():
            session.snapshot(need_tree=False)
            session.compiled
        baseline = replay_workload(ops, concurrency=1, services=uncached)
        service = replay_workload(ops, concurrency=concurrency, services=cached, warm=True)

        def run_warm_round():
            replay_workload(ops, concurrency=concurrency, services=cached)

        benchmark.pedantic(run_warm_round, rounds=3, iterations=1)
        benchmark.extra_info["executor"] = next(iter(cached.values())).executor_config()
    finally:
        for item in list(cached.values()) + list(uncached.values()):
            item.close()

    speedup = (
        service.throughput_qps / baseline.throughput_qps
        if baseline.throughput_qps > 0
        else float("inf")
    )
    benchmark.extra_info["speedup"] = speedup
    report = experiment_report(
        "service_throughput",
        f"Concurrent warm-cache service vs sequential execute "
        f"({len(datasets)} datasets, {len(ops)} ops, |M|={SERVICE_H})",
    )
    report.add_row(
        "sequential",
        f"{baseline.throughput_qps:9.1f} q/s  "
        f"p50={baseline.latency_ms.get('p50', 0):.2f} ms  "
        f"p99={baseline.latency_ms.get('p99', 0):.2f} ms",
    )
    report.add_row(
        f"service c={concurrency}",
        f"{service.throughput_qps:9.1f} q/s  "
        f"p50={service.latency_ms.get('p50', 0):.2f} ms  "
        f"p99={service.latency_ms.get('p99', 0):.2f} ms",
    )
    report.add_row("speedup", f"{speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)")
    report.add_row(
        "cache",
        f"hits={service.cache['hits']} misses={service.cache['misses']}",
    )

    assert baseline.errors == 0 and service.errors == 0
    assert speedup >= MIN_SPEEDUP, (
        f"warm concurrent service is only {speedup:.2f}x the sequential baseline "
        f"({service.throughput_qps:.1f} vs {baseline.throughput_qps:.1f} q/s)"
    )
