"""Figure 10(b) — block-tree PTQ time Tq vs the confidence threshold τ (query Q10).

The paper observes a non-monotone shape: Tq rises as τ grows from very small
values (fewer c-blocks help less), then falls again for large τ (the few
remaining c-blocks are shared by many mappings and the decompose/merge
overhead shrinks).
"""

from __future__ import annotations

import pytest

from _workloads import (
    BlockTreeConfig,
    build_block_tree,
    build_mapping_set,
    evaluate_ptq_blocktree,
    load_query,
    load_source_document,
)

TAUS = [0.02, 0.12, 0.22, 0.32, 0.42, 0.52, 0.65]


@pytest.mark.parametrize("tau", TAUS)
def test_fig10b_query_time_vs_tau(benchmark, experiment_report, tau):
    mapping_set = build_mapping_set("D7", 100)
    document = load_source_document("D7")
    tree = build_block_tree(mapping_set, BlockTreeConfig(tau=tau))
    query = load_query("Q10")

    result = benchmark.pedantic(
        lambda: evaluate_ptq_blocktree(query, mapping_set, document, tree),
        rounds=5,
        iterations=1,
    )
    from _workloads import best_of, time_query

    elapsed, _ = best_of(3, evaluate_ptq_blocktree, query, mapping_set, document, tree)
    report = experiment_report(
        "fig10b", "Fig 10(b): block-tree Tq vs tau (Q10, D7, |M|=100; paper: rises then falls)"
    )
    report.add_row(
        f"tau={tau:<5}",
        f"Tq={elapsed * 1000:6.2f} ms  c-blocks={tree.num_blocks}",
    )
    assert len(result) > 0
