"""Figure 9(c) — distribution of c-block sizes.

The paper reports (for D7 with default parameters) that about half of the
c-blocks contain more than one correspondence, the largest covers ~25% of the
target schema, and the average size is ~5.  The benchmark times the block
tree build and reports the measured size distribution.
"""

from __future__ import annotations

from repro.stats.metrics import cblock_size_distribution, size_distribution_histogram

from _workloads import BlockTreeConfig, build_block_tree, build_mapping_set


def test_fig9c_block_size_distribution(benchmark, experiment_report):
    mapping_set = build_mapping_set("D7", 100)
    tree = benchmark.pedantic(
        lambda: build_block_tree(mapping_set, BlockTreeConfig()), rounds=3, iterations=1
    )
    histogram = size_distribution_histogram(tree)
    fractions = cblock_size_distribution(tree)
    sizes = [block.size for block in tree.iter_blocks()]
    multi = sum(1 for size in sizes if size > 1)

    report = experiment_report(
        "fig9c",
        "Fig 9(c): c-block size distribution (D7; paper: ~50% multi-correspondence, "
        "largest covers ~25% of target, mean ~5.3)",
    )
    report.add_row("histogram (size -> count)", dict(histogram))
    report.add_row("blocks with size > 1", f"{multi}/{len(sizes)} ({multi / len(sizes):.0%})")
    report.add_row("largest block", f"{max(sizes)} correspondences "
                                    f"({max(fractions):.1%} of target schema)")
    report.add_row("mean block size", f"{sum(sizes) / len(sizes):.2f}")
    assert max(sizes) >= 1
    assert multi > 0
