"""Figure 9(e) — block-tree construction time Tc vs the MAX_B budget.

Construction time grows with MAX_B until the number of c-blocks that *can*
be created is exhausted (the paper observes saturation above MAX_B ≈ 180),
after which a larger budget changes nothing.
"""

from __future__ import annotations

import pytest

from _workloads import BlockTreeConfig, build_block_tree, build_mapping_set

MAX_B_VALUES = [20, 60, 100, 160, 200, 260, 300]


@pytest.mark.parametrize("max_blocks", MAX_B_VALUES)
def test_fig9e_construction_vs_maxb(benchmark, experiment_report, max_blocks):
    mapping_set = build_mapping_set("D7", 100)
    config = BlockTreeConfig(tau=0.02, max_blocks=max_blocks)
    tree = benchmark.pedantic(
        lambda: build_block_tree(mapping_set, config), rounds=3, iterations=1
    )
    report = experiment_report(
        "fig9e",
        "Fig 9(e): construction time vs MAX_B (D7, tau=0.02; paper: grows then saturates)",
    )
    report.add_row(
        f"MAX_B={max_blocks:<4}",
        f"Tc={tree.construction_seconds * 1000:.1f} ms, non-leaf c-blocks={tree.non_leaf_blocks_created}",
    )
    assert tree.non_leaf_blocks_created <= max_blocks


def test_fig9e_saturation(experiment_report):
    mapping_set = build_mapping_set("D7", 100)
    small = build_block_tree(mapping_set, BlockTreeConfig(tau=0.02, max_blocks=20))
    large = build_block_tree(mapping_set, BlockTreeConfig(tau=0.02, max_blocks=10_000))
    report = experiment_report("fig9e", "Fig 9(e): construction time vs MAX_B")
    report.add_row(
        "saturation check",
        f"non-leaf blocks: MAX_B=20 -> {small.non_leaf_blocks_created}, "
        f"MAX_B=10000 -> {large.non_leaf_blocks_created}",
    )
    assert small.non_leaf_blocks_created <= large.non_leaf_blocks_created
