"""Figure 10(f) — top-h generation time Tg vs h on dataset D1: Murty vs partition.

The paper scales h from 100 to 1000 on D1 and reports the partition-based
approach improving over Murty by at least ~88% at every h.
"""

from __future__ import annotations

import pytest

from repro.mapping.generator import generate_top_h_mappings

from _workloads import load_dataset, time_query

H_VALUES = [100, 200, 400, 600, 800, 1000]


@pytest.mark.parametrize("h", H_VALUES)
def test_fig10f_generation_vs_h(benchmark, experiment_report, h):
    matching = load_dataset("D1").matching

    mapping_set = benchmark.pedantic(
        lambda: generate_top_h_mappings(matching, h, method="partition"),
        rounds=1,
        iterations=1,
    )

    partition_time, _ = time_query(generate_top_h_mappings, matching, h, method="partition")
    murty_time, _ = time_query(generate_top_h_mappings, matching, h, method="murty")
    improvement = 1.0 - partition_time / murty_time if murty_time > 0 else 0.0
    report = experiment_report(
        "fig10f",
        "Fig 10(f): Tg vs h on D1, murty vs partition (paper: improvement always > 87.97%)",
    )
    report.add_row(
        f"h={h:<5}",
        f"murty={murty_time:7.2f} s  partition={partition_time:7.2f} s  "
        f"improvement={improvement:6.1%}",
    )
    assert len(mapping_set) <= h
    assert partition_time < murty_time
