"""Cached workload builders shared by the benchmark modules.

Benchmarks reuse the library's own cached dataset loaders; this module adds a
few helpers (timed evaluation wrappers, environment-controlled scale knobs)
so individual benchmark files stay small.

Environment knobs
-----------------
``REPRO_BENCH_H``
    Number of top-h mappings used by the *generation* benchmarks
    (Fig. 10e).  Defaults to 50 so that the plain-Murty baseline over the
    full bipartite stays tractable on the largest datasets; set it to 100
    (the paper's value) for a longer, more faithful run.
"""

from __future__ import annotations

import os
import time

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree
from repro.workloads.datasets import build_mapping_set, load_dataset, load_source_document
from repro.workloads.queries import load_query

__all__ = [
    "bench_h",
    "build_block_tree",
    "BlockTreeConfig",
    "build_mapping_set",
    "load_dataset",
    "load_source_document",
    "load_query",
    "time_query",
    "evaluate_ptq_basic",
    "evaluate_ptq_blocktree",
]


def bench_h(default: int = 50) -> int:
    """Top-h used by the mapping-generation benchmarks (see module docs)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_H", default)))
    except ValueError:
        return default


def time_query(func, *args, **kwargs) -> tuple[float, object]:
    """Run ``func`` once and return (elapsed seconds, result)."""
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - started, result


def best_of(rounds: int, func, *args, **kwargs) -> tuple[float, object]:
    """Run ``func`` ``rounds`` times; return (best elapsed seconds, last result).

    Used for the per-query report rows, where a single measurement of a
    millisecond-scale evaluation is too noisy to compare algorithms fairly.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, rounds)):
        elapsed, result = time_query(func, *args, **kwargs)
        best = min(best, elapsed)
    return best, result
