"""Warm-reopen speedup gate: loading from the artifact store vs a cold build.

The persistent artifact store's performance claim (ISSUE 6) is that a
``Dataspace`` reopened from a populated :class:`SqliteBlockStore` *loads*
its artifacts — verified, deserialized, attached — instead of re-running
the matcher, the top-h generator and the compiler.  This gate pins it on
the paper's headline dataset: a warm reopen of **D7** (h = 100) must beat
the cold build it replaces by **≥20x**.

Design notes for CI (this file runs in the workflow's perf-trajectory job):

* **ratio-only assertion** — both sides are timed in one process on the
  same machine, so absolute speed cancels out;
* **honest cold side** — every cold round first clears the workload layer's
  ``lru_cache``s (dataset, mapping set, source document), because those
  in-process caches are exactly what a restarted process does *not* have;
  the session is then driven to a full snapshot plus a compiled query, the
  same end state the warm side restores;
* **byte-identity sanity** — before timing, the reopened session's answers
  are asserted equal to the cold session's, so the speedup being gated
  belongs to an *exact* reopen path.
"""

from __future__ import annotations

from repro.engine import Dataspace
from repro.matching import similarity
from repro.schema import corpus as schema_corpus
from repro.store import ArtifactStore, SqliteBlockStore
from repro.workloads import datasets as workload_datasets

from _workloads import best_of

#: Required speedup of a warm store reopen over a cold build.
MIN_SPEEDUP = 20.0
DATASET = "D7"
NUM_MAPPINGS = 100
QUERY = "Q7"
TOP_K = 10
#: Timed rounds per side (best-of).  Cold rounds rebuild the matcher each
#: time (~seconds), so two rounds keep the gate's wall-clock in budget.
ROUNDS = 2


def answer_set(result):
    return {(a.mapping_id, a.matches, a.probability) for a in result}


def clear_workload_caches() -> None:
    """Forget the in-process workload artifacts, like a process restart.

    Besides the workload layer's dataset/mapping-set/document memos this
    also clears the corpus-schema memo and the matcher's string-similarity
    memos — the matcher is the dominant cold cost, and leaving its caches
    warm would flatter the cold side the store is competing against.
    """
    workload_datasets._load_dataset_cached.cache_clear()
    workload_datasets._build_mapping_set_cached.cache_clear()
    workload_datasets._load_source_document_cached.cache_clear()
    schema_corpus._load_corpus_schema_cached.cache_clear()
    similarity.tokenize.cache_clear()
    similarity.normalize_tokens.cache_clear()
    similarity.name_similarity.cache_clear()
    similarity.path_similarity.cache_clear()


def drive(session: Dataspace):
    """Force the full artifact pipeline and answer the gate query."""
    session.snapshot()
    session.compiled
    return session.execute(QUERY, k=TOP_K, use_cache=False)


def test_store_reopen_speedup(benchmark, experiment_report, tmp_path):
    path = str(tmp_path / "bench-store.db")

    # Populate the store once (untimed) and keep the cold answers around.
    clear_workload_caches()
    with SqliteBlockStore(path) as blocks:
        store = ArtifactStore(blocks)
        session = Dataspace.from_dataset(DATASET, h=NUM_MAPPINGS, store=store)
        cold_answers = answer_set(drive(session))
        session.persist()

        # Sanity: a reopened session answers byte-identically before any
        # timing starts, and its artifacts really came from the store.
        reopened = Dataspace.from_dataset(DATASET, h=NUM_MAPPINGS, store=store)
        provenance = reopened.artifact_provenance()
        assert provenance["matching"]["source"] == "loaded", provenance
        assert answer_set(drive(reopened)) == cold_answers

    def cold_round():
        clear_workload_caches()
        drive(Dataspace.from_dataset(DATASET, h=NUM_MAPPINGS))

    def warm_round():
        clear_workload_caches()
        with SqliteBlockStore(path) as blocks:
            drive(
                Dataspace.from_dataset(
                    DATASET, h=NUM_MAPPINGS, store=ArtifactStore(blocks)
                )
            )

    cold_time, _ = best_of(ROUNDS, cold_round)
    warm_time, _ = best_of(ROUNDS, warm_round)
    speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    # Record the warm round in the pytest-benchmark JSON so the CI
    # perf-trajectory artifact carries an absolute series for this gate too.
    benchmark.pedantic(warm_round, rounds=ROUNDS, iterations=1)

    report = experiment_report(
        "store_reopen",
        f"warm reopen from SqliteBlockStore vs cold build ({DATASET}, "
        f"h={NUM_MAPPINGS}, snapshot + compile + {QUERY} top-{TOP_K})",
    )
    report.add_row("cold build + query", f"{cold_time * 1000:8.2f} ms per round")
    report.add_row("warm reopen + query", f"{warm_time * 1000:8.2f} ms per round")
    report.add_row("speedup", f"{speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"warm store reopen is only {speedup:.2f}x a cold build "
        f"({warm_time * 1000:.2f} ms vs {cold_time * 1000:.2f} ms)"
    )
