"""Delta-update speedup gate: ``apply_delta`` vs full rebuild + re-warm.

The delta engine's performance claim (ISSUE 5) is that evolving the mapping
set is a *cheap delta*, not a cold restart.  This gate pins it on the
paper's headline dataset: a structural delta touching **10 of 100 mappings**
(≤10%) must beat a full rebuild of the same state by **≥5x**, where both
sides end fully re-warmed:

* **delta side** — one ``apply_delta`` (incremental recompilation: only the
  touched posting lists and target columns are edited) followed by
  re-running the warmed query set; the edits hit target elements outside
  every query's required set, so the delta-aware cache retains each cached
  result after one bitwise-AND check instead of re-evaluating;
* **rebuild side** — what changing the mapping set cost before deltas
  existed: construct a fresh (fully validated) ``MappingSet`` holding the
  same patched mappings, compile it from scratch, open a fresh session and
  re-evaluate every query cold.

Design notes for CI (this file runs in the workflow's perf-trajectory job):

* **ratio-only assertion** — both sides are timed in one process on the
  same machine, so absolute speed cancels out;
* **alternating edits** — timed delta rounds alternately retract and
  restore the same 10 correspondences, so every round does real structural
  work and the state flips between two fixed points;
* **byte-identity sanity** — before timing, the delta-applied session's
  answers are asserted equal to the rebuilt-from-scratch session's, so the
  speedup being gated belongs to an *exact* update path.
"""

from __future__ import annotations

from repro.engine import Dataspace, MappingDelta
from repro.mapping.mapping_set import MappingSet
from repro.workloads.queries import load_query

from _workloads import best_of

#: Required speedup of the delta path over a full rebuild + re-warm.
MIN_SPEEDUP = 5.0
#: Mapping-set size and the number of mappings each delta touches (<=10%).
NUM_MAPPINGS = 100
TOUCHED = 10
#: Timed rounds per side (best-of).
ROUNDS = 4

#: The paper's ten Table III queries, as twig objects so the rebuilt
#: reference session (which is not dataset-bound and would otherwise parse
#: "Q1" as a literal label) evaluates exactly the same queries.  Each is
#: warmed both unrestricted and with a top-k restriction, so the cache
#: holds two entries per query.
QUERIES = tuple(load_query(f"Q{i}") for i in range(1, 11))
TOP_K = 10


def answer_set(result):
    return {(a.mapping_id, a.matches, a.probability) for a in result}


def warm(session) -> None:
    for query in QUERIES:
        session.execute(query)
        session.execute(query, k=TOP_K)


def pick_edits(session) -> list:
    """One removable pair per touched mapping, outside every query's targets.

    The point of the delta engine is that *localised* evolution keeps
    unrelated work warm — so the benchmark's deltas edit correspondences
    whose target elements no benchmark query requires, which is exactly the
    case the retain check is built to recognise.
    """
    query_targets = 0
    for query in QUERIES:
        query_targets |= session.prepare(query).required_target_mask()
    edits = []
    for mapping in session.mapping_set:
        for pair in sorted(mapping.correspondences):
            if not (query_targets >> pair[1]) & 1:
                edits.append((mapping.mapping_id, pair))
                break
        if len(edits) == TOUCHED:
            break
    assert len(edits) == TOUCHED, (
        f"could only find {len(edits)} of {TOUCHED} edit sites outside the "
        "query target set"
    )
    return edits


def test_delta_update_speedup(benchmark, experiment_report):
    session = Dataspace.from_dataset("D7", h=NUM_MAPPINGS)
    warm(session)
    edits = pick_edits(session)
    removed = [False]  # alternates each timed round

    # Sanity: the delta-applied state answers exactly like a from-scratch
    # rebuild of the same mappings, for every query, before anything is timed.
    session.apply_delta(MappingDelta.build(remove=edits))
    reference = Dataspace.from_mapping_set(
        MappingSet(session.mapping_set.matching, session.mapping_set.mappings,
                   normalize=False),
        document=session.document,
    )
    for query in QUERIES:
        assert answer_set(session.execute(query, use_cache=False)) == answer_set(
            reference.execute(query, use_cache=False)
        ), f"delta-applied state diverges from rebuild for {query}"
    session.apply_delta(MappingDelta.build(add=edits))
    warm(session)  # back at the warmed fixed point

    def delta_round():
        delta = (
            MappingDelta.build(add=edits)
            if removed[0]
            else MappingDelta.build(remove=edits)
        )
        removed[0] = not removed[0]
        session.apply_delta(delta)
        warm(session)

    def rebuild_round():
        current = session.mapping_set
        rebuilt = MappingSet(current.matching, current.mappings, normalize=False)
        fresh = Dataspace.from_mapping_set(rebuilt, document=session.document)
        rebuilt.compile()
        warm(fresh)

    delta_time, _ = best_of(ROUNDS, delta_round)
    rebuild_time, _ = best_of(ROUNDS, rebuild_round)
    speedup = rebuild_time / delta_time if delta_time > 0 else float("inf")
    # Record the delta round in the pytest-benchmark JSON so the CI
    # perf-trajectory artifact carries an absolute series for this gate too.
    benchmark.pedantic(delta_round, rounds=ROUNDS, iterations=1)

    retained = session.result_cache.stats().retained
    report = experiment_report(
        "delta_update",
        f"apply_delta ({TOUCHED}/{NUM_MAPPINGS} mappings) vs full rebuild + "
        f"re-warm (D7, {len(QUERIES)} queries x2 cache entries)",
    )
    report.add_row("delta + re-warm", f"{delta_time * 1000:8.2f} ms per round")
    report.add_row("rebuild + re-warm", f"{rebuild_time * 1000:8.2f} ms per round")
    report.add_row("speedup", f"{speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)")
    report.add_row("cache entries retained", retained)

    assert retained >= len(QUERIES), (
        "the delta rounds were expected to retain cached results "
        f"({retained} retained)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"apply_delta is only {speedup:.2f}x a full rebuild + re-warm "
        f"({delta_time * 1000:.2f} ms vs {rebuild_time * 1000:.2f} ms)"
    )
