"""Figure 9(a) — compression ratio of the block tree vs the confidence threshold τ.

For D7 with |M| = 100, the paper reports ~14.6% space saving at τ = 0.2,
dropping as τ grows (fewer c-blocks are created).  The benchmark times the
block-tree construction at each τ and reports the measured compression ratio.
"""

from __future__ import annotations

import pytest

from _workloads import BlockTreeConfig, build_block_tree, build_mapping_set

TAUS = [0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


@pytest.mark.parametrize("tau", TAUS)
def test_fig9a_compression_ratio(benchmark, experiment_report, tau):
    mapping_set = build_mapping_set("D7", 100)
    tree = benchmark.pedantic(
        lambda: build_block_tree(mapping_set, BlockTreeConfig(tau=tau)),
        rounds=3,
        iterations=1,
    )
    ratio = tree.compression_ratio()
    report = experiment_report(
        "fig9a", "Fig 9(a): compression ratio vs tau (D7, |M|=100; paper: ~11-15%, peak at small tau)"
    )
    report.add_row(f"tau={tau:<4}", f"compression={ratio:6.2%}  c-blocks={tree.num_blocks}")
    assert -1.0 < ratio < 1.0


def test_fig9a_ratio_decreases_with_tau(experiment_report):
    mapping_set = build_mapping_set("D7", 100)
    low = build_block_tree(mapping_set, BlockTreeConfig(tau=0.05)).compression_ratio()
    high = build_block_tree(mapping_set, BlockTreeConfig(tau=0.9)).compression_ratio()
    report = experiment_report("fig9a", "Fig 9(a): compression ratio vs tau")
    report.add_row("shape check", f"ratio(tau=0.05)={low:.2%} >= ratio(tau=0.9)={high:.2%}")
    assert low >= high
