"""Ablation — the block tree's hash table / anchored-subtree lookup.

Algorithm 4 uses the hash table H to find the highest block-tree node whose
c-blocks cover a query subtree; without it, the query decomposes all the way
down to the leaves and only leaf-level c-blocks can be shared.  This ablation
quantifies how much of the block-tree speed-up comes from anchored subtrees
versus leaf-level sharing.
"""

from __future__ import annotations

import copy

import pytest

from repro.workloads.queries import QUERY_IDS

from _workloads import (
    build_block_tree,
    build_mapping_set,
    evaluate_ptq_blocktree,
    load_query,
    load_source_document,
    best_of,
    time_query,
)


def _tree_without_non_leaf_anchors(tree):
    """A shallow variant of the block tree whose hash table only lists leaves."""
    stripped = copy.copy(tree)
    stripped.hash_table = {
        path: node
        for path, node in tree.hash_table.items()
        if tree.target_schema.element_by_path(path).is_leaf
    }
    return stripped


@pytest.mark.parametrize("query_id", ["Q1", "Q5", "Q7", "Q10"])
def test_ablation_hashtable(benchmark, experiment_report, query_id):
    mapping_set = build_mapping_set("D7", 100)
    document = load_source_document("D7")
    full_tree = build_block_tree(mapping_set)
    leaf_only_tree = _tree_without_non_leaf_anchors(full_tree)
    query = load_query(query_id)

    result = benchmark.pedantic(
        lambda: evaluate_ptq_blocktree(query, mapping_set, document, full_tree),
        rounds=5,
        iterations=1,
    )

    full_time, full_result = best_of(3, 
        evaluate_ptq_blocktree, query, mapping_set, document, full_tree
    )
    leaf_time, leaf_result = best_of(3, 
        evaluate_ptq_blocktree, query, mapping_set, document, leaf_only_tree
    )
    report = experiment_report(
        "ablation-hashtable",
        "Ablation: anchored-subtree lookup (full hash table) vs leaf-only c-block sharing",
    )
    report.add_row(
        query_id,
        f"full={full_time * 1000:6.1f} ms  leaf-only={leaf_time * 1000:6.1f} ms",
    )
    # The ablation must never change answers, only timings.
    assert {(a.mapping_id, a.matches) for a in full_result} == {
        (a.mapping_id, a.matches) for a in leaf_result
    }
    assert len(result) == len(full_result)
