"""Figure 10(d) — top-k PTQ vs ordinary PTQ, varying k (query Q10, |M| = 100).

The paper reports that the top-k constraint improves query time dramatically
for small k (90.3% at k = 10) and converges to the full PTQ cost as k
approaches |M|.
"""

from __future__ import annotations

import pytest

from repro.query.topk import evaluate_topk_ptq

from _workloads import (
    build_block_tree,
    build_mapping_set,
    evaluate_ptq_blocktree,
    load_query,
    load_source_document,
    best_of,
    time_query,
)

K_VALUES = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]


@pytest.mark.parametrize("k", K_VALUES)
def test_fig10d_topk_query_time(benchmark, experiment_report, k):
    mapping_set = build_mapping_set("D7", 100)
    document = load_source_document("D7")
    tree = build_block_tree(mapping_set)
    query = load_query("Q10")

    result = benchmark.pedantic(
        lambda: evaluate_topk_ptq(query, mapping_set, document, k=k, block_tree=tree),
        rounds=5,
        iterations=1,
    )
    elapsed_normal, _ = best_of(3, evaluate_ptq_blocktree, query, mapping_set, document, tree)
    elapsed_topk, _ = best_of(3, 
        evaluate_topk_ptq, query, mapping_set, document, k=k, block_tree=tree
    )
    saving = 1.0 - elapsed_topk / elapsed_normal if elapsed_normal > 0 else 0.0
    report = experiment_report(
        "fig10d",
        "Fig 10(d): top-k PTQ vs normal PTQ (Q10, D7, |M|=100; paper: ~90% faster at k=10)",
    )
    report.add_row(
        f"k={k:<4}",
        f"normal={elapsed_normal * 1000:6.1f} ms  top-k={elapsed_topk * 1000:6.1f} ms  "
        f"saving={saving:5.1%}",
    )
    assert len(result) <= k
