"""Kernel-backend speedup gate: numpy vs pure-Python kernels on D9/D10.

ISSUE 7 moved the compiled core's hot loops behind the :class:`Kernels`
interface and added a numpy backend (``uint64`` word matrices, contiguous
``float64`` probability column).  This gate times the *kernel-dominated
columnar sweep* — rewrite-group refinement with per-group probability mass,
probability gather/accumulation over every target's coverage mask, and the
batched popcount statistics — on the two largest golden datasets (D9/D10,
``|M| = 619``, ten ``uint64`` words per mask), once per backend, and
requires the numpy backend to be at least ``MIN_SPEEDUP`` (5x) faster.

Design notes for CI (this file runs in the workflow's benchmark job, which
installs numpy; on a numpy-less interpreter the module skips):

* **ratio-only assertion** — both backends run the identical sweep in the
  same process on the same compiled artifact (the neutral columns are
  shared by construction), so machine speed cancels out and the gate is
  stable across hosts;
* **byte-identity first** — before anything is timed, the sweep's full
  result (group masks, ``float.hex()`` probability masses, gathered
  probability lists, popcounts) is asserted equal across backends, so the
  gate can never pass on a backend that is fast but wrong;
* **warm measurements** — mapping-set generation, compilation and each
  backend's column binding happen before the timed windows, so neither side
  pays one-time construction;
* **best-of timing** — each backend's sweep is timed a few times and the
  best run kept, suppressing scheduler noise without long benchmark loops.
"""

from __future__ import annotations

import pytest

from repro.engine.kernels import available_backends
from repro.workloads.datasets import build_mapping_set

from _workloads import best_of

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(), reason="numpy not importable"
)

#: Required speedup of the numpy kernels over the pure-Python kernels.
MIN_SPEEDUP = 5.0
#: The two largest golden datasets (Table II): 619 mappings → 10 words.
DATASET_IDS = ("D9", "D10")
NUM_MAPPINGS = 619
#: Timed rounds per backend (best-of).
ROUNDS = 3
#: Rewrite-group refinements per sweep (consecutive target triples).
NUM_REFINEMENTS = 10


def kernel_sweep(compiled, targets, required_lists):
    """One pass over the backend-differentiated kernel operations.

    Returns a canonical result list (masks as ints, floats via ``hex()``)
    so the identical sweep on another backend must produce an equal value —
    the byte-identity contract the differential suite pins, asserted here
    again right next to the timing.
    """
    result = []
    for required in required_lists:
        groups = compiled.rewrite_groups(required)
        result.append(
            tuple(
                (group_mask, compiled.probability_of_mask(group_mask).hex())
                for group_mask, _ in groups
            )
        )
    for target_id in targets:
        mask = compiled.covered_mask(target_id)
        result.append(compiled.probability_of_mask(mask).hex())
        result.append(compiled.probability_of_mask(mask & (mask >> 1)).hex())
        result.append(tuple(compiled.probabilities_of(mask)))
    result.append(tuple(compiled.kernels.popcounts(compiled._pair_masks.values())))
    result.append(compiled.max_probability().hex())
    return result


@pytest.mark.parametrize("dataset_id", DATASET_IDS)
def test_numpy_kernel_speedup(dataset_id, benchmark, experiment_report):
    mapping_set = build_mapping_set(dataset_id, num_mappings=NUM_MAPPINGS)
    python = mapping_set.compile("python")
    numpy = mapping_set.compile("numpy")
    assert python._pair_masks is numpy._pair_masks, "variants must share columns"

    targets = sorted(python._covered_masks)
    required_lists = [
        targets[i : i + 3] for i in range(0, 3 * NUM_REFINEMENTS, 3)
    ]

    # Warm both backends outside the timed windows (binds the columnar
    # state) and pin byte-identity before any timing happens.
    python_result = kernel_sweep(python, targets, required_lists)
    numpy_result = kernel_sweep(numpy, targets, required_lists)
    assert numpy_result == python_result, (
        f"{dataset_id}: kernel sweep diverges across backends — the gate "
        "refuses to time a backend that is fast but wrong"
    )

    def run_python():
        return kernel_sweep(python, targets, required_lists)

    def run_numpy():
        return kernel_sweep(numpy, targets, required_lists)

    python_time, _ = best_of(ROUNDS, run_python)
    numpy_time, _ = best_of(ROUNDS, run_numpy)
    speedup = python_time / numpy_time if numpy_time > 0 else float("inf")
    # Record the numpy sweep in the pytest-benchmark JSON so the CI
    # perf-trajectory artifact carries an absolute series for this gate too.
    benchmark.pedantic(run_numpy, rounds=ROUNDS, iterations=1)

    report = experiment_report(
        "kernel_backends",
        f"numpy vs pure-Python kernels (D9/D10, |M|={NUM_MAPPINGS}, 10 words)",
    )
    report.add_row(
        f"{dataset_id} python", f"{python_time * 1000:8.1f} ms per kernel sweep"
    )
    report.add_row(
        f"{dataset_id} numpy", f"{numpy_time * 1000:8.1f} ms per kernel sweep"
    )
    report.add_row(
        f"{dataset_id} speedup", f"{speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"{dataset_id}: numpy kernels are only {speedup:.2f}x the pure-Python "
        f"kernels ({numpy_time * 1000:.1f} ms vs {python_time * 1000:.1f} ms)"
    )
