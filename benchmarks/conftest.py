"""Shared infrastructure for the benchmark harness.

Each benchmark module reproduces one table or figure of the paper's
evaluation section.  Besides the pytest-benchmark timings, benchmarks record
the rows/series the paper reports (capacities, o-ratios, compression ratios,
block counts, query times, generation times) through the ``experiment_report``
fixture; everything recorded is printed in the terminal summary so a single
``pytest benchmarks/ --benchmark-only`` run shows the reproduced artefacts
next to the timing table.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

#: experiment id -> list of (label, value) rows, in insertion order.
_REPORTS: "OrderedDict[str, list[tuple[str, str]]]" = OrderedDict()


class ExperimentReport:
    """Collects human-readable result rows for one experiment (table/figure)."""

    def __init__(self, experiment_id: str, title: str) -> None:
        self.experiment_id = experiment_id
        if experiment_id not in _REPORTS:
            _REPORTS[experiment_id] = []
            _REPORTS[experiment_id].append(("__title__", title))

    def add_row(self, label: str, value) -> None:
        """Record one labelled value (printed verbatim in the summary)."""
        _REPORTS[self.experiment_id].append((label, str(value)))


@pytest.fixture()
def experiment_report():
    """Factory fixture: ``experiment_report("fig9a", "Compression vs tau")``."""
    return ExperimentReport


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: ARG001
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction report")
    for experiment_id, rows in _REPORTS.items():
        title = next((value for label, value in rows if label == "__title__"), experiment_id)
        terminalreporter.write_line("")
        terminalreporter.write_line(f"[{experiment_id}] {title}")
        for label, value in rows:
            if label == "__title__":
                continue
            terminalreporter.write_line(f"    {label}: {value}")
