"""Cost-based planner gates: never slower than the fixed default, and faster
where the fixed default is wrong.

Two ratio-only gates for the adaptive planner
(:mod:`repro.engine.planner`), both asserting relative speeds measured in one
process so machine speed cancels out:

* **never-slower** — on the paper's D7/D9/D10 workloads the cost-routed
  ``execute()`` must stay within ``NO_REGRESSION_TOLERANCE`` of a forced
  ``compiled`` run.  The cost model is conservative by design (a cold query
  runs the fixed default; a challenger must beat a *measured* default by the
  decision margin), so routing overhead is the only thing this can lose —
  a few dictionary lookups per query.

* **adaptive speedup** — on the skewed catalogue workload (the scatter
  benchmark's high-fanout document, where the scatter-gather route beats the
  in-process compiled plan super-linearly), one ``calibrate()`` pass must
  teach the planner to route ``execute()`` at least ``MIN_ADAPTIVE_SPEEDUP``
  faster than the fixed plan — with byte-identical answers, asserted before
  timing.

Both measured ratios land in ``extra_info`` and therefore in the CI
``BENCH_<run>.json`` trajectory artifact.
"""

from __future__ import annotations

from repro.engine import Dataspace

from _workloads import best_of
from test_bench_corpus_scatter import (
    NUM_SHARDS,
    QUERIES as CATALOGUE_QUERIES,
    build_workload as build_catalogue,
)

#: The cost-routed path may not be slower than the fixed default by more than
#: this factor on the paper workloads (covers timer noise, nothing else).
NO_REGRESSION_TOLERANCE = 1.1
#: Required speedup of the cost-routed path on the skewed catalogue workload.
MIN_ADAPTIVE_SPEEDUP = 1.5
#: Paper datasets the never-slower gate replays.
DATASETS = ("D7", "D9", "D10")
#: Mapping-set size for the paper datasets (cheap to build for all three).
PLANNER_H = 25
#: Timed rounds per side (best-of).  The no-regression sweeps are
#: sub-millisecond, so the best-of needs enough rounds to shake scheduler
#: noise out of both sides of the ratio.
ROUNDS = 9
#: Executions of each query inside one timed no-regression sweep — a longer
#: timed window shrinks the relative timer noise the ratio tolerance absorbs.
SWEEP_REPEATS = 3


def _dataset_queries(dataset_id: str) -> list[str]:
    from repro.service import workload_queries

    return workload_queries(dataset_id, limit=4)


def test_planner_never_slower_than_fixed(benchmark, experiment_report):
    report = experiment_report(
        "planner_no_regression",
        f"Cost-routed execute vs forced compiled plan "
        f"({', '.join(DATASETS)}, |M|={PLANNER_H}, best of {ROUNDS})",
    )
    ratios: dict[str, float] = {}
    sessions: dict[str, Dataspace] = {}
    for dataset_id in DATASETS:
        session = Dataspace.from_dataset(dataset_id, h=PLANNER_H)
        sessions[dataset_id] = session
        queries = _dataset_queries(dataset_id)
        session.snapshot(need_tree=False)
        session.compiled

        def fixed_sweep():
            for _ in range(SWEEP_REPEATS):
                for query in queries:
                    session.execute(query, plan="compiled", use_cache=False)

        def routed_sweep():
            for _ in range(SWEEP_REPEATS):
                for query in queries:
                    session.execute(query, use_cache=False)

        # The fixed sweep warms resolve/filter memos; the first routed sweep
        # then feeds the planner its first measurements — exactly the
        # serving-traffic sequence the conservative model is designed for.
        fixed_time, _ = best_of(ROUNDS, fixed_sweep)
        routed_time, _ = best_of(ROUNDS, routed_sweep)
        ratio = routed_time / fixed_time if fixed_time > 0 else 1.0
        ratios[dataset_id] = ratio
        report.add_row(
            dataset_id,
            f"fixed {fixed_time * 1000:7.2f} ms  routed {routed_time * 1000:7.2f} ms  "
            f"ratio {ratio:.2f} (allowed <= {NO_REGRESSION_TOLERANCE:.2f})",
        )

    worst_dataset = max(ratios, key=ratios.get)

    def run_all_routed():
        for dataset_id, session in sessions.items():
            for query in _dataset_queries(dataset_id):
                session.execute(query, use_cache=False)

    benchmark.pedantic(run_all_routed, rounds=3, iterations=1)
    benchmark.extra_info["ratios"] = ratios
    benchmark.extra_info["worst_ratio"] = ratios[worst_dataset]

    assert ratios[worst_dataset] <= NO_REGRESSION_TOLERANCE, (
        f"cost-routed execution on {worst_dataset} is "
        f"{ratios[worst_dataset]:.2f}x the fixed compiled plan "
        f"(allowed <= {NO_REGRESSION_TOLERANCE:.2f}x)"
    )


def test_planner_adaptive_speedup(benchmark, experiment_report):
    session = build_catalogue()
    queries = CATALOGUE_QUERIES

    # Byte-identity before timing: the cost-routed answers must serialize
    # exactly like the forced default's, whatever strategy the model picks.
    fixed_answers = {
        query: sorted(
            (a.mapping_id, a.matches, a.probability.hex())
            for a in session.execute(query, plan="compiled", use_cache=False)
        )
        for query in queries
    }

    def fixed_sweep():
        for query in queries:
            session.execute(query, plan="compiled", use_cache=False)

    fixed_time, _ = best_of(ROUNDS, fixed_sweep)

    # One calibration pass measures every strategy, including scatter-gather
    # at the catalogue's shard count — the skewed workload where the fixed
    # in-process default is the wrong choice.
    calibrations = {query: session.calibrate(query, shard_counts=(NUM_SHARDS,)) for query in queries}
    decisions = {
        query: session.plan_decision(session.prepare(query), allow_scatter=True)
        for query in queries
    }

    for query in queries:
        routed = sorted(
            (a.mapping_id, a.matches, a.probability.hex())
            for a in session.execute(query, use_cache=False)
        )
        assert routed == fixed_answers[query], (
            f"cost-routed answers diverge for {query} "
            f"(chose {decisions[query].plan_name})"
        )

    def routed_sweep():
        for query in queries:
            session.execute(query, use_cache=False)

    routed_time, _ = best_of(ROUNDS, routed_sweep)
    speedup = fixed_time / routed_time if routed_time > 0 else float("inf")

    benchmark.pedantic(routed_sweep, rounds=ROUNDS, iterations=1)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["decisions"] = {
        query: decisions[query].plan_name for query in queries
    }

    report = experiment_report(
        "planner_adaptive",
        f"Cost-routed execute vs forced compiled on the skewed catalogue "
        f"workload ({len(queries)} queries, calibrated with "
        f"{NUM_SHARDS}-shard scatter)",
    )
    report.add_row("fixed compiled", f"{fixed_time * 1000:8.1f} ms per sweep")
    report.add_row("cost-routed", f"{routed_time * 1000:8.1f} ms per sweep")
    report.add_row(
        "speedup", f"{speedup:.1f}x (required >= {MIN_ADAPTIVE_SPEEDUP:.1f}x)"
    )
    for query in queries:
        timings = ", ".join(
            f"{name}={ms:.1f}" for name, ms in sorted(calibrations[query].items())
        )
        report.add_row(query, f"{decisions[query].plan_name}  [{timings} ms]")

    assert speedup >= MIN_ADAPTIVE_SPEEDUP, (
        f"cost-routed execution is only {speedup:.2f}x the fixed compiled plan "
        f"on the skewed workload ({routed_time * 1000:.1f} ms vs "
        f"{fixed_time * 1000:.1f} ms); decisions: "
        + ", ".join(f"{q}->{d.plan_name}" for q, d in decisions.items())
    )
