"""Figure 10(a) — PTQ running time Tq for Q1-Q10 with a larger mapping set (|M| = 500).

Same comparison as Figure 9(f); the paper observes that the block-tree
advantage persists for larger mapping sets.
"""

from __future__ import annotations

import pytest

from repro.workloads.queries import QUERY_IDS

from _workloads import (
    build_block_tree,
    build_mapping_set,
    evaluate_ptq_basic,
    evaluate_ptq_blocktree,
    load_query,
    load_source_document,
    best_of,
    time_query,
)


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_fig10a_query_time_m500(benchmark, experiment_report, query_id):
    mapping_set = build_mapping_set("D7", 500)
    document = load_source_document("D7")
    tree = build_block_tree(mapping_set)
    query = load_query(query_id)

    result = benchmark.pedantic(
        lambda: evaluate_ptq_blocktree(query, mapping_set, document, tree),
        rounds=3,
        iterations=1,
    )

    elapsed_basic, reference = best_of(3, evaluate_ptq_basic, query, mapping_set, document)
    elapsed_tree, _ = best_of(3, evaluate_ptq_blocktree, query, mapping_set, document, tree)
    saving = 1.0 - elapsed_tree / elapsed_basic if elapsed_basic > 0 else 0.0
    report = experiment_report(
        "fig10a",
        "Fig 10(a): Tq per query, basic vs block-tree (D7, |M|=500; paper: block-tree still wins)",
    )
    report.add_row(
        query_id,
        f"basic={elapsed_basic * 1000:6.1f} ms  block-tree={elapsed_tree * 1000:6.1f} ms  "
        f"saving={saving:5.1%}",
    )
    assert len(result) == len(reference)
