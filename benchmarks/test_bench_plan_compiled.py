"""Compiled-plan speedup gate: ``compiled`` vs a warmed ``basic`` plan on D7.

The compiled plan groups the relevant mappings of a query by identical
rewrite and evaluates each distinct rewrite exactly once; on the paper's
query workload (Table III over D7, |M|=100) the top-100 mappings collapse
into a handful of distinct rewrites per query, so evaluation cost drops by
roughly that sharing factor.

Design notes for CI (this file runs as a smoke check in the workflow's
benchmark job):

* **ratio-only assertion** — both plans are timed in the same process on the
  same warmed session, so machine speed cancels out and the gate
  (``MIN_SPEEDUP``, ≥3x) is stable across hosts;
* **warm measurements** — artifacts, prepared queries, the compiled artifact
  and both plans' code paths are exercised once before timing, so neither
  side pays one-time construction; the session result cache is bypassed so
  real evaluation is measured;
* **best-of timing** — each plan's full ten-query sweep is timed a few times
  and the best run kept, which suppresses scheduler noise without long
  benchmark loops.
"""

from __future__ import annotations

from repro.engine import Dataspace
from repro.workloads.queries import QUERY_IDS

from _workloads import best_of

#: Required speedup of the compiled plan over the warmed basic plan.
MIN_SPEEDUP = 3.0
#: The paper's headline dataset and mapping-set size.
DATASET_ID = "D7"
NUM_MAPPINGS = 100
#: Timed rounds per plan (best-of).
ROUNDS = 3


def test_compiled_plan_speedup_d7(benchmark, experiment_report):
    session = Dataspace.from_dataset(DATASET_ID, h=NUM_MAPPINGS)
    prepared = [session.prepare(query_id) for query_id in QUERY_IDS]

    # Warm everything outside the timed windows: artifacts, the compiled
    # bitset view, per-query resolve/filter memos, and both plans' paths.
    session.snapshot(need_tree=False)
    session.compiled
    for item in prepared:
        item.execute(plan="basic", use_cache=False)
        item.execute(plan="compiled", use_cache=False)

    def run_basic():
        for item in prepared:
            item.execute(plan="basic", use_cache=False)

    def run_compiled():
        for item in prepared:
            item.execute(plan="compiled", use_cache=False)

    basic_time, _ = best_of(ROUNDS, run_basic)
    compiled_time, _ = best_of(ROUNDS, run_compiled)
    speedup = basic_time / compiled_time if compiled_time > 0 else float("inf")
    # Record the compiled sweep in the pytest-benchmark JSON so the CI
    # perf-trajectory artifact carries an absolute series for this gate too.
    benchmark.pedantic(run_compiled, rounds=ROUNDS, iterations=1)

    stats = session.explain("Q7", plan="compiled", use_cache=False).compiled_stats
    report = experiment_report(
        "plan_compiled",
        f"Compiled plan vs warmed basic plan ({DATASET_ID}, Q1-Q10, |M|={NUM_MAPPINGS})",
    )
    report.add_row("basic", f"{basic_time * 1000:8.1f} ms for all 10 queries")
    report.add_row("compiled", f"{compiled_time * 1000:8.1f} ms for all 10 queries")
    report.add_row("speedup", f"{speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)")
    if stats:
        report.add_row(
            "sharing (Q7)",
            f"{stats['num_distinct_rewrites']} distinct rewrites for "
            f"{stats['num_selected']} mappings "
            f"(saved {stats['evaluations_saved']} evaluations)",
        )

    assert speedup >= MIN_SPEEDUP, (
        f"compiled plan is only {speedup:.2f}x the warmed basic plan "
        f"({compiled_time * 1000:.1f} ms vs {basic_time * 1000:.1f} ms)"
    )
