"""Figure 9(d) — block-tree construction time Tc per dataset, for |M| ∈ {100, 200}.

The paper builds the block tree for every Table II dataset within a few
seconds; construction time grows with the mapping-set size.
"""

from __future__ import annotations

import pytest

from repro.workloads.datasets import DATASET_IDS

from _workloads import BlockTreeConfig, build_block_tree, build_mapping_set

SIZES = [100, 200]


@pytest.mark.parametrize("num_mappings", SIZES)
@pytest.mark.parametrize("dataset_id", DATASET_IDS)
def test_fig9d_construction_time(benchmark, experiment_report, dataset_id, num_mappings):
    mapping_set = build_mapping_set(dataset_id, num_mappings)
    tree = benchmark.pedantic(
        lambda: build_block_tree(mapping_set, BlockTreeConfig()), rounds=3, iterations=1
    )
    report = experiment_report(
        "fig9d", "Fig 9(d): block-tree construction time Tc per dataset (paper: a few seconds)"
    )
    report.add_row(
        f"{dataset_id} |M|={num_mappings}",
        f"Tc={tree.construction_seconds * 1000:.1f} ms, c-blocks={tree.num_blocks}",
    )
    assert tree.num_blocks >= 0
