"""Ablation — lazy (best-first) vs exhaustive partition-ranking merge.

Algorithm 5 merges per-partition rankings pairwise.  The library's default is
a heap-based best-first merge that materialises only O(h) combinations per
step; the ablation compares it against the exhaustive O(h²) cross-product
merge to quantify the benefit (both produce identical mapping sets).
"""

from __future__ import annotations

import pytest

from repro.mapping.generator import generate_top_h_mappings

from _workloads import load_dataset, time_query

H_VALUES = [50, 100]


@pytest.mark.parametrize("h", H_VALUES)
def test_ablation_merge_strategy(benchmark, experiment_report, h):
    matching = load_dataset("D7").matching

    mapping_set = benchmark.pedantic(
        lambda: generate_top_h_mappings(matching, h, method="partition", merge_strategy="lazy"),
        rounds=1,
        iterations=1,
    )

    lazy_time, lazy_set = time_query(
        generate_top_h_mappings, matching, h, method="partition", merge_strategy="lazy"
    )
    exhaustive_time, exhaustive_set = time_query(
        generate_top_h_mappings, matching, h, method="partition", merge_strategy="exhaustive"
    )
    report = experiment_report(
        "ablation-merge",
        "Ablation: partition-ranking merge strategy, lazy (heap) vs exhaustive (cross product), D7",
    )
    report.add_row(
        f"h={h:<4}",
        f"lazy={lazy_time:6.2f} s  exhaustive={exhaustive_time:6.2f} s",
    )
    assert [round(m.score, 6) for m in lazy_set] == [round(m.score, 6) for m in exhaustive_set]
    assert len(mapping_set) == len(lazy_set)
