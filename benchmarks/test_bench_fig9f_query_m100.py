"""Figure 9(f) — PTQ running time Tq for Q1-Q10, basic vs block-tree, |M| = 100.

The paper reports the block-tree algorithm outperforming the basic algorithm
on every query (27% - 78% faster, 54.6% on average).
"""

from __future__ import annotations

import pytest

from repro.workloads.queries import QUERY_IDS

from _workloads import (
    build_block_tree,
    build_mapping_set,
    evaluate_ptq_basic,
    evaluate_ptq_blocktree,
    load_query,
    load_source_document,
    best_of,
    time_query,
)

ALGORITHMS = ["basic", "block-tree"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_fig9f_query_time(benchmark, experiment_report, query_id, algorithm):
    mapping_set = build_mapping_set("D7", 100)
    document = load_source_document("D7")
    tree = build_block_tree(mapping_set)
    query = load_query(query_id)

    if algorithm == "basic":
        run = lambda: evaluate_ptq_basic(query, mapping_set, document)  # noqa: E731
    else:
        run = lambda: evaluate_ptq_blocktree(query, mapping_set, document, tree)  # noqa: E731

    result = benchmark.pedantic(run, rounds=5, iterations=1)

    elapsed_basic, reference = best_of(3, evaluate_ptq_basic, query, mapping_set, document)
    elapsed_tree, _ = best_of(3, evaluate_ptq_blocktree, query, mapping_set, document, tree)
    if algorithm == "block-tree":
        report = experiment_report(
            "fig9f",
            "Fig 9(f): Tq per query, basic vs block-tree (D7, |M|=100; paper: block-tree "
            "27-78% faster, avg 54.6%)",
        )
        saving = 1.0 - elapsed_tree / elapsed_basic if elapsed_basic > 0 else 0.0
        report.add_row(
            query_id,
            f"basic={elapsed_basic * 1000:6.1f} ms  block-tree={elapsed_tree * 1000:6.1f} ms  "
            f"saving={saving:5.1%}",
        )
    assert len(result) == len(reference)
