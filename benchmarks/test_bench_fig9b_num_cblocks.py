"""Figure 9(b) — number of c-blocks created vs the confidence threshold τ.

The paper observes the block count dropping from ~1300 towards the MAX_B cap
as τ grows, with a knee around τ = 0.1 after which the drop slows (many
c-blocks are shared by far more than τ·|M| mappings).
"""

from __future__ import annotations

import pytest

from _workloads import BlockTreeConfig, build_block_tree, build_mapping_set

TAUS = [0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


@pytest.mark.parametrize("tau", TAUS)
def test_fig9b_num_cblocks(benchmark, experiment_report, tau):
    mapping_set = build_mapping_set("D7", 100)
    tree = benchmark.pedantic(
        lambda: build_block_tree(mapping_set, BlockTreeConfig(tau=tau)),
        rounds=3,
        iterations=1,
    )
    report = experiment_report(
        "fig9b", "Fig 9(b): number of c-blocks vs tau (D7, |M|=100; paper: ~1300 down to ~800)"
    )
    report.add_row(f"tau={tau:<4}", f"c-blocks={tree.num_blocks}")
    assert tree.num_blocks >= 0


def test_fig9b_monotone_shape(experiment_report):
    mapping_set = build_mapping_set("D7", 100)
    counts = {
        tau: build_block_tree(mapping_set, BlockTreeConfig(tau=tau)).num_blocks
        for tau in (0.02, 0.2, 0.9)
    }
    report = experiment_report("fig9b", "Fig 9(b): number of c-blocks vs tau")
    report.add_row("shape check", f"{counts[0.02]} >= {counts[0.2]} >= {counts[0.9]}")
    assert counts[0.02] >= counts[0.2] >= counts[0.9]
