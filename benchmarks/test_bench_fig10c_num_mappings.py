"""Figure 10(c) — PTQ time Tq vs the number of possible mappings |M| (query Q10).

The paper reports the block-tree algorithm consistently outperforming the
basic algorithm over a wide range of mapping-set sizes (average improvement
~47%).
"""

from __future__ import annotations

import pytest

from _workloads import (
    build_block_tree,
    build_mapping_set,
    evaluate_ptq_basic,
    evaluate_ptq_blocktree,
    load_query,
    load_source_document,
    best_of,
    time_query,
)

SIZES = [30, 50, 70, 100, 140, 200]


@pytest.mark.parametrize("num_mappings", SIZES)
def test_fig10c_query_time_vs_m(benchmark, experiment_report, num_mappings):
    mapping_set = build_mapping_set("D7", num_mappings)
    document = load_source_document("D7")
    tree = build_block_tree(mapping_set)
    query = load_query("Q10")

    result = benchmark.pedantic(
        lambda: evaluate_ptq_blocktree(query, mapping_set, document, tree),
        rounds=5,
        iterations=1,
    )
    elapsed_basic, _ = best_of(3, evaluate_ptq_basic, query, mapping_set, document)
    elapsed_tree, _ = best_of(3, evaluate_ptq_blocktree, query, mapping_set, document, tree)
    saving = 1.0 - elapsed_tree / elapsed_basic if elapsed_basic > 0 else 0.0
    report = experiment_report(
        "fig10c",
        "Fig 10(c): Tq vs |M| (Q10, D7; paper: block-tree consistently faster, avg ~47%)",
    )
    report.add_row(
        f"|M|={num_mappings:<4}",
        f"basic={elapsed_basic * 1000:6.1f} ms  block-tree={elapsed_tree * 1000:6.1f} ms  "
        f"saving={saving:5.1%}",
    )
    assert len(result) > 0
