"""Engine facade overhead vs direct block-tree evaluation (fig 9f workload).

The :class:`repro.engine.Dataspace` facade must not tax the hot path: once a
session is warm (artifacts built, queries prepared), executing the ten
Table III queries through prepared queries should cost no more than calling
``evaluate_ptq_blocktree`` directly — in fact the prepared path skips the
per-call resolve and filter stages, so it is usually slightly faster.

The engine calls bypass the session result cache (``use_cache=False``): this
benchmark isolates the facade's dispatch overhead, while the cache's effect
is measured by ``test_bench_service_throughput``.
"""

from __future__ import annotations

from repro.engine import Dataspace
from repro.workloads.queries import QUERY_IDS

from _workloads import (
    best_of,
    build_block_tree,
    build_mapping_set,
    evaluate_ptq_blocktree,
    load_query,
    load_source_document,
)

#: Tolerated facade overhead on the warm path (25%, far above the observed cost).
MAX_OVERHEAD = 0.25


def test_engine_overhead_fig9f(benchmark, experiment_report):
    mapping_set = build_mapping_set("D7", 100)
    document = load_source_document("D7")
    tree = build_block_tree(mapping_set)
    queries = [load_query(query_id) for query_id in QUERY_IDS]

    session = Dataspace.from_dataset("D7", h=100)
    prepared = [session.prepare(query_id) for query_id in QUERY_IDS]
    session.block_tree  # warm the session: build artifacts outside the measurement
    for item in prepared:
        item.execute()

    def run_engine():
        for item in prepared:
            item.execute(plan="blocktree", use_cache=False)

    def run_direct():
        for query in queries:
            evaluate_ptq_blocktree(query, mapping_set, document, tree)

    benchmark.pedantic(run_engine, rounds=3, iterations=1)

    engine_time, _ = best_of(5, run_engine)
    direct_time, _ = best_of(5, run_direct)
    overhead = engine_time / direct_time - 1.0 if direct_time > 0 else 0.0

    report = experiment_report(
        "engine_overhead",
        "Engine facade vs direct evaluate_ptq_blocktree (D7, Q1-Q10, |M|=100)",
    )
    report.add_row("direct", f"{direct_time * 1000:7.1f} ms for all 10 queries")
    report.add_row("engine", f"{engine_time * 1000:7.1f} ms for all 10 queries")
    report.add_row("overhead", f"{overhead:+.1%} (budget {MAX_OVERHEAD:+.0%})")

    assert engine_time <= direct_time * (1.0 + MAX_OVERHEAD), (
        f"engine facade overhead {overhead:+.1%} exceeds {MAX_OVERHEAD:+.0%} "
        f"(engine {engine_time * 1000:.1f} ms vs direct {direct_time * 1000:.1f} ms)"
    )
