"""Scatter-gather speedup gate: sharded corpus vs a single-shard run.

A large generated workload — a high-fanout catalogue document (many
repeatable sections of repeatable products) with an ambiguous matching whose
mappings disagree on the leaf correspondences — is evaluated two ways:

* **single shard** — ``ShardedCorpus`` over 1 shard, i.e. the whole document
  behind the scatter-gather machinery (so the comparison isolates the
  *partitioning* effect, not harness overhead);
* **sharded** — the same corpus over ``NUM_SHARDS`` subtree shards.

Sharding wins because the twig matcher's structural filtering is
super-linear in candidate-list sizes: a branchy query pays
``O(|candidates| x sum |child matches|)`` ancestor checks, and cutting the
document into N shards drops the cross terms between candidates and child
matches that live in different subtrees (which can never nest), leaving
roughly 1/N of the work.  The gate therefore holds even under the GIL,
where thread-level parallelism alone could not deliver 2x for pure-Python
evaluation.  Under the GIL-releasing numpy kernels the shard sweeps overlap
across cores too — the corpus sizes its pool through the planner's
:func:`~repro.engine.planner.recommend_scatter_workers`, and the executor
configuration actually used is recorded in the benchmark's ``extra_info``
so each ``BENCH_<run>.json`` artifact says how the measured run was wired.

Design notes for CI (this file runs in the workflow's perf-trajectory job):

* **ratio-only assertion** — both sides are timed in the same process on the
  same warmed corpus state, so machine speed cancels out;
* **warm measurements** — sessions, shard partitions, per-shard compiled
  artifacts and resolve/filter memos are all built before timing; the result
  cache is bypassed so real evaluation is measured;
* **byte-identity sanity** — before timing, the sharded answers are asserted
  equal to the unsharded engine's, so the speedup being gated is for an
  *exact* executor.
"""

from __future__ import annotations

from repro.document.document import XMLDocument
from repro.engine import Dataspace
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.schema.schema import Schema

from _workloads import best_of

#: Required speedup of the sharded scatter-gather run over a single shard.
MIN_SPEEDUP = 2.0
#: Shard count for the sharded side.
NUM_SHARDS = 4
#: Workload scale: sections per catalogue, products per section.
NUM_SECTIONS = 32
NUM_PRODUCTS = 10
#: Timed rounds per side (best-of).
ROUNDS = 3

#: Join-heavy twig queries over the generated catalogue (target labels).
QUERIES = (
    "//PRODUCT[./QTY]/NAME",
    "//SECTION//NAME",
    "//PRODUCT/NAME",
)


def build_workload() -> Dataspace:
    """One deterministic high-fanout session: schemas, matching, document."""
    source = Schema("catalog-src")
    catalog = source.add_root("Catalog")
    section = source.add_child(catalog, "Section", repeatable=True)
    product = source.add_child(section, "Product", repeatable=True)
    name = source.add_child(product, "Name")
    code = source.add_child(product, "Code")
    qty = source.add_child(product, "Qty")
    price = source.add_child(product, "Price")
    source.freeze()

    target = Schema("catalog-tgt")
    t_catalog = target.add_root("CATALOG")
    t_section = target.add_child(t_catalog, "SECTION", repeatable=True)
    t_product = target.add_child(t_section, "PRODUCT", repeatable=True)
    t_name = target.add_child(t_product, "NAME")
    t_qty = target.add_child(t_product, "QTY")
    target.freeze()

    matching = SchemaMatching(source, target, name="catalog")
    pairs = [
        (catalog, t_catalog, 0.95),
        (section, t_section, 0.90),
        (product, t_product, 0.90),
        (name, t_name, 0.80),
        (code, t_name, 0.60),
        (qty, t_qty, 0.80),
        (price, t_qty, 0.50),
    ]
    for source_element, target_element, score in pairs:
        matching.add_pair(source_element.element_id, target_element.element_id, score)

    structural = [(catalog, t_catalog), (section, t_section), (product, t_product)]

    def mapping(mapping_id: int, leaves, score: float) -> Mapping:
        keys = frozenset(
            (s.element_id, t.element_id) for s, t in structural + leaves
        )
        return Mapping(mapping_id, keys, score=score)

    mappings = [
        mapping(0, [(name, t_name), (qty, t_qty)], 4.0),
        mapping(1, [(name, t_name), (price, t_qty)], 2.0),
        mapping(2, [(code, t_name), (qty, t_qty)], 2.0),
        mapping(3, [(code, t_name), (price, t_qty)], 1.0),
        mapping(4, [(name, t_name)], 0.5),
        mapping(5, [(qty, t_qty)], 0.5),
    ]
    mapping_set = MappingSet(matching, mappings)

    document = XMLDocument(source, "catalog.xml")
    root = document.add_root(catalog.element_id)
    for section_index in range(NUM_SECTIONS):
        section_node = document.add_child(root, section.element_id)
        for product_index in range(NUM_PRODUCTS):
            product_node = document.add_child(section_node, product.element_id)
            document.add_child(
                product_node, name.element_id,
                value=f"item-{section_index}-{product_index}",
            )
            document.add_child(
                product_node, code.element_id,
                value=f"c{section_index * NUM_PRODUCTS + product_index}",
            )
            document.add_child(product_node, qty.element_id, value=str(product_index + 1))
            document.add_child(product_node, price.element_id, value="9.99")
    document.finalize()

    return Dataspace.from_mapping_set(
        mapping_set, document=document, name="catalog-bench"
    )


def test_corpus_scatter_gather_speedup(benchmark, experiment_report):
    session = build_workload()
    single = session.shard(1)
    sharded = session.shard(NUM_SHARDS)

    # Warm both corpora (shard state, compiled artifacts, resolve/filter
    # memos) and sanity-check byte-identity before the timed windows.
    for query in QUERIES:
        unsharded = session.execute(query, use_cache=False)
        for corpus in (single, sharded):
            merged = corpus.execute(query, use_cache=False)
            assert {
                (answer.mapping_id, answer.probability, answer.matches)
                for answer in merged
            } == {
                (answer.mapping_id, answer.probability, answer.matches)
                for answer in unsharded
            }, f"sharded answers diverge for {query}"

    def run(corpus):
        def sweep():
            for query in QUERIES:
                corpus.execute(query, use_cache=False)

        return sweep

    single_time, _ = best_of(ROUNDS, run(single))
    sharded_time, _ = best_of(ROUNDS, run(sharded))
    speedup = single_time / sharded_time if sharded_time > 0 else float("inf")
    # Record the sharded sweep in the pytest-benchmark JSON so the CI
    # perf-trajectory artifact carries an absolute series for this gate too,
    # and stamp the run with its measured ratio and executor wiring.
    benchmark.pedantic(run(sharded), rounds=ROUNDS, iterations=1)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["executor"] = sharded.executor_config()

    execution = sharded.explain(QUERIES[0], use_cache=False)
    report = experiment_report(
        "corpus_scatter",
        f"Sharded scatter-gather vs single shard "
        f"({NUM_SECTIONS}x{NUM_PRODUCTS} catalogue, {len(QUERIES)} queries, "
        f"{NUM_SHARDS} shards)",
    )
    report.add_row("single shard", f"{single_time * 1000:8.1f} ms per sweep")
    report.add_row(f"{NUM_SHARDS} shards", f"{sharded_time * 1000:8.1f} ms per sweep")
    report.add_row("speedup", f"{speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)")
    report.add_row(
        "fan-out (Q0)",
        f"{execution.fan_out} evaluated, {execution.skipped_shards} skipped, "
        f"{execution.spine_rewrites} spine rewrites",
    )
    config = sharded.executor_config()
    report.add_row(
        "executor",
        f"{config['backend']} kernels, {config['max_workers']} workers over "
        f"{config['num_shards']} shards",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"scatter-gather over {NUM_SHARDS} shards is only {speedup:.2f}x a "
        f"single-shard run ({sharded_time * 1000:.1f} ms vs "
        f"{single_time * 1000:.1f} ms)"
    )
