"""Standing-query notification gate: incremental notify vs re-execute-all.

The streaming engine's performance claim (ISSUE 10) is that a committed
delta batch *notifies* every standing query instead of forcing each one to
re-run.  This gate pins it on the paper's headline dataset: with **40
standing queries** (the ten Table III queries, each subscribed full and at
three top-k restrictions) over **400 mappings**, a delta batch touching
**10 mappings** (<=10%) must be served **>=10x** cheaper through the
notification path —
classification from the batch's dirty masks plus rescoring of cached rows —
than re-executing every standing query from scratch.

The second claim measured here is that *unaffected* subscribers cost O(1):
a structural batch whose edits fall outside every standing query's
required-target set is classified by pure mask tests, so its cost per
subscriber is a bitwise AND, not an evaluation.  The per-subscriber overhead
is measured by timing the same unaffected batch with and without the
subscriber population and recorded in ``extra_info`` (and with it in the
``BENCH_<run>.json`` perf-trajectory artifact), alongside the notify/re-run
ratio and the registry's classification counters.

Design notes for CI (this file runs in the workflow's perf-trajectory job):

* **ratio-only assertions** — both sides are timed in one process on the
  same machine, so absolute speed cancels out;
* **mass-preserving rotations** — the timed reweight batches rotate the
  probabilities of the touched mappings, so every round does real rescoring
  work and the state cycles through fixed points;
* **alternating structural edits** — the unaffected rounds retract and
  restore correspondences outside every query's target set, the exact case
  the mask classification is built to recognise.
"""

from __future__ import annotations

from repro.engine import Dataspace, MappingDelta
from repro.engine.streaming import DeltaBatch
from repro.workloads.queries import load_query

from _workloads import best_of

#: Required speedup of notifying all standing queries over re-running them.
MIN_SPEEDUP = 10.0
#: Mapping-set size and the number of mappings each batch touches (<=10%).
NUM_MAPPINGS = 400
TOUCHED = 10
#: Timed rounds per side (best-of).
ROUNDS = 4

#: The paper's ten Table III queries; each is subscribed at four top-k
#: restrictions (full, top-10, top-20, top-50), giving forty standing
#: queries.  The k values sit at or beyond the rotated block boundary so the
#: steady-state rounds are pure reweights (top-k membership is stable); the
#: entrant/eviction path is covered by the unit and property suites.
QUERIES = tuple(load_query(f"Q{i}") for i in range(1, 11))
TOP_KS = (None, 10, 20, 50)


def rotation_batch(session) -> DeltaBatch:
    """A mass-preserving probability rotation over the touched mappings."""
    mapping_set = session.mapping_set
    probabilities = [mapping_set[i].probability for i in range(TOUCHED)]
    rotated = {
        i: probabilities[(i + 1) % TOUCHED] for i in range(TOUCHED)
    }
    return DeltaBatch.of(MappingDelta.build(reweight=rotated))


def pick_edits(session) -> list:
    """One removable pair per touched mapping, outside every query's targets."""
    query_targets = 0
    for query in QUERIES:
        query_targets |= session.prepare(query).required_target_mask()
    edits = []
    for mapping in session.mapping_set:
        for pair in sorted(mapping.correspondences):
            if not (query_targets >> pair[1]) & 1:
                edits.append((mapping.mapping_id, pair))
                break
        if len(edits) == TOUCHED:
            break
    assert len(edits) == TOUCHED, (
        f"could only find {len(edits)} of {TOUCHED} edit sites outside the "
        "query target set"
    )
    return edits


def test_streaming_notification_speedup(benchmark, experiment_report):
    session = Dataspace.from_dataset("D7", h=NUM_MAPPINGS)
    received = [0]
    handles = [
        session.subscribe(query, k=k, callback=lambda update: received.__setitem__(0, received[0] + 1))
        for query in QUERIES
        for k in TOP_KS
    ]
    num_subscribers = len(handles)
    assert received[0] == num_subscribers  # one initial baseline each

    # The re-run side models a non-incremental system on a *mirror* session
    # with no subscribers: it pays the same batch commit, then re-executes
    # every standing query from scratch.
    mirror = Dataspace.from_dataset("D7", h=NUM_MAPPINGS)
    mirror.compiled  # the notify session's commits patch a compiled artifact

    def notify_round():
        session.apply_delta_batch(rotation_batch(session))

    def rerun_round():
        mirror.apply_delta_batch(rotation_batch(mirror))
        for query in QUERIES:
            for k in TOP_KS:
                mirror.execute(query, k=k, use_cache=False)

    # Sanity before timing: the rotation actually reaches subscribers.
    notify_round()
    assert received[0] > num_subscribers, "the reweight batch notified nobody"

    notify_time, _ = best_of(ROUNDS, notify_round)
    rerun_time, _ = best_of(ROUNDS, rerun_round)
    speedup = rerun_time / notify_time if notify_time > 0 else float("inf")

    # Unaffected classification: structural edits outside every standing
    # query's required-target set must cost mask tests only.
    edits = pick_edits(session)
    removed = [False]

    def unaffected_round():
        delta = (
            MappingDelta.build(add=edits)
            if removed[0]
            else MappingDelta.build(remove=edits)
        )
        removed[0] = not removed[0]
        session.apply_delta_batch(DeltaBatch.of(delta))

    before = session.subscriptions.stats()
    unaffected_with, _ = best_of(ROUNDS, unaffected_round)
    after = session.subscriptions.stats()
    classified = after["unaffected"] - before["unaffected"]
    assert classified == ROUNDS * num_subscribers, (
        f"expected every standing query unaffected each round, got {classified}"
    )

    # Record the notify round in the pytest-benchmark JSON so the CI
    # perf-trajectory artifact carries an absolute series for this gate too.
    benchmark.pedantic(notify_round, rounds=ROUNDS, iterations=1)

    # Per-subscriber overhead of an unaffected commit: the same batch timed
    # with the population cancelled isolates the mask-test cost.
    for handle in handles:
        handle.cancel()
    unaffected_without, _ = best_of(ROUNDS, unaffected_round)
    per_subscriber_us = max(0.0, unaffected_with - unaffected_without) / num_subscribers * 1e6

    stats = session.subscriptions.stats()
    benchmark.extra_info["subscribers"] = num_subscribers
    benchmark.extra_info["standing_queries"] = num_subscribers
    benchmark.extra_info["touched_mappings"] = TOUCHED
    benchmark.extra_info["num_mappings"] = NUM_MAPPINGS
    benchmark.extra_info["notify_ms"] = notify_time * 1e3
    benchmark.extra_info["rerun_ms"] = rerun_time * 1e3
    benchmark.extra_info["notify_speedup"] = speedup
    benchmark.extra_info["unaffected_round_ms"] = unaffected_with * 1e3
    benchmark.extra_info["unaffected_per_subscriber_us"] = per_subscriber_us
    benchmark.extra_info["classified"] = {
        "unaffected": stats["unaffected"],
        "reweight_only": stats["reweight_only"],
        "structural": stats["structural"],
    }

    report = experiment_report(
        "streaming_notify",
        f"notify {num_subscribers} standing queries on a batch touching "
        f"{TOUCHED}/{NUM_MAPPINGS} mappings vs re-executing them (D7)",
    )
    report.add_row("notify all", f"{notify_time * 1000:8.2f} ms per batch")
    report.add_row("re-run all", f"{rerun_time * 1000:8.2f} ms per batch")
    report.add_row("speedup", f"{speedup:.1f}x (required >= {MIN_SPEEDUP:.0f}x)")
    report.add_row(
        "unaffected commit", f"{unaffected_with * 1000:8.2f} ms per batch"
    )
    report.add_row(
        "unaffected overhead", f"{per_subscriber_us:8.2f} us per subscriber"
    )
    report.add_row("notifications delivered", received[0])

    assert stats["callback_errors"] == 0 and stats["update_errors"] == 0
    assert speedup >= MIN_SPEEDUP, (
        f"notifying standing queries is only {speedup:.2f}x re-running them "
        f"({notify_time * 1000:.2f} ms vs {rerun_time * 1000:.2f} ms)"
    )
