"""Table II — the schema-matching datasets D1 … D10.

Reproduces the dataset table: source/target schema sizes, matcher option,
capacity (number of correspondences) and the o-ratio of the |M| = 100
possible-mapping set, next to the values the paper reports.  The benchmark
itself times the COMA++-like matcher on each schema pair.
"""

from __future__ import annotations

import pytest

from repro.matching.matcher import MatcherConfig, SchemaMatcher
from repro.schema.corpus import load_corpus_schema
from repro.workloads.datasets import DATASET_IDS, DATASET_SPECS, build_mapping_set


@pytest.mark.parametrize("dataset_id", DATASET_IDS)
def test_table2_matching(benchmark, experiment_report, dataset_id):
    spec = DATASET_SPECS[dataset_id]
    source = load_corpus_schema(spec.source)
    target = load_corpus_schema(spec.target)
    strategy = "fragment" if spec.option == "f" else "context"
    matcher = SchemaMatcher(MatcherConfig(strategy=strategy))

    matching = benchmark.pedantic(
        lambda: matcher.match(source, target, name=dataset_id), rounds=1, iterations=1
    )

    mapping_set = build_mapping_set(dataset_id, 100)
    report = experiment_report(
        "table2", "Table II: datasets (|S|, |T|, opt, capacity, o-ratio) — paper vs measured"
    )
    report.add_row(
        dataset_id,
        f"{spec.source}({len(source)}) -> {spec.target}({len(target)}) opt={spec.option} "
        f"capacity={matching.capacity} (paper {spec.paper_capacity}) "
        f"o-ratio={mapping_set.o_ratio():.2f} (paper {spec.paper_o_ratio:.2f})",
    )
    assert matching.capacity > 0


def test_table2_o_ratio_range(experiment_report):
    """The headline observation: possible mappings overlap heavily."""
    report = experiment_report("table2", "Table II: datasets — paper vs measured")
    values = []
    for dataset_id in DATASET_IDS:
        values.append(build_mapping_set(dataset_id, 100).o_ratio())
    report.add_row(
        "o-ratio range", f"{min(values):.2f} .. {max(values):.2f} (paper: 0.53 .. 0.91)"
    )
    assert min(values) > 0.4
