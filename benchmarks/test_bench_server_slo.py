"""Serving SLO gate: remote latency vs in-process execution, and typed shed.

Two phases against the same warm :class:`~repro.service.QueryService`:

* **baseline** — 32 closed-loop threads calling the in-process
  :class:`~repro.api.handler.ApiHandler` directly (cache-bypassing, on a
  mapping set and plan sized so evaluation takes milliseconds — the SLO
  compares serving overhead against real work, not against dictionary
  lookups that any transport would dwarf);
* **server** — the same 32 closed-loop threads, each over its own binary
  protocol connection to a :class:`~repro.net.ReproServer` with admission
  sized so nothing sheds.  The measured loop speaks raw frames (pre-encoded
  request bytes out, response bytes in) so the gate times the *server* —
  framing, event loop, admission, executor handoff, response encoding — and
  not the calling thread's own JSON parsing, which in this single-process
  setup would steal the GIL from the system under test.

Both phases carry identical contention (same thread count, same GIL), so
their difference is transport.  The acceptance bar is the serving contract
from docs/serving.md — **remote p99 within 5x the warm in-process median at
32 concurrent connections**.

A third phase pins the overload contract: a deliberately under-provisioned
server (one slot, no queue) under the same closed-loop barrage must answer
every request *immediately* — success or typed
:class:`~repro.api.OverloadedError` with a retry hint — never a hang or a
timeout.

Environment knobs
-----------------
``REPRO_BENCH_SLO_CONNECTIONS``
    Concurrent connections/threads (default 32).
``REPRO_BENCH_SLO_REQUESTS``
    Requests per connection per phase (default 25).
"""

from __future__ import annotations

import asyncio
import os
import socket
import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api import OverloadedError, QueryRequest, encode_message
from repro.api.handler import ApiHandler
from repro.engine import Dataspace
from repro.net import ReproServer, connect
from repro.net.framing import HEADER_SIZE, OP_RESPONSE, decode_header, encode_frame, OP_REQUEST
from repro.service import QueryService, workload_queries

#: Remote p99 must stay within this factor of the warm in-process median.
MAX_P99_FACTOR = 5.0
#: Dataset, mapping-set size and plan: |M|=1000 under the uncompiled basic
#: plan costs ~5 ms/query, so evaluation dominates transport.
DATASET = "D1"
SLO_H = 1000
SLO_PLAN = "basic"

CONNECTIONS = int(os.environ.get("REPRO_BENCH_SLO_CONNECTIONS", "32"))
REQUESTS_PER_CONNECTION = int(os.environ.get("REPRO_BENCH_SLO_REQUESTS", "25"))


class _LoopThread:
    """A ReproServer on a dedicated event-loop thread (benchmark harness)."""

    def __init__(self, server: ReproServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(server.start(), self.loop).result(30)

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _closed_loop(worker, num_threads: int) -> list[float]:
    """Run ``worker(thread_index)`` on ``num_threads`` threads, merge latencies."""
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        chunks = list(pool.map(worker, range(num_threads)))
    return [sample for chunk in chunks for sample in chunk]


def test_server_slo(benchmark, experiment_report):
    session = Dataspace.from_dataset(DATASET, h=SLO_H)
    session.snapshot(need_tree=False)
    queries = workload_queries(DATASET, limit=5)

    with QueryService(session, max_workers=CONNECTIONS) as service:
        handler = ApiHandler(service)

        def in_process_worker(index: int) -> list[float]:
            samples = []
            for i in range(REQUESTS_PER_CONNECTION):
                request = QueryRequest(
                    query=queries[(index + i) % len(queries)],
                    plan=SLO_PLAN,
                    use_cache=False,
                )
                started = time.perf_counter()
                handler.handle(request)
                samples.append(time.perf_counter() - started)
            return samples

        # Warm-up then measured pass, both closed-loop at full concurrency.
        _closed_loop(in_process_worker, CONNECTIONS)
        baseline = _closed_loop(in_process_worker, CONNECTIONS)

        harness = _LoopThread(
            ReproServer(
                service,
                max_inflight=CONNECTIONS,
                max_queue=CONNECTIONS,
                request_timeout=60.0,
            )
        )
        try:
            port = harness.server.port
            frames = [
                encode_frame(
                    OP_REQUEST,
                    encode_message(
                        QueryRequest(query=query, plan=SLO_PLAN, use_cache=False)
                    ),
                )
                for query in queries
            ]

            def recv_exact(sock: socket.socket, n: int) -> bytes:
                data = b""
                while len(data) < n:
                    chunk = sock.recv(n - len(data))
                    if not chunk:
                        raise ConnectionError("server closed the connection")
                    data += chunk
                return data

            def server_worker(index: int) -> list[float]:
                samples = []
                with socket.create_connection(("127.0.0.1", port), 60.0) as sock:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    for i in range(REQUESTS_PER_CONNECTION):
                        frame = frames[(index + i) % len(frames)]
                        started = time.perf_counter()
                        sock.sendall(frame)
                        opcode, length = decode_header(
                            recv_exact(sock, HEADER_SIZE), max_payload=1 << 30
                        )
                        recv_exact(sock, length)
                        samples.append(time.perf_counter() - started)
                        assert opcode == OP_RESPONSE
                return samples

            _closed_loop(server_worker, CONNECTIONS)  # warm-up
            remote: list[float] = []

            def measured_round():
                remote.extend(_closed_loop(server_worker, CONNECTIONS))

            benchmark.pedantic(measured_round, rounds=1, iterations=1)
            stats = harness.server.server_stats()
        finally:
            harness.stop()

        # ------------------------------------------------------------------ #
        # Overload: an under-provisioned server sheds typed, never hangs.
        # ------------------------------------------------------------------ #
        shed_harness = _LoopThread(
            ReproServer(service, max_inflight=1, max_queue=0, retry_after=0.05)
        )
        served = shed = 0
        lock = threading.Lock()
        try:
            shed_port = shed_harness.server.port

            def overload_worker(index: int) -> list[float]:
                nonlocal served, shed
                with connect("127.0.0.1", shed_port, timeout=10.0) as client:
                    for i in range(REQUESTS_PER_CONNECTION):
                        started = time.perf_counter()
                        try:
                            client.query(
                                queries[(index + i) % len(queries)],
                                plan=SLO_PLAN,
                                use_cache=False,
                            )
                            with lock:
                                served += 1
                        except OverloadedError as error:
                            assert error.retry_after > 0
                            with lock:
                                shed += 1
                        # Every answer (served or shed) is prompt: the 10s
                        # client deadline above would raise on a hang.
                        assert time.perf_counter() - started < 10.0
                return []

            _closed_loop(overload_worker, CONNECTIONS)
            shed_stats = shed_harness.server.server_stats()
        finally:
            shed_harness.stop()

    baseline_median = statistics.median(baseline)
    remote_median = statistics.median(remote)
    remote_p99 = percentile(remote, 0.99)
    budget = MAX_P99_FACTOR * baseline_median

    benchmark.extra_info["connections"] = CONNECTIONS
    benchmark.extra_info["requests"] = len(remote)
    benchmark.extra_info["baseline_median_ms"] = baseline_median * 1e3
    benchmark.extra_info["remote_median_ms"] = remote_median * 1e3
    benchmark.extra_info["remote_p99_ms"] = remote_p99 * 1e3
    benchmark.extra_info["p99_factor"] = remote_p99 / baseline_median
    benchmark.extra_info["shed"] = shed

    report = experiment_report(
        "server_slo",
        f"Binary-protocol serving SLO ({CONNECTIONS} connections, "
        f"{DATASET}, |M|={SLO_H}, uncached)",
    )
    report.add_row(
        "in-process", f"median={baseline_median * 1e3:.2f} ms (closed loop)"
    )
    report.add_row(
        "server",
        f"median={remote_median * 1e3:.2f} ms  p99={remote_p99 * 1e3:.2f} ms "
        f"({len(remote)} requests)",
    )
    report.add_row(
        "p99 budget",
        f"{remote_p99 * 1e3:.2f} ms <= {budget * 1e3:.2f} ms "
        f"({MAX_P99_FACTOR:g}x in-process median)",
    )
    report.add_row("overload", f"served={served} shed={shed} (all typed, none hung)")

    # No request was shed in the provisioned phase...
    assert stats["shed"] == 0
    assert len(remote) == CONNECTIONS * REQUESTS_PER_CONNECTION
    # ...while the under-provisioned phase actually exercised shedding.
    assert shed > 0, "overload phase never shed; the gate proved nothing"
    assert served + shed == CONNECTIONS * REQUESTS_PER_CONNECTION
    assert shed_stats["shed"] >= shed
    assert remote_p99 <= budget, (
        f"remote p99 {remote_p99 * 1e3:.2f} ms exceeds {MAX_P99_FACTOR:g}x the "
        f"in-process median {baseline_median * 1e3:.2f} ms at "
        f"{CONNECTIONS} connections"
    )
