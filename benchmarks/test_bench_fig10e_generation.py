"""Figure 10(e) — top-h mapping generation time Tg per dataset: Murty vs partition.

The paper reports the partition-based approach beating plain Murty on every
dataset, often by an order of magnitude or more, because the bipartite of a
schema matching is sparse (23 - 966 partitions per dataset).

To keep the plain-Murty baseline (which ranks assignments of the *full*
|S.N| + |T.N| bipartite) tractable on the largest datasets, this benchmark
uses ``h = REPRO_BENCH_H`` (default 50) mappings instead of the paper's 100;
the relative shape — who wins and by what factor — is unaffected.
"""

from __future__ import annotations

import pytest

from repro.mapping.generator import generate_top_h_mappings
from repro.mapping.partition import partition_matching
from repro.workloads.datasets import DATASET_IDS

from _workloads import bench_h, load_dataset, time_query

H = bench_h()


@pytest.mark.parametrize("dataset_id", DATASET_IDS)
def test_fig10e_partition_generation(benchmark, experiment_report, dataset_id):
    dataset = load_dataset(dataset_id)
    matching = dataset.matching

    mapping_set = benchmark.pedantic(
        lambda: generate_top_h_mappings(matching, H, method="partition"),
        rounds=1,
        iterations=1,
    )

    partition_time, _ = time_query(generate_top_h_mappings, matching, H, method="partition")
    murty_time, _ = time_query(generate_top_h_mappings, matching, H, method="murty")
    partitions = partition_matching(matching)
    speedup = murty_time / partition_time if partition_time > 0 else float("inf")
    report = experiment_report(
        "fig10e",
        f"Fig 10(e): top-h generation time Tg, murty vs partition (h={H}; "
        "paper: partition faster on every dataset, often >10x)",
    )
    report.add_row(
        dataset_id,
        f"murty={murty_time:8.3f} s  partition={partition_time:8.3f} s  "
        f"speedup={speedup:6.1f}x  partitions={len(partitions)}",
    )
    assert len(mapping_set) <= H
    assert partition_time <= murty_time * 1.5  # partition never meaningfully slower
