"""Probabilistic twig query evaluation (Algorithms 3 and 4, plus the compiled core).

All evaluators share the same pipeline:

1. **resolve** the query against the target schema
   (:func:`repro.query.resolve.resolve_query`);
2. **filter** irrelevant mappings — those lacking a correspondence for some
   query node (:func:`filter_mappings`);
3. **evaluate** the query per mapping.

They differ only in step 3: :func:`evaluate_ptq_basic` rewrites and matches
the whole query once per mapping (Algorithm 3, ``query_basic``);
:func:`evaluate_ptq_blocktree` walks the query top-down, uses the block
tree's hash table to find anchored subtrees whose c-blocks let it evaluate a
sub-query *once per block* instead of once per mapping, and re-assembles
partial results with structural joins (Algorithm 4, ``twig_query_tree`` /
``query_subtree``); :func:`evaluate_resolved_compiled` runs on the
mapping set's compiled bitset view (:mod:`repro.engine.compiled`), grouping
mappings by their full query rewrite and evaluating each distinct rewrite
exactly once.

All evaluators produce identical :class:`~repro.query.results.PTQResult`
contents.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.blocktree import BlockTree
from repro.document.document import XMLDocument
from repro.exceptions import QueryError
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet, iter_mapping_ids, mapping_mask
from repro.query.resolve import Embedding, resolve_query
from repro.query.results import CanonicalMatch, PTQAnswer, PTQResult
from repro.query.twig import TwigNode, TwigQuery
from repro.query.twigmatch import Match, match_twig, stack_join

__all__ = [
    "filter_mappings",
    "evaluate_resolved_basic",
    "evaluate_resolved_blocktree",
    "evaluate_resolved_compiled",
    "evaluate_ptq_basic",
    "evaluate_ptq_blocktree",
    "evaluate_ptq",
]

#: Per-mapping results inside the evaluators: mapping id -> list of matches.
MappingResults = dict[int, list[Match]]


# --------------------------------------------------------------------------- #
# Shared pipeline pieces
# --------------------------------------------------------------------------- #
def filter_mappings(
    mapping_set: MappingSet | Iterable[Mapping], embeddings: list[Embedding]
) -> list[Mapping]:
    """Drop mappings that cannot produce any match (the paper's ``filter_mappings``).

    A mapping is *relevant* when, for at least one embedding of the query
    into the target schema, it contains a correspondence for every query
    node's target element.

    ``mapping_set`` may be a :class:`MappingSet` or any iterable of
    :class:`Mapping` objects (including a one-shot generator): the input is
    normalised to a concrete list exactly once at this boundary, and the
    returned list is always freshly materialised, so downstream evaluators —
    which iterate their mapping subset once per embedding — can never drain a
    caller's iterator or alias its storage.

    A :class:`MappingSet` input is filtered through its compiled bitset view
    (one AND per query node instead of per-mapping hash probes); the result —
    relevant mappings in ascending-id order — is identical to the plain scan
    used for loose iterables.
    """
    if isinstance(mapping_set, MappingSet):
        if not embeddings:
            return []
        return mapping_set.compile().relevant_mappings(embeddings)
    mappings = list(mapping_set)
    if not embeddings:
        return []
    required_sets = [set(embedding.values()) for embedding in embeddings]
    return [
        mapping
        for mapping in mappings
        if any(mapping.covers_targets(required) for required in required_sets)
    ]


def _element_map_for_mapping(
    qnode: TwigNode, embedding: Embedding, mapping: Mapping
) -> Optional[dict[int, int]]:
    """Rewrite the resolved subquery under ``mapping`` (query node -> source element)."""
    element_map: dict[int, int] = {}
    for node in qnode.iter_subtree():
        source_id = mapping.source_for_target(embedding[node.node_id])
        if source_id is None:
            return None
        element_map[node.node_id] = source_id
    return element_map


def _single_node_matches(
    document: XMLDocument, qnode: TwigNode, source_element_id: int
) -> list[Match]:
    """Matches of the single-node query ``q0`` (root only), with its value predicate."""
    candidates = document.nodes_of_element(source_element_id)
    if qnode.value is not None:
        candidates = [node for node in candidates if node.value == qnode.value]
    return [{qnode.node_id: candidate} for candidate in candidates]


def _canonicalize(matches: list[Match]) -> frozenset[CanonicalMatch]:
    return frozenset(
        tuple(sorted((query_node_id, node.node_id) for query_node_id, node in match.items()))
        for match in matches
    )


def _build_result(
    query: TwigQuery,
    document: XMLDocument,
    per_mapping: dict[int, frozenset[CanonicalMatch]],
    mapping_set: MappingSet | Sequence[Mapping],
) -> PTQResult:
    probabilities = {mapping.mapping_id: mapping.probability for mapping in mapping_set}
    answers = [
        PTQAnswer(mapping_id=mapping_id, probability=probabilities[mapping_id], matches=matches)
        for mapping_id, matches in per_mapping.items()
    ]
    return PTQResult(query, answers, document=document)


# --------------------------------------------------------------------------- #
# Algorithm 3: query_basic
# --------------------------------------------------------------------------- #
def _twig_query(
    qnode: TwigNode,
    mappings: Sequence[Mapping],
    document: XMLDocument,
    embedding: Embedding,
) -> MappingResults:
    """The paper's ``twig_query``: rewrite and match once per mapping."""
    results: MappingResults = {}
    for mapping in mappings:
        element_map = _element_map_for_mapping(qnode, embedding, mapping)
        if element_map is None:
            results[mapping.mapping_id] = []
        else:
            results[mapping.mapping_id] = match_twig(document, qnode, element_map)
    return results


def _evaluate_resolved(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    embeddings: list[Embedding],
    mappings: Sequence[Mapping],
    twig_query,
) -> PTQResult:
    """Shared per-embedding loop of Algorithms 3 and 4.

    ``twig_query(qnode, covered, embedding) -> MappingResults`` is the only
    point where the two algorithms differ.
    """
    per_mapping: dict[int, frozenset[CanonicalMatch]] = {}
    for embedding in embeddings:
        required = set(embedding.values())
        covered = [mapping for mapping in mappings if mapping.covers_targets(required)]
        results = twig_query(query.root, covered, embedding)
        for mapping_id, matches in results.items():
            canonical = _canonicalize(matches)
            per_mapping[mapping_id] = per_mapping.get(mapping_id, frozenset()) | canonical
    return _build_result(query, document, per_mapping, mapping_set)


def evaluate_resolved_basic(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    embeddings: list[Embedding],
    mappings: Sequence[Mapping],
) -> PTQResult:
    """Algorithm 3's evaluation loop over pre-resolved embeddings.

    ``embeddings`` must come from :func:`~repro.query.resolve.resolve_query`
    on the same query and target schema, and ``mappings`` from
    :func:`filter_mappings` (optionally restricted further, as in top-k
    evaluation).  The engine's plan layer calls this directly so a prepared
    query can reuse its cached resolve/filter work.
    """

    def twig_query(qnode, covered, embedding):
        return _twig_query(qnode, covered, document, embedding)

    return _evaluate_resolved(query, mapping_set, document, embeddings, mappings, twig_query)


def evaluate_ptq_basic(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    mappings: Optional[Iterable[Mapping]] = None,
) -> PTQResult:
    """Evaluate a PTQ with the basic per-mapping algorithm (Algorithm 3).

    This is a thin wrapper over the engine's ``basic`` query plan
    (:class:`repro.engine.plans.BasicPlan`), kept as the low-level functional
    entry point.

    Parameters
    ----------
    query:
        The twig query over the target schema.
    mapping_set:
        The possible mappings of the schema matching.
    document:
        The source document.
    mappings:
        Optional subset of mappings to consider (used by the top-k variant);
        defaults to the whole mapping set.
    """
    from repro.engine.plans import plan_for

    return plan_for("basic").run(query, mapping_set, document, mappings=mappings)


# --------------------------------------------------------------------------- #
# Algorithm 4: twig_query_tree / query_subtree
# --------------------------------------------------------------------------- #
def _query_subtree(
    qnode: TwigNode,
    tree_node,
    mappings: Sequence[Mapping],
    document: XMLDocument,
    embedding: Embedding,
) -> MappingResults:
    """The paper's ``query_subtree``: evaluate once per c-block, replicate per mapping."""
    results: MappingResults = {}
    covered_mask = 0
    relevant_mask = mapping_mask(mapping.mapping_id for mapping in mappings)
    subquery_nodes = list(qnode.iter_subtree())

    for block in tree_node.blocks:
        shared_mask = block.mapping_mask & relevant_mask
        if not shared_mask:
            continue
        block_sources = {target_id: source_id for source_id, target_id in block.correspondences}
        element_map: dict[int, int] = {}
        usable = True
        for node in subquery_nodes:
            source_id = block_sources.get(embedding[node.node_id])
            if source_id is None:
                usable = False
                break
            element_map[node.node_id] = source_id
        if not usable:
            continue
        matches = match_twig(document, qnode, element_map)
        for mapping_id in iter_mapping_ids(shared_mask):
            results[mapping_id] = matches
        covered_mask |= shared_mask

    for mapping in mappings:
        if covered_mask >> mapping.mapping_id & 1:
            continue
        element_map = _element_map_for_mapping(qnode, embedding, mapping)
        if element_map is None:
            results[mapping.mapping_id] = []
        else:
            results[mapping.mapping_id] = match_twig(document, qnode, element_map)
    return results


def _twig_query_tree(
    qnode: TwigNode,
    mappings: Sequence[Mapping],
    document: XMLDocument,
    block_tree: BlockTree,
    embedding: Embedding,
) -> MappingResults:
    """The paper's ``twig_query_tree``: recursive decomposition over the block tree."""
    target_schema = block_tree.target_schema
    target_element = target_schema.get(embedding[qnode.node_id])
    tree_node = block_tree.node_for_path(target_element.path)
    if tree_node is not None and tree_node.blocks:
        return _query_subtree(qnode, tree_node, mappings, document, embedding)

    if qnode.is_leaf:
        return _twig_query(qnode, mappings, document, embedding)

    # Decompose: q0 is the root-only query; q1..qf are the child subtrees.
    # Mappings sharing the same source element for q0 share the same match
    # list (and, lower down, mappings covered by the same c-block share the
    # same sub-result object), so joins are cached on the identity of their
    # operands: the join of a shared pair of lists is computed only once for
    # all mappings that share it.
    root_results: MappingResults = {}
    root_match_cache: dict[int, list[Match]] = {}
    for mapping in mappings:
        source_id = mapping.source_for_target(embedding[qnode.node_id])
        if source_id is None:
            root_results[mapping.mapping_id] = []
        else:
            if source_id not in root_match_cache:
                root_match_cache[source_id] = _single_node_matches(document, qnode, source_id)
            root_results[mapping.mapping_id] = root_match_cache[source_id]

    child_results = [
        _twig_query_tree(child, mappings, document, block_tree, embedding)
        for child in qnode.children
    ]

    results: MappingResults = {}
    join_cache: dict[tuple[int, int, int], list[Match]] = {}
    for mapping in mappings:
        combined = root_results[mapping.mapping_id]
        for child, child_result in zip(qnode.children, child_results):
            if not combined:
                break
            child_matches = child_result[mapping.mapping_id]
            cache_key = (id(combined), id(child_matches), child.node_id)
            cached = join_cache.get(cache_key)
            if cached is None:
                cached = stack_join(combined, child_matches, qnode.node_id, child.node_id)
                join_cache[cache_key] = cached
            combined = cached
        results[mapping.mapping_id] = combined
    return results


def evaluate_resolved_blocktree(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    block_tree: BlockTree,
    embeddings: list[Embedding],
    mappings: Sequence[Mapping],
) -> PTQResult:
    """Algorithm 4's evaluation loop over pre-resolved embeddings.

    The block-tree counterpart of :func:`evaluate_resolved_basic`; see there
    for the contract on ``embeddings`` and ``mappings``.

    Raises
    ------
    QueryError
        If the block tree was not built over the same target schema as the
        mapping set's matching.
    """
    if block_tree.target_schema is not mapping_set.matching.target:
        raise QueryError(
            "the block tree's target schema differs from the mapping set's target schema"
        )

    def twig_query(qnode, covered, embedding):
        return _twig_query_tree(qnode, covered, document, block_tree, embedding)

    return _evaluate_resolved(query, mapping_set, document, embeddings, mappings, twig_query)


def evaluate_ptq_blocktree(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    block_tree: BlockTree,
    mappings: Optional[Iterable[Mapping]] = None,
) -> PTQResult:
    """Evaluate a PTQ with the block-tree algorithm (Algorithm 4).

    Produces exactly the same answers as :func:`evaluate_ptq_basic`, but
    mappings that share the correspondences of a c-block are evaluated only
    once per block.  This is a thin wrapper over the engine's ``blocktree``
    query plan (:class:`repro.engine.plans.BlockTreePlan`).

    Raises
    ------
    QueryError
        If the block tree was not built over the same target schema as the
        mapping set's matching.
    """
    from repro.engine.plans import plan_for

    return plan_for("blocktree").run(
        query, mapping_set, document, block_tree=block_tree, mappings=mappings
    )


# --------------------------------------------------------------------------- #
# Compiled core: evaluate each distinct rewrite exactly once
# --------------------------------------------------------------------------- #
def evaluate_resolved_compiled(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    embeddings: list[Embedding],
    mappings: Sequence[Mapping],
    kernels=None,
) -> PTQResult:
    """Compiled-core evaluation loop over pre-resolved embeddings.

    Runs on the mapping set's compiled bitset view
    (:meth:`~repro.mapping.mapping_set.MappingSet.compile`): for every
    embedding, the selected mappings are partitioned into groups that rewrite
    *every* query node to the same source element
    (:meth:`~repro.engine.compiled.CompiledMappingSet.rewrite_groups`), each
    distinct rewrite is matched against the document exactly once, and the
    canonical matches are fanned back out to the group's mappings by bitmask.
    This generalises Algorithm 4's c-block sharing — it needs no anchored
    blocks and never misses sharing due to construction budgets — and
    produces results identical to :func:`evaluate_resolved_basic`.

    The contract on ``embeddings`` and ``mappings`` matches
    :func:`evaluate_resolved_basic`.  ``kernels`` selects the kernel backend
    the compiled bitset loops run on (see
    :func:`repro.engine.kernels.resolve_kernels`); answers are byte-identical
    across backends.
    """
    compiled = mapping_set.compile(kernels)
    selected_mask = compiled.mask_for(mappings)
    query_nodes = list(query.root.iter_subtree())
    per_mapping: dict[int, frozenset[CanonicalMatch]] = {}
    # One match_twig + canonicalisation per distinct element map, shared
    # across embeddings too (two embeddings can induce the same rewrite).
    rewrite_cache: dict[tuple[tuple[int, int], ...], frozenset[CanonicalMatch]] = {}
    for embedding in embeddings:
        for group_mask, assignment in compiled.rewrite_groups(
            set(embedding.values()), selected_mask
        ):
            element_map = {
                node.node_id: assignment[embedding[node.node_id]] for node in query_nodes
            }
            signature = tuple(sorted(element_map.items()))
            canonical = rewrite_cache.get(signature)
            if canonical is None:
                canonical = _canonicalize(match_twig(document, query.root, element_map))
                rewrite_cache[signature] = canonical
            for mapping_id in iter_mapping_ids(group_mask):
                existing = per_mapping.get(mapping_id)
                per_mapping[mapping_id] = (
                    canonical if existing is None else existing | canonical
                )
    return _build_result(query, document, per_mapping, mapping_set)


def evaluate_ptq(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    block_tree: Optional[BlockTree] = None,
) -> PTQResult:
    """Convenience dispatcher: use the block tree when one is provided."""
    if block_tree is None:
        return evaluate_ptq_basic(query, mapping_set, document)
    return evaluate_ptq_blocktree(query, mapping_set, document, block_tree)
