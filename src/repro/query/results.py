"""Result model for probabilistic twig queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.document.document import XMLDocument
from repro.query.twig import TwigQuery

__all__ = ["PTQAnswer", "PTQResult", "CanonicalMatch"]

#: A canonical match: sorted tuple of ``(query node id, document node id)`` pairs.
CanonicalMatch = tuple[tuple[int, int], ...]


@dataclass(frozen=True, slots=True)
class PTQAnswer:
    """One ``(R_i, pr(R_i))`` pair of a PTQ result.

    ``matches`` is the set of matches of the query on the source document
    through mapping ``mapping_id``; ``probability`` is the probability that
    this mapping (and therefore this answer) is the correct one.
    """

    mapping_id: int
    probability: float
    matches: frozenset[CanonicalMatch]

    @property
    def is_empty(self) -> bool:
        """``True`` when the mapping produced no match at all."""
        return not self.matches

    def __repr__(self) -> str:
        return (
            f"PTQAnswer(mapping={self.mapping_id}, p={self.probability:.4f}, "
            f"matches={len(self.matches)})"
        )


class PTQResult:
    """The full answer ``R`` of a probabilistic twig query.

    Besides the raw per-mapping answers, the class offers the aggregated
    views used in the paper's introduction example: the probability that a
    particular *value* (or a particular match pattern) appears in the answer.
    """

    def __init__(
        self,
        query: TwigQuery,
        answers: list[PTQAnswer],
        document: Optional[XMLDocument] = None,
    ) -> None:
        self.query = query
        self.answers = sorted(answers, key=lambda a: (-a.probability, a.mapping_id))
        self.document = document

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[PTQAnswer]:
        return iter(self.answers)

    def answer_for(self, mapping_id: int) -> Optional[PTQAnswer]:
        """Return the answer contributed by ``mapping_id``, or ``None``."""
        for answer in self.answers:
            if answer.mapping_id == mapping_id:
                return answer
        return None

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def total_probability(self) -> float:
        """Sum of the probabilities of the returned answers."""
        return sum(answer.probability for answer in self.answers)

    def non_empty(self) -> list[PTQAnswer]:
        """Answers whose mapping produced at least one match."""
        return [answer for answer in self.answers if not answer.is_empty]

    def pattern_distribution(self) -> dict[frozenset[CanonicalMatch], float]:
        """Probability of each distinct match *set* (answers grouped by pattern)."""
        distribution: dict[frozenset[CanonicalMatch], float] = {}
        for answer in self.answers:
            distribution[answer.matches] = distribution.get(answer.matches, 0.0) + answer.probability
        return distribution

    def value_distribution(self, node_id: Optional[int] = None) -> dict[Optional[str], float]:
        """Probability that each text value appears in the answer.

        For every mapping, the values taken by the query's output node (or
        the node given by ``node_id``) across its matches are collected; the
        mapping's probability is added to each distinct value it produces.
        This reproduces the paper's introduction example, where the answer to
        ``//IP//ICN`` is ``{("Cathy", 0.3), ("Bob", 0.3), ("Alice", 0.2)}``.

        Requires the result to have been built with its source document.
        """
        if self.document is None:
            raise ValueError("value_distribution requires the result's source document")
        output_id = self.query.output_node.node_id if node_id is None else node_id
        distribution: dict[Optional[str], float] = {}
        for answer in self.answers:
            values: set[Optional[str]] = set()
            for match in answer.matches:
                for query_node_id, document_node_id in match:
                    if query_node_id == output_id:
                        values.add(self.document.get(document_node_id).value)
            for value in values:
                distribution[value] = distribution.get(value, 0.0) + answer.probability
        return distribution

    def __repr__(self) -> str:
        return f"PTQResult(query={self.query.text!r}, answers={len(self.answers)})"
