"""Resolving twig queries against the target schema.

A twig query is written with element *labels*; before it can be rewritten
under mappings it must be *resolved* to concrete target-schema elements.  A
resolution (or *embedding*) assigns one target element to every query node
such that labels match and the query's axes (``/`` parent-child,
``//`` ancestor-descendant) are respected by the target schema structure.

Most queries have exactly one embedding, but labels that occur several times
in the target schema (the corpus repeats the party subtree, so ``Address``
or ``ContactName`` occur once per business role) can yield several; PTQ
evaluation unions the answers over all of them.
"""

from __future__ import annotations

from repro.exceptions import QueryError
from repro.query.twig import AXIS_CHILD, TwigNode, TwigQuery
from repro.schema.element import SchemaElement
from repro.schema.schema import Schema

__all__ = ["resolve_query", "Embedding"]

#: An embedding: query node id -> target schema element id.
Embedding = dict[int, int]


def _candidates(
    node: TwigNode, parent_element: SchemaElement | None, schema: Schema
) -> list[SchemaElement]:
    """Target elements that query node ``node`` may resolve to, given its parent's element."""
    if parent_element is None:
        # Query root: a child axis anchors it at the schema root, a
        # descendant axis allows any element with the right label.
        if node.axis == AXIS_CHILD:
            root = schema.root
            return [root] if root is not None and root.label == node.label else []
        return schema.elements_by_label(node.label)
    if node.axis == AXIS_CHILD:
        return [child for child in parent_element.children if child.label == node.label]
    return [
        element
        for element in parent_element.iter_descendants()
        if element.label == node.label
    ]


def _embed_subtree(node: TwigNode, element: SchemaElement, schema: Schema) -> list[Embedding]:
    """Embeddings of the query subtree rooted at ``node`` given that it maps to ``element``."""
    per_child_embeddings: list[list[Embedding]] = []
    for child in node.children:
        child_embeddings: list[Embedding] = []
        for candidate in _candidates(child, element, schema):
            child_embeddings.extend(_embed_subtree(child, candidate, schema))
        if not child_embeddings:
            return []  # this branch of the query cannot be satisfied under `element`
        per_child_embeddings.append(child_embeddings)

    embeddings: list[Embedding] = [{node.node_id: element.element_id}]
    for child_embeddings in per_child_embeddings:
        extended: list[Embedding] = []
        for base in embeddings:
            for child_embedding in child_embeddings:
                merged = dict(base)
                merged.update(child_embedding)
                extended.append(merged)
        embeddings = extended
    return embeddings


def resolve_query(query: TwigQuery, schema: Schema) -> list[Embedding]:
    """Return all embeddings of ``query`` into ``schema``.

    Each embedding maps every query node id to a target element id.  The
    result is empty when the query does not fit the schema at all (for
    example a label that does not exist, or a ``/`` step whose elements are
    not parent and child in the schema).

    Raises
    ------
    QueryError
        If the query has no nodes.
    """
    if not query.nodes:
        raise QueryError("cannot resolve an empty query")
    embeddings: list[Embedding] = []
    for root_candidate in _candidates(query.root, None, schema):
        embeddings.extend(_embed_subtree(query.root, root_candidate, schema))
    unique: dict[tuple[tuple[int, int], ...], Embedding] = {}
    for embedding in embeddings:
        unique[tuple(sorted(embedding.items()))] = embedding
    return list(unique.values())
