"""Matching twig patterns on documents, and structural joins.

The evaluation semantics follow the paper's query-rewriting approach with one
documented simplification (see DESIGN.md / README): a query's axes are
enforced against the *target schema* during resolution, while on the *source
document* matched nodes only need to satisfy ancestor-descendant containment
along every query edge.  This keeps the basic (per-mapping) and the
block-tree (decompose-and-join) evaluation algorithms exactly equivalent, as
both ultimately check containment between document nodes.

A *match* is a dictionary from query node id to the
:class:`~repro.document.node.DocumentNode` assigned to it.
"""

from __future__ import annotations

from repro.document.document import XMLDocument
from repro.document.node import DocumentNode
from repro.exceptions import QueryError
from repro.query.twig import TwigNode

__all__ = ["Match", "match_twig", "stack_join"]

#: A match of a (sub)query: query node id -> document node.
Match = dict[int, DocumentNode]


def match_twig(
    document: XMLDocument,
    query_root: TwigNode,
    element_map: dict[int, int],
) -> list[Match]:
    """Find all matches of the query subtree rooted at ``query_root``.

    Parameters
    ----------
    document:
        The (finalized) source document.
    query_root:
        Root of the query subtree to match.
    element_map:
        For every query node id in the subtree, the *source* schema element
        id its matches must instantiate (produced by rewriting the resolved
        query under a mapping or a c-block).

    Returns
    -------
    list[Match]
        Every assignment of document nodes to the query nodes such that each
        node instantiates its mapped source element, satisfies its value
        predicate, and is a descendant of the node matched by its parent
        query node.
    """
    if not document.finalized:
        raise QueryError("the document must be finalized before matching queries on it")
    return _match_node(document, query_root, element_map)


def _candidate_nodes(
    document: XMLDocument, qnode: TwigNode, element_map: dict[int, int]
) -> list[DocumentNode]:
    try:
        source_element_id = element_map[qnode.node_id]
    except KeyError:
        raise QueryError(
            f"no source element for query node {qnode.node_id} ({qnode.label!r})"
        ) from None
    candidates = document.nodes_of_element(source_element_id)
    if qnode.value is not None:
        candidates = [node for node in candidates if node.value == qnode.value]
    return candidates


def _match_node(
    document: XMLDocument, qnode: TwigNode, element_map: dict[int, int]
) -> list[Match]:
    candidates = _candidate_nodes(document, qnode, element_map)
    if not candidates:
        return []
    if qnode.is_leaf:
        return [{qnode.node_id: candidate} for candidate in candidates]

    per_child_matches: list[tuple[TwigNode, list[Match]]] = []
    for child in qnode.children:
        child_matches = _match_node(document, child, element_map)
        if not child_matches:
            return []
        per_child_matches.append((child, child_matches))

    results: list[Match] = []
    for candidate in candidates:
        combinations: list[Match] = [{qnode.node_id: candidate}]
        for child, child_matches in per_child_matches:
            nested = [
                child_match
                for child_match in child_matches
                if candidate.is_ancestor_of(child_match[child.node_id])
            ]
            if not nested:
                combinations = []
                break
            combinations = [
                {**combination, **child_match}
                for combination in combinations
                for child_match in nested
            ]
        results.extend(combinations)
    return results


def stack_join(
    ancestor_matches: list[Match],
    descendant_matches: list[Match],
    ancestor_node_id: int,
    descendant_node_id: int,
) -> list[Match]:
    """Structural (ancestor-descendant) join of two match lists.

    Combines every match in ``ancestor_matches`` with every match in
    ``descendant_matches`` whose node for ``descendant_node_id`` lies inside
    the ancestor match's node for ``ancestor_node_id``.  This is the binary
    stack-based structural join the paper relies on ([Al-Khalifa et al.,
    ICDE 2002]) for re-assembling decomposed sub-query results.

    Both inputs may be in any order; the output order follows the document
    order of the ancestor nodes.
    """
    if not ancestor_matches or not descendant_matches:
        return []

    ancestors = sorted(ancestor_matches, key=lambda m: m[ancestor_node_id].start)
    descendants = sorted(descendant_matches, key=lambda m: m[descendant_node_id].start)

    results: list[Match] = []
    stack: list[Match] = []  # currently "open" ancestor matches
    a_index = 0
    for descendant_match in descendants:
        descendant_node = descendant_match[descendant_node_id]
        # Push every ancestor that starts before this descendant.
        while a_index < len(ancestors) and (
            ancestors[a_index][ancestor_node_id].start < descendant_node.start
        ):
            stack.append(ancestors[a_index])
            a_index += 1
        # Pop ancestors that already ended.
        stack = [
            ancestor_match
            for ancestor_match in stack
            if ancestor_match[ancestor_node_id].end >= descendant_node.end
        ]
        for ancestor_match in stack:
            ancestor_node = ancestor_match[ancestor_node_id]
            if ancestor_node.is_ancestor_of(descendant_node):
                results.append({**ancestor_match, **descendant_match})
    return results
