"""Parsing twig-query strings.

The syntax follows the paper's Table III queries, a small XPath-like
fragment::

    query      :=  axis? step ( axis step )*
    axis       :=  '/' | '//'
    step       :=  NAME predicate*
    predicate  :=  '[' rel-path ( '=' value )? ']'
    rel-path   :=  ('.')? axis? step ( axis step )*
    value      :=  '"' ... '"'  |  "'" ... "'"

Examples from the paper::

    Order/DeliverTo/Address[./City][./Country]/Street
    Order/POLine[./LineNo]//UnitPrice
    Order[./DeliverTo[.//EMail]//Street]/POLine[.//UnitPrice]/Quantity
    //InvoiceParty//ContactName

Predicate paths become branch children of the step they qualify; the main
path continues as another child.  An optional ``aliases`` mapping expands
short labels (the paper abbreviates ``UnitPrice`` as ``UP`` and
``BuyerPartID`` as ``BPID``).
"""

from __future__ import annotations

import re
from typing import Mapping, Optional

from repro.exceptions import TwigParseError
from repro.query.twig import AXIS_CHILD, AXIS_DESCENDANT, TwigNode, TwigQuery

__all__ = ["parse_twig"]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")


class _Scanner:
    """Character scanner with a tiny amount of lookahead."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def skip_spaces(self) -> None:
        while not self.eof() and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise TwigParseError(
                f"expected {char!r} at position {self.pos} in {self.text!r}, "
                f"found {self.peek()!r}"
            )
        self.pos += 1

    def take_axis(self, default: Optional[str] = None) -> Optional[str]:
        """Consume a leading '/', '//' if present; return the axis or ``default``."""
        if self.peek() == "/":
            if self.peek(1) == "/":
                self.pos += 2
                return AXIS_DESCENDANT
            self.pos += 1
            return AXIS_CHILD
        return default

    def take_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise TwigParseError(
                f"expected an element name at position {self.pos} in {self.text!r}"
            )
        self.pos = match.end()
        return match.group(0)

    def take_value(self) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise TwigParseError(
                f"expected a quoted value at position {self.pos} in {self.text!r}"
            )
        end = self.text.find(quote, self.pos + 1)
        if end < 0:
            raise TwigParseError(f"unterminated string literal in {self.text!r}")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return value


def _parse_path(
    scanner: _Scanner,
    aliases: Mapping[str, str],
    on_main_path: bool,
    default_axis: str,
) -> tuple[TwigNode, TwigNode]:
    """Parse ``axis? step (axis step)*``; return (first node, last node)."""
    axis = scanner.take_axis(default=default_axis)
    first = _parse_step(scanner, aliases, on_main_path, axis or default_axis)
    last = first
    while True:
        scanner.skip_spaces()
        if scanner.peek() != "/":
            break
        axis = scanner.take_axis()
        step = _parse_step(scanner, aliases, on_main_path, axis or AXIS_CHILD)
        last.add_child(step)
        last = step
    return first, last


def _parse_step(
    scanner: _Scanner, aliases: Mapping[str, str], on_main_path: bool, axis: str
) -> TwigNode:
    scanner.skip_spaces()
    name = scanner.take_name()
    label = aliases.get(name, name)
    node = TwigNode(label, axis=axis, on_main_path=on_main_path)
    scanner.skip_spaces()
    while scanner.peek() == "[":
        _parse_predicate(scanner, node, aliases)
        scanner.skip_spaces()
    return node


def _parse_predicate(scanner: _Scanner, owner: TwigNode, aliases: Mapping[str, str]) -> None:
    scanner.expect("[")
    scanner.skip_spaces()
    if scanner.peek() == ".":
        scanner.pos += 1
        if scanner.peek() != "/":
            # A bare "." self-reference: "[. = 'value']" constrains the value
            # of the step that owns the predicate.
            scanner.skip_spaces()
            if scanner.peek() == "=":
                scanner.pos += 1
                scanner.skip_spaces()
                owner.value = scanner.take_value()
                scanner.skip_spaces()
            scanner.expect("]")
            return
    first, last = _parse_path(scanner, aliases, on_main_path=False, default_axis=AXIS_CHILD)
    scanner.skip_spaces()
    if scanner.peek() == "=":
        scanner.pos += 1
        scanner.skip_spaces()
        last.value = scanner.take_value()
        scanner.skip_spaces()
    scanner.expect("]")
    owner.add_child(first)


def parse_twig(text: str, aliases: Optional[Mapping[str, str]] = None) -> TwigQuery:
    """Parse a twig-query string into a :class:`TwigQuery`.

    Parameters
    ----------
    text:
        The query string (see module docstring for the grammar).
    aliases:
        Optional label expansions applied to every step name, e.g.
        ``{"UP": "UnitPrice", "BPID": "BuyerPartID"}``.

    Raises
    ------
    TwigParseError
        On any syntax error; the message includes the offending position.
    """
    if not text or not text.strip():
        raise TwigParseError("empty twig query")
    scanner = _Scanner(text.strip())
    aliases = aliases or {}
    root, _ = _parse_path(scanner, aliases, on_main_path=True, default_axis=AXIS_CHILD)
    scanner.skip_spaces()
    if not scanner.eof():
        raise TwigParseError(
            f"unexpected trailing characters at position {scanner.pos} in {text!r}"
        )
    return TwigQuery(root, text=text.strip())
