"""Twig queries and probabilistic twig query (PTQ) evaluation.

A twig query (:class:`TwigQuery`) is a small tree pattern posed against the
*target* schema.  Because the relationship between the target and the source
schema is uncertain (a set of possible mappings with probabilities), a
*probabilistic twig query* returns, for every relevant mapping, the matches
obtained by rewriting the query onto the source document together with the
mapping's probability (Definition 4 of the paper).

Two evaluation algorithms are provided: :func:`evaluate_ptq_basic`
(Algorithm 3 — rewrite and match once per mapping) and
:func:`evaluate_ptq_blocktree` (Algorithm 4 — decompose the query over the
block tree so mappings that share correspondences are evaluated only once).
:func:`evaluate_topk_ptq` restricts evaluation to the k most probable
mappings (Definition 5).
"""

from repro.query.twig import TwigNode, TwigQuery
from repro.query.parser import parse_twig
from repro.query.resolve import resolve_query
from repro.query.results import PTQAnswer, PTQResult
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree, filter_mappings
from repro.query.topk import evaluate_topk_ptq

__all__ = [
    "TwigNode",
    "TwigQuery",
    "parse_twig",
    "resolve_query",
    "PTQAnswer",
    "PTQResult",
    "filter_mappings",
    "evaluate_ptq_basic",
    "evaluate_ptq_blocktree",
    "evaluate_topk_ptq",
]
