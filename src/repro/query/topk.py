"""Top-k probabilistic twig queries (Definition 5, Section IV-C).

A top-k PTQ returns only the k answer tuples with the highest probabilities.
Because each answer's probability is exactly its mapping's probability, the
k best answers come from the k most probable *relevant* mappings; so, as in
the paper, evaluation simply sorts the relevant mappings by probability,
keeps the first k, and runs the ordinary PTQ machinery on that subset.
"""

from __future__ import annotations

from typing import Optional

from repro.core.blocktree import BlockTree
from repro.document.document import XMLDocument
from repro.mapping.mapping_set import MappingSet
from repro.query.results import PTQResult
from repro.query.twig import TwigQuery

__all__ = ["evaluate_topk_ptq"]


def evaluate_topk_ptq(
    query: TwigQuery,
    mapping_set: MappingSet,
    document: XMLDocument,
    k: int,
    block_tree: Optional[BlockTree] = None,
    kernels=None,
) -> PTQResult:
    """Evaluate a top-k PTQ.

    Parameters
    ----------
    query:
        The twig query over the target schema.
    mapping_set:
        The possible mappings.
    document:
        The source document.
    k:
        Number of answers (mappings) to return.  If fewer than ``k`` mappings
        are relevant, all of them are returned.
    block_tree:
        Optional block tree; when provided, the restricted evaluation uses
        Algorithm 4.  Otherwise it runs on the mapping set's compiled bitset
        view (the engine's ``compiled`` plan) — identical answers, with each
        distinct rewrite of the restricted mapping subset evaluated once.
    kernels:
        Kernel-backend selection for the compiled path (see
        :func:`repro.engine.kernels.resolve_kernels`); answers never depend
        on the backend.

    Returns
    -------
    PTQResult
        At most ``k`` answers, those with the highest probabilities.
    """
    from repro.engine.plans import plan_for

    plan = plan_for("compiled" if block_tree is None else "blocktree")
    return plan.run(
        query, mapping_set, document, block_tree=block_tree, k=k, kernels=kernels
    )
