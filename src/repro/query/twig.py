"""Twig-pattern model."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import QueryError

__all__ = ["TwigNode", "TwigQuery", "AXIS_CHILD", "AXIS_DESCENDANT"]

#: Parent-child axis (``/`` in the query syntax).
AXIS_CHILD = "child"
#: Ancestor-descendant axis (``//`` in the query syntax).
AXIS_DESCENDANT = "descendant"


class TwigNode:
    """A node of a twig pattern.

    Parameters
    ----------
    label:
        Element tag name the node must match (in the *target* schema
    axis:
        Relationship of this node to its parent query node:
        :data:`AXIS_CHILD` (``/``) or :data:`AXIS_DESCENDANT` (``//``).
        For the query root the axis expresses its relationship to the
        document root: ``child`` anchors the query at the root element,
        ``descendant`` lets it start anywhere.
    value:
        Optional equality predicate on the node's text value.
    on_main_path:
        Whether this node lies on the query's main (non-predicate) path;
        the last main-path node is the query's output node.
    """

    __slots__ = ("label", "axis", "value", "children", "on_main_path", "node_id", "parent")

    def __init__(
        self,
        label: str,
        axis: str = AXIS_CHILD,
        value: Optional[str] = None,
        on_main_path: bool = True,
    ) -> None:
        if axis not in (AXIS_CHILD, AXIS_DESCENDANT):
            raise QueryError(f"unknown axis {axis!r}")
        if not label:
            raise QueryError("twig node label must be non-empty")
        self.label = label
        self.axis = axis
        self.value = value
        self.children: list[TwigNode] = []
        self.on_main_path = on_main_path
        self.node_id = -1  # assigned by TwigQuery
        self.parent: Optional[TwigNode] = None

    def add_child(self, child: "TwigNode") -> "TwigNode":
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self) -> Iterator["TwigNode"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    @property
    def is_leaf(self) -> bool:
        """``True`` when the node has no children."""
        return not self.children

    def __repr__(self) -> str:
        axis_symbol = "/" if self.axis == AXIS_CHILD else "//"
        value = f"={self.value!r}" if self.value is not None else ""
        return f"TwigNode({axis_symbol}{self.label}{value}, children={len(self.children)})"


class TwigQuery:
    """A twig pattern: a rooted tree of :class:`TwigNode` objects.

    The constructor assigns every node a ``node_id`` in pre-order; matches
    are reported as tuples of document node ids indexed by these ids.
    """

    def __init__(self, root: TwigNode, text: str = "") -> None:
        self.root = root
        self.text = text
        self.nodes: list[TwigNode] = []
        for node in root.iter_subtree():
            node.node_id = len(self.nodes)
            self.nodes.append(node)
        self._by_id = {node.node_id: node for node in self.nodes}
        output_candidates = [node for node in self.nodes if node.on_main_path]
        if not output_candidates:
            raise QueryError("a twig query must have at least one main-path node")
        # The output node is the deepest main-path node (the last step of the
        # main path); pre-order guarantees it is the last one encountered.
        self.output_node = output_candidates[-1]

    def __len__(self) -> int:
        return len(self.nodes)

    def get(self, node_id: int) -> TwigNode:
        """Return the query node with the given id."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise QueryError(f"query has no node with id {node_id}") from None

    def labels(self) -> list[str]:
        """Labels of all query nodes, in node-id order."""
        return [node.label for node in self.nodes]

    def subquery(self, node: TwigNode) -> "TwigQuery":
        """Return the subquery rooted at ``node`` (sharing the node objects).

        The returned query re-uses the original node ids, which is what the
        decomposition in Algorithm 4 needs when re-assembling sub-results.
        """
        sub = object.__new__(TwigQuery)
        sub.root = node
        sub.text = f"{self.text}@{node.label}"
        sub.nodes = list(node.iter_subtree())
        sub._by_id = {n.node_id: n for n in sub.nodes}
        output_candidates = [n for n in sub.nodes if n.on_main_path]
        sub.output_node = output_candidates[-1] if output_candidates else sub.nodes[-1]
        return sub

    def __repr__(self) -> str:
        return f"TwigQuery({self.text or self.root.label!r}, nodes={len(self.nodes)})"
