"""repro — a reproduction of "Managing Uncertainty of XML Schema Matching" (ICDE 2010).

The library manages the uncertainty of XML schema matching by representing a
schema matching as a set of *possible mappings* with probabilities, storing
them compactly in a *block tree*, and answering *probabilistic twig queries*
(PTQ) over that representation.  It also implements the paper's
divide-and-conquer (partition-based) generation of the top-h possible
mappings from a scored schema matching.

The primary API is the engine facade: a :class:`Dataspace` session owns the
pipeline artifacts (matching → top-h mapping set → block tree → document),
builds and caches them lazily, and answers queries through a fluent builder
that picks an evaluation plan automatically::

    import repro

    ds = repro.Dataspace.from_dataset("D7", h=100)
    result = ds.query("Order/DeliverTo/Contact/EMail").top_k(10).execute()
    for answer in result:
        print(answer.mapping_id, answer.probability, len(answer.matches))
    print(ds.query("Q7").explain().format())   # plan chosen, inputs, timings

Sessions are thread-safe, and the service layer turns one into a serving
component: :class:`QueryService` fans queries over a thread pool with
single-flight de-duplication, batches share their resolve/filter prefix, and
a generation-keyed :class:`ResultCache` memoizes answers without ever serving
a stale generation::

    with repro.QueryService(ds, max_workers=8) as service:
        results = service.execute_many(["Q1", "Q2", "Q7"], k=10)

The pipeline stages also remain available as low-level free functions
(``SchemaMatcher``, :func:`generate_top_h_mappings`,
:func:`build_block_tree`, :func:`evaluate_ptq_blocktree`, ...) for callers
that want to hand-thread the artifacts themselves.
"""

from repro.exceptions import (
    AssignmentError,
    BlockTreeError,
    DatasetError,
    DataspaceError,
    DocumentConformanceError,
    DocumentError,
    MappingError,
    MatchingError,
    CorpusError,
    QueryError,
    ReproError,
    RewriteError,
    SchemaError,
    SchemaParseError,
    StoreError,
    TwigParseError,
)
from repro.schema import (
    Schema,
    SchemaElement,
    available_schemas,
    load_corpus_schema,
    parse_schema,
    parse_schema_xml,
    schema_to_text,
    schema_to_xml,
)
from repro.document import (
    DocumentNode,
    XMLDocument,
    document_to_xml,
    generate_document,
    generate_order_document,
    parse_document_xml,
)
from repro.matching import (
    Correspondence,
    MatcherConfig,
    SchemaMatcher,
    SchemaMatching,
)
from repro.mapping import (
    BipartiteGraph,
    GenerationMethod,
    Mapping,
    MappingSet,
    generate_top_h_mappings,
    partition_matching,
    rank_mappings_murty,
    rank_mappings_partitioned,
    solve_max_weight_matching,
)
from repro.core import Block, BlockTree, BlockTreeConfig, BlockTreeNode, build_block_tree
from repro.query import (
    PTQAnswer,
    PTQResult,
    TwigNode,
    TwigQuery,
    evaluate_ptq_basic,
    evaluate_ptq_blocktree,
    evaluate_topk_ptq,
    filter_mappings,
    parse_twig,
    resolve_query,
)
from repro.stats import (
    cblock_size_distribution,
    compression_ratio,
    o_ratio,
    pairwise_o_ratios,
)
from repro.workloads import (
    DATASET_IDS,
    QUERY_IDS,
    QUERY_STRINGS,
    build_mapping_set,
    load_dataset,
    load_query,
    load_source_document,
    open_corpus,
    open_dataspace,
    standard_datasets,
    standard_queries,
)
from repro.corpus import (
    CorpusAnswer,
    CorpusExecution,
    ShardDocument,
    ShardedCorpus,
    partition_document,
)
from repro.engine import (
    BasicPlan,
    BlockTreePlan,
    CacheKey,
    CacheStats,
    CompiledMappingSet,
    CompiledPlan,
    Dataspace,
    DeltaReport,
    EngineSnapshot,
    ExplainReport,
    MappingDelta,
    PreparedQuery,
    QueryBuilder,
    QueryPlan,
    ResultCache,
    apply_mapping_delta,
    available_plans,
    compile_mapping_set,
    plan_for,
    register_plan,
)
from repro.service import (
    QueryService,
    ReplayOp,
    ReplayReport,
    build_workload,
    replay_workload,
    workload_queries,
)
from repro.store import (
    ArtifactStore,
    BlockStore,
    MemoryBlockStore,
    OverlayBlockStore,
    SqliteBlockStore,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "SchemaError",
    "SchemaParseError",
    "DocumentError",
    "DocumentConformanceError",
    "MatchingError",
    "MappingError",
    "AssignmentError",
    "BlockTreeError",
    "QueryError",
    "TwigParseError",
    "RewriteError",
    "DatasetError",
    "DataspaceError",
    "CorpusError",
    "StoreError",
    # persistent artifact store
    "ArtifactStore",
    "BlockStore",
    "MemoryBlockStore",
    "SqliteBlockStore",
    "OverlayBlockStore",
    # engine facade
    "Dataspace",
    "EngineSnapshot",
    "MappingDelta",
    "DeltaReport",
    "apply_mapping_delta",
    "PreparedQuery",
    "QueryBuilder",
    "QueryPlan",
    "BasicPlan",
    "BlockTreePlan",
    "CompiledPlan",
    "CompiledMappingSet",
    "compile_mapping_set",
    "ExplainReport",
    "plan_for",
    "register_plan",
    "available_plans",
    # sharded corpus
    "ShardedCorpus",
    "ShardDocument",
    "CorpusAnswer",
    "CorpusExecution",
    "partition_document",
    # service layer
    "QueryService",
    "ResultCache",
    "CacheKey",
    "CacheStats",
    "ReplayOp",
    "ReplayReport",
    "workload_queries",
    "build_workload",
    "replay_workload",
    # schema substrate
    "Schema",
    "SchemaElement",
    "parse_schema",
    "parse_schema_xml",
    "schema_to_text",
    "schema_to_xml",
    "available_schemas",
    "load_corpus_schema",
    # documents
    "DocumentNode",
    "XMLDocument",
    "generate_document",
    "generate_order_document",
    "document_to_xml",
    "parse_document_xml",
    # matching
    "Correspondence",
    "SchemaMatching",
    "SchemaMatcher",
    "MatcherConfig",
    # mappings
    "Mapping",
    "MappingSet",
    "BipartiteGraph",
    "GenerationMethod",
    "generate_top_h_mappings",
    "rank_mappings_murty",
    "rank_mappings_partitioned",
    "partition_matching",
    "solve_max_weight_matching",
    # block tree
    "Block",
    "BlockTree",
    "BlockTreeConfig",
    "BlockTreeNode",
    "build_block_tree",
    # queries
    "TwigNode",
    "TwigQuery",
    "parse_twig",
    "resolve_query",
    "PTQAnswer",
    "PTQResult",
    "filter_mappings",
    "evaluate_ptq_basic",
    "evaluate_ptq_blocktree",
    "evaluate_topk_ptq",
    # statistics
    "o_ratio",
    "pairwise_o_ratios",
    "compression_ratio",
    "cblock_size_distribution",
    # workloads
    "DATASET_IDS",
    "QUERY_IDS",
    "QUERY_STRINGS",
    "load_dataset",
    "standard_datasets",
    "build_mapping_set",
    "load_source_document",
    "load_query",
    "standard_queries",
    "open_dataspace",
    "open_corpus",
]
