"""repro — a reproduction of "Managing Uncertainty of XML Schema Matching" (ICDE 2010).

The library manages the uncertainty of XML schema matching by representing a
schema matching as a set of *possible mappings* with probabilities, storing
them compactly in a *block tree*, and answering *probabilistic twig queries*
(PTQ) over that representation.  It also implements the paper's
divide-and-conquer (partition-based) generation of the top-h possible
mappings from a scored schema matching.

The primary API is the engine facade: a :class:`Dataspace` session owns the
pipeline artifacts (matching → top-h mapping set → block tree → document),
builds and caches them lazily, and answers queries through a fluent builder
that picks an evaluation plan automatically::

    import repro

    ds = repro.Dataspace.from_dataset("D7", h=100)
    result = ds.query("Order/DeliverTo/Contact/EMail").top_k(10).execute()
    for answer in result:
        print(answer.mapping_id, answer.probability, len(answer.matches))
    print(ds.query("Q7").explain().format())   # plan chosen, inputs, timings

Sessions are thread-safe, and the service layer turns one into a serving
component: :class:`QueryService` fans queries over a thread pool with
single-flight de-duplication, batches share their resolve/filter prefix, and
a generation-keyed :class:`ResultCache` memoizes answers without ever serving
a stale generation::

    with repro.QueryService(ds, max_workers=8) as service:
        results = service.execute_many(["Q1", "Q2", "Q7"], k=10)

The network layer serves a session (or sharded corpus) over TCP with
admission control, and the typed client speaks the same API remotely with
the same result shapes and the same exceptions::

    server = repro.ReproServer(ds)          # await server.start() / .serve()
    with repro.connect("127.0.0.1", server.port) as client:
        result = client.query("Q7", k=10)   # QueryResult, typed errors

The pipeline stages also remain available as low-level free functions
(``SchemaMatcher``, :func:`generate_top_h_mappings`,
:func:`build_block_tree`, :func:`evaluate_ptq_blocktree`, ...) for callers
that want to hand-thread the artifacts themselves.
"""

from repro.exceptions import (
    AssignmentError,
    BlockTreeError,
    DatasetError,
    DataspaceError,
    DocumentConformanceError,
    DocumentError,
    KernelError,
    MappingError,
    MatchingError,
    CorpusError,
    PersistFailedWarning,
    QueryError,
    ReproError,
    ReproWarning,
    RewriteError,
    SchemaError,
    SchemaParseError,
    StoreError,
    StoreFallbackWarning,
    TwigParseError,
)
from repro.api import (
    PROTOCOL_VERSION,
    BadRequestError,
    OverloadedError,
    PayloadTooLargeError,
    ProtocolError,
    QueryAnswer,
    QueryResult,
    RequestTimeoutError,
    ShuttingDownError,
    SubscriptionEvent,
)
from repro.schema import (
    Schema,
    SchemaElement,
    available_schemas,
    load_corpus_schema,
    parse_schema,
    parse_schema_xml,
    schema_to_text,
    schema_to_xml,
)
from repro.document import (
    DocumentNode,
    XMLDocument,
    document_to_xml,
    generate_document,
    generate_order_document,
    parse_document_xml,
)
from repro.matching import (
    Correspondence,
    MatcherConfig,
    SchemaMatcher,
    SchemaMatching,
)
from repro.mapping import (
    BipartiteGraph,
    GenerationMethod,
    Mapping,
    MappingSet,
    generate_top_h_mappings,
    partition_matching,
    rank_mappings_murty,
    rank_mappings_partitioned,
    solve_max_weight_matching,
)
from repro.core import Block, BlockTree, BlockTreeConfig, BlockTreeNode, build_block_tree
from repro.query import (
    PTQAnswer,
    PTQResult,
    TwigNode,
    TwigQuery,
    filter_mappings,
    parse_twig,
    resolve_query,
)
from repro.stats import (
    cblock_size_distribution,
    compression_ratio,
    o_ratio,
    pairwise_o_ratios,
)
from repro.workloads import (
    DATASET_IDS,
    QUERY_IDS,
    QUERY_STRINGS,
    build_mapping_set,
    load_dataset,
    load_query,
    load_source_document,
    open_corpus,
    open_dataspace,
    standard_datasets,
    standard_queries,
)
from repro.corpus import (
    CorpusAnswer,
    CorpusExecution,
    ShardDocument,
    ShardedCorpus,
    partition_document,
)
from repro.engine import (
    BasicPlan,
    BlockTreePlan,
    CacheKey,
    CacheStats,
    CompiledMappingSet,
    CompiledPlan,
    Dataspace,
    DeltaBatch,
    DeltaBatchReport,
    DeltaReport,
    EngineSnapshot,
    ExplainReport,
    MappingDelta,
    PreparedQuery,
    QueryBuilder,
    QueryPlan,
    ResultCache,
    Subscription,
    SubscriptionUpdate,
    apply_mapping_delta,
    available_plans,
    compile_mapping_set,
    plan_for,
    register_plan,
)
from repro.service import (
    QueryService,
    ReplayOp,
    ReplayReport,
    build_workload,
    replay_workload,
    workload_queries,
)
from repro.store import (
    ArtifactStore,
    BlockStore,
    MemoryBlockStore,
    OverlayBlockStore,
    SqliteBlockStore,
)
from repro.net import ReproClient, ReproServer, connect

__version__ = "1.10.0"

#: Seed-era free functions still exported for compatibility; accessing them
#: through the top-level namespace warns and points at the session API.  The
#: underlying implementations remain available, silently, in ``repro.query``.
_DEPRECATED_QUERY_FUNCTIONS = {
    "evaluate_ptq_basic": 'Dataspace.execute(query, plan="basic")',
    "evaluate_ptq_blocktree": 'Dataspace.execute(query, plan="blocktree")',
    "evaluate_topk_ptq": "Dataspace.query(query).top_k(k).execute()",
}

_deprecated_cache: dict = {}


def __getattr__(name: str):
    """Serve deprecated seed functions with a :class:`DeprecationWarning`."""
    if name in _DEPRECATED_QUERY_FUNCTIONS:
        cached = _deprecated_cache.get(name)
        if cached is not None:
            return cached
        import functools
        import warnings

        import repro.query as _query

        func = getattr(_query, name)
        replacement = _DEPRECATED_QUERY_FUNCTIONS[name]

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            warnings.warn(
                f"repro.{name} is deprecated; use the session API instead "
                f"(e.g. {replacement}). The low-level entry point remains "
                f"available as repro.query.{name}.",
                DeprecationWarning,
                stacklevel=2,
            )
            return func(*args, **kwargs)

        _deprecated_cache[name] = wrapper
        return wrapper
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "SchemaError",
    "SchemaParseError",
    "DocumentError",
    "DocumentConformanceError",
    "MatchingError",
    "MappingError",
    "AssignmentError",
    "BlockTreeError",
    "QueryError",
    "TwigParseError",
    "RewriteError",
    "DatasetError",
    "DataspaceError",
    "CorpusError",
    "StoreError",
    "KernelError",
    "BadRequestError",
    "ProtocolError",
    "PayloadTooLargeError",
    "OverloadedError",
    "ShuttingDownError",
    "RequestTimeoutError",
    # structured warnings
    "ReproWarning",
    "StoreFallbackWarning",
    "PersistFailedWarning",
    # network front-end and typed client
    "ReproServer",
    "ReproClient",
    "connect",
    "PROTOCOL_VERSION",
    "QueryAnswer",
    "QueryResult",
    "SubscriptionEvent",
    # persistent artifact store
    "ArtifactStore",
    "BlockStore",
    "MemoryBlockStore",
    "SqliteBlockStore",
    "OverlayBlockStore",
    # engine facade
    "Dataspace",
    "EngineSnapshot",
    "MappingDelta",
    "DeltaReport",
    "apply_mapping_delta",
    "DeltaBatch",
    "DeltaBatchReport",
    "Subscription",
    "SubscriptionUpdate",
    "PreparedQuery",
    "QueryBuilder",
    "QueryPlan",
    "BasicPlan",
    "BlockTreePlan",
    "CompiledPlan",
    "CompiledMappingSet",
    "compile_mapping_set",
    "ExplainReport",
    "plan_for",
    "register_plan",
    "available_plans",
    # sharded corpus
    "ShardedCorpus",
    "ShardDocument",
    "CorpusAnswer",
    "CorpusExecution",
    "partition_document",
    # service layer
    "QueryService",
    "ResultCache",
    "CacheKey",
    "CacheStats",
    "ReplayOp",
    "ReplayReport",
    "workload_queries",
    "build_workload",
    "replay_workload",
    # schema substrate
    "Schema",
    "SchemaElement",
    "parse_schema",
    "parse_schema_xml",
    "schema_to_text",
    "schema_to_xml",
    "available_schemas",
    "load_corpus_schema",
    # documents
    "DocumentNode",
    "XMLDocument",
    "generate_document",
    "generate_order_document",
    "document_to_xml",
    "parse_document_xml",
    # matching
    "Correspondence",
    "SchemaMatching",
    "SchemaMatcher",
    "MatcherConfig",
    # mappings
    "Mapping",
    "MappingSet",
    "BipartiteGraph",
    "GenerationMethod",
    "generate_top_h_mappings",
    "rank_mappings_murty",
    "rank_mappings_partitioned",
    "partition_matching",
    "solve_max_weight_matching",
    # block tree
    "Block",
    "BlockTree",
    "BlockTreeConfig",
    "BlockTreeNode",
    "build_block_tree",
    # queries
    "TwigNode",
    "TwigQuery",
    "parse_twig",
    "resolve_query",
    "PTQAnswer",
    "PTQResult",
    "filter_mappings",
    "evaluate_ptq_basic",
    "evaluate_ptq_blocktree",
    "evaluate_topk_ptq",
    # statistics
    "o_ratio",
    "pairwise_o_ratios",
    "compression_ratio",
    "cblock_size_distribution",
    # workloads
    "DATASET_IDS",
    "QUERY_IDS",
    "QUERY_STRINGS",
    "load_dataset",
    "standard_datasets",
    "build_mapping_set",
    "load_source_document",
    "load_query",
    "standard_queries",
    "open_dataspace",
    "open_corpus",
]
