"""Block-tree construction (Section III-B, Algorithms 1 and 2).

The block tree ``X`` mirrors the structure of the target schema ``T``.  Every
node may carry a list of c-blocks anchored at the corresponding target
element.  Construction proceeds bottom-up (post-order over ``T``):

* at a **leaf**, ``init_block`` groups the mappings by the correspondence
  they contain for that leaf and keeps the groups with at least ``τ·|M|``
  members (Definition 2);
* at a **non-leaf** node, Lemma 2 allows pruning: if any child produced no
  c-block, the node cannot have one either.  Otherwise ``gen_non_leaf``
  combines each of the node's own single-correspondence blocks with one
  c-block per child (Lemma 1), intersecting their mapping sets and keeping
  combinations that retain enough support.  The two construction budgets
  ``MAX_B`` (c-blocks created at non-leaf nodes) and ``MAX_F`` (failed
  combination attempts) bound the work.

A hash table ``H`` maps target-schema paths to block-tree nodes that carry at
least one c-block; probabilistic twig query evaluation uses it to find the
highest anchored subtree covering a query.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.block import Block
from repro.exceptions import BlockTreeError
from repro.mapping.mapping_set import (
    CORRESPONDENCE_BYTES,
    MAPPING_HEADER_BYTES,
    MAPPING_ID_BYTES,
    MappingSet,
)
from repro.schema.element import SchemaElement
from repro.schema.schema import Schema

__all__ = ["BlockTreeConfig", "BlockTreeNode", "BlockTree", "build_block_tree"]

#: Estimated storage cost of one block-tree node and one hash-table entry.
TREE_NODE_BYTES = 8
HASH_ENTRY_BYTES = 16


@dataclass(frozen=True, slots=True)
class BlockTreeConfig:
    """Construction parameters of the block tree.

    Parameters
    ----------
    tau:
        Confidence threshold ``τ``: a c-block must be shared by at least
        ``τ·|M|`` mappings.  The paper's default is 0.2.
    max_blocks:
        ``MAX_B`` — the maximum number of c-blocks created at non-leaf nodes
        over the whole tree.  Default 500 (the paper's default).
    max_failures:
        ``MAX_F`` — the maximum number of failed block-combination attempts
        per non-leaf node.  Default 500.
    """

    tau: float = 0.2
    max_blocks: int = 500
    max_failures: int = 500

    def __post_init__(self) -> None:
        if not (0.0 < self.tau <= 1.0):
            raise BlockTreeError(f"tau must be in (0, 1], got {self.tau}")
        if self.max_blocks < 0 or self.max_failures < 0:
            raise BlockTreeError("max_blocks and max_failures must be non-negative")


@dataclass
class BlockTreeNode:
    """One node of the block tree: a target element and its anchored c-blocks."""

    element_id: int
    path: str
    children: list["BlockTreeNode"] = field(default_factory=list)
    blocks: list[Block] = field(default_factory=list)

    @property
    def has_blocks(self) -> bool:
        """``True`` when at least one c-block is anchored here."""
        return bool(self.blocks)

    def __repr__(self) -> str:
        return f"BlockTreeNode(path={self.path!r}, blocks={len(self.blocks)})"


class BlockTree:
    """The block tree ``X`` plus its hash table ``H`` and storage accounting.

    Use :func:`build_block_tree` to construct one; the class itself only
    provides lookups and statistics over the finished structure.
    """

    def __init__(
        self,
        target_schema: Schema,
        mapping_set: MappingSet,
        config: BlockTreeConfig,
    ) -> None:
        self.target_schema = target_schema
        self.mapping_set = mapping_set
        self.config = config
        self._nodes: dict[int, BlockTreeNode] = {}
        self.root: Optional[BlockTreeNode] = None
        #: The hash table H: target-schema path -> block-tree node (only for
        #: nodes that carry at least one c-block).
        self.hash_table: dict[str, BlockTreeNode] = {}
        #: Construction statistics, filled in by the builder.
        self.construction_seconds: float = 0.0
        self.non_leaf_blocks_created: int = 0
        self.failed_attempts: int = 0
        # Lazily built statistic caches.  The builder is the only mutator and
        # never reads them; once build_block_tree returns, the tree is
        # immutable, so caching the flat block list and the per-mapping
        # membership index (block count + covered correspondences) is safe.
        self._all_blocks: Optional[list[Block]] = None
        self._membership: Optional[dict[int, tuple[int, frozenset]]] = None

        self._build_skeleton()

    # ------------------------------------------------------------------ #
    # Skeleton
    # ------------------------------------------------------------------ #
    def _build_skeleton(self) -> None:
        root_element = self.target_schema.root
        if root_element is None:
            raise BlockTreeError("cannot build a block tree over a schema with no root")
        for element in self.target_schema.iter_preorder():
            node = BlockTreeNode(element_id=element.element_id, path=element.path)
            self._nodes[element.element_id] = node
            if element.parent is not None:
                self._nodes[element.parent.element_id].children.append(node)
        self.root = self._nodes[root_element.element_id]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def node_for_element(self, element_id: int) -> BlockTreeNode:
        """Return the block-tree node mirroring target element ``element_id``."""
        try:
            return self._nodes[element_id]
        except KeyError:
            raise BlockTreeError(f"no block-tree node for target element {element_id}") from None

    def node_for_path(self, path: str) -> Optional[BlockTreeNode]:
        """Hash-table lookup: the node for ``path`` if it carries c-blocks, else ``None``."""
        return self.hash_table.get(path)

    def blocks_at(self, element_id: int) -> list[Block]:
        """Return the c-blocks anchored at target element ``element_id``."""
        return list(self.node_for_element(element_id).blocks)

    def iter_blocks(self) -> Iterator[Block]:
        """Yield every c-block in the tree (pre-order over the target schema)."""
        for element in self.target_schema.iter_preorder():
            yield from self._nodes[element.element_id].blocks

    def all_blocks(self) -> list[Block]:
        """Every c-block (pre-order), materialised once and cached.

        Statistics and storage accounting share this list instead of
        re-walking the target schema per call.
        """
        if self._all_blocks is None:
            self._all_blocks = list(self.iter_blocks())
        return self._all_blocks

    @property
    def num_blocks(self) -> int:
        """Total number of c-blocks stored in the tree."""
        return len(self.all_blocks())

    # ------------------------------------------------------------------ #
    # Storage accounting (compression ratio of Section VI-B.2)
    # ------------------------------------------------------------------ #
    def _membership_index(self) -> dict[int, tuple[int, frozenset]]:
        """Per-mapping block membership, built once over all blocks and cached.

        Maps every mapping id to ``(number of blocks containing it, union of
        the correspondences those blocks cover)`` — the inputs both
        :meth:`residual_correspondences` and :meth:`compressed_storage_bytes`
        used to recompute from scratch per call.
        """
        if self._membership is None:
            counts: dict[int, int] = {m.mapping_id: 0 for m in self.mapping_set}
            covered: dict[int, set] = {m.mapping_id: set() for m in self.mapping_set}
            for block in self.all_blocks():
                for mapping_id in block.mapping_ids:
                    counts[mapping_id] += 1
                    covered[mapping_id].update(block.correspondences)
            self._membership = {
                mapping_id: (counts[mapping_id], frozenset(covered[mapping_id]))
                for mapping_id in counts
            }
        return self._membership

    def block_storage_bytes(self) -> int:
        """Estimated bytes to store all c-blocks (correspondences + mapping ids)."""
        total = 0
        for block in self.all_blocks():
            total += CORRESPONDENCE_BYTES * block.size
            total += MAPPING_ID_BYTES * block.support
        return total

    def residual_correspondences(self, mapping_id: int) -> frozenset:
        """Correspondences of a mapping that no c-block containing it covers.

        This is the effect of the paper's ``remove_duplicate_corr`` step: a
        mapping stores pointers to the blocks it belongs to plus only these
        residual correspondences.  Served from the cached per-mapping
        membership index.
        """
        mapping = self.mapping_set[mapping_id]
        _, covered = self._membership_index()[mapping_id]
        return frozenset(mapping.correspondences - covered)

    def compressed_storage_bytes(self) -> int:
        """Estimated bytes of the block-tree representation of the mapping set.

        Counts the blocks, the tree skeleton, the hash table, and for every
        mapping its header, its block pointers and its residual (uncovered)
        correspondences — the latter two via the cached membership index.
        """
        total = self.block_storage_bytes()
        total += TREE_NODE_BYTES * len(self._nodes)
        total += HASH_ENTRY_BYTES * len(self.hash_table)
        membership = self._membership_index()
        for mapping in self.mapping_set:
            count, covered = membership[mapping.mapping_id]
            residual = len(mapping.correspondences - covered)
            total += MAPPING_HEADER_BYTES
            total += MAPPING_ID_BYTES * count
            total += CORRESPONDENCE_BYTES * residual
        return total

    def compression_ratio(self) -> float:
        """The paper's compression ratio: ``1 - B / naive``.

        ``B`` is the compressed (block tree + hash table + residual mappings)
        size and ``naive`` the size of storing every mapping with all of its
        correspondences.
        """
        naive = self.mapping_set.naive_storage_bytes()
        if naive == 0:
            return 0.0
        return 1.0 - self.compressed_storage_bytes() / naive

    def describe(self) -> dict:
        """Summary of the tree: block counts, sizes, support and storage."""
        blocks = self.all_blocks()
        sizes = [block.size for block in blocks]
        supports = [block.support for block in blocks]
        return {
            "num_blocks": len(blocks),
            "non_leaf_blocks_created": self.non_leaf_blocks_created,
            "hash_entries": len(self.hash_table),
            "max_block_size": max(sizes, default=0),
            "mean_block_size": sum(sizes) / len(sizes) if sizes else 0.0,
            "mean_block_support": sum(supports) / len(supports) if supports else 0.0,
            "compression_ratio": self.compression_ratio(),
            "construction_seconds": self.construction_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"BlockTree(target={self.target_schema.name!r}, blocks={self.num_blocks}, "
            f"tau={self.config.tau})"
        )


# --------------------------------------------------------------------------- #
# Construction (Algorithms 1 and 2)
# --------------------------------------------------------------------------- #
class _Builder:
    """Stateful helper running the post-order construction."""

    def __init__(self, tree: BlockTree) -> None:
        self.tree = tree
        self.mapping_set = tree.mapping_set
        self.config = tree.config
        self.min_support = self.config.tau * len(self.mapping_set)
        self.non_leaf_count = 0  # the paper's global `count` (bounded by MAX_B)

    # -- init_block: single-correspondence blocks for one target element ---- #
    def init_block(self, element: SchemaElement) -> list[Block]:
        groups: dict[int, list[int]] = {}
        for mapping in self.mapping_set:
            source_id = mapping.source_for_target(element.element_id)
            if source_id is not None:
                groups.setdefault(source_id, []).append(mapping.mapping_id)
        blocks = []
        for source_id in sorted(groups):
            mapping_ids = groups[source_id]
            if len(mapping_ids) >= self.min_support:
                blocks.append(
                    Block(
                        anchor_id=element.element_id,
                        correspondences=frozenset({(source_id, element.element_id)}),
                        mapping_ids=frozenset(mapping_ids),
                    )
                )
        return blocks

    # -- gen_non_leaf: combine own blocks with one block per child ---------- #
    def gen_non_leaf(self, element: SchemaElement, node: BlockTreeNode) -> int:
        own_blocks = self.init_block(element)
        if not own_blocks:
            return 0
        child_block_lists = [
            self.tree.node_for_element(child.element_id).blocks for child in element.children
        ]
        created = 0
        failures = 0
        for own_block in own_blocks:
            for combination in itertools.product(*child_block_lists):
                if (
                    self.non_leaf_count >= self.config.max_blocks
                    or failures >= self.config.max_failures
                ):
                    self.tree.failed_attempts += failures
                    return created
                mapping_ids = own_block.mapping_ids
                for child_block in combination:
                    mapping_ids = mapping_ids & child_block.mapping_ids
                    if len(mapping_ids) < self.min_support:
                        break
                if len(mapping_ids) >= self.min_support:
                    correspondences = set(own_block.correspondences)
                    for child_block in combination:
                        correspondences.update(child_block.correspondences)
                    node.blocks.append(
                        Block(
                            anchor_id=element.element_id,
                            correspondences=frozenset(correspondences),
                            mapping_ids=frozenset(mapping_ids),
                        )
                    )
                    created += 1
                    self.non_leaf_count += 1
                else:
                    failures += 1
        self.tree.failed_attempts += failures
        return created

    # -- construct_c_block: post-order recursion over the target schema ----- #
    def construct(self, element: SchemaElement) -> int:
        node = self.tree.node_for_element(element.element_id)
        if element.is_leaf:
            node.blocks.extend(self.init_block(element))
            created = len(node.blocks)
        else:
            children_all_have_blocks = True
            for child in element.children:
                if self.construct(child) == 0:
                    children_all_have_blocks = False
            if not children_all_have_blocks:
                return 0
            created = self.gen_non_leaf(element, node)
        if created > 0:
            self.tree.hash_table[element.path] = node
        return created


def build_block_tree(
    mapping_set: MappingSet,
    config: BlockTreeConfig | None = None,
) -> BlockTree:
    """Build the block tree of a mapping set (Algorithm 1).

    Parameters
    ----------
    mapping_set:
        The possible mappings ``M`` (with probabilities) of a schema matching.
    config:
        Construction parameters; defaults to the paper's defaults
        (``τ=0.2``, ``MAX_B=500``, ``MAX_F=500``).

    Returns
    -------
    BlockTree
        The finished tree, with its hash table and construction statistics
        (``construction_seconds`` corresponds to the paper's ``Tc``).
    """
    config = config or BlockTreeConfig()
    target_schema = mapping_set.matching.target
    tree = BlockTree(target_schema, mapping_set, config)
    builder = _Builder(tree)
    started = time.perf_counter()
    assert target_schema.root is not None
    builder.construct(target_schema.root)
    tree.construction_seconds = time.perf_counter() - started
    tree.non_leaf_blocks_created = builder.non_leaf_count
    return tree
