"""Blocks and c-blocks (Definitions 1 and 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import BlockTreeError
from repro.mapping.mapping_set import mapping_mask
from repro.matching.correspondence import CorrespondenceKey

__all__ = ["Block"]


@dataclass(frozen=True, slots=True)
class Block:
    """A c-block: correspondences shared by a set of mappings, anchored at a target element.

    Following Definition 2, a c-block ``b`` has

    * an *anchor* ``b.a`` — a target schema element (here ``anchor_id``);
    * a correspondence set ``b.C`` containing exactly one correspondence for
      every element of the target subtree rooted at the anchor; and
    * a mapping-id set ``b.M`` — the possible mappings that all contain
      ``b.C`` — whose size is at least ``τ·|M|``.

    Instances are immutable; the block tree builder is the only producer.
    """

    anchor_id: int
    correspondences: frozenset[CorrespondenceKey]
    mapping_ids: frozenset[int]
    # Lazily computed bitmask form of mapping_ids; excluded from equality and
    # hashing so two blocks compare on their definition, not cache state.
    _mapping_mask: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.anchor_id < 0:
            raise BlockTreeError(f"block anchor id must be non-negative, got {self.anchor_id}")
        if not self.correspondences:
            raise BlockTreeError("a block must contain at least one correspondence")
        if not self.mapping_ids:
            raise BlockTreeError("a block must be shared by at least one mapping")
        if self.anchor_id not in {target_id for _, target_id in self.correspondences}:
            raise BlockTreeError(
                f"block anchored at target element {self.anchor_id} has no correspondence "
                "for its anchor"
            )

    @property
    def size(self) -> int:
        """Number of correspondences in the block (``|b.C|``)."""
        return len(self.correspondences)

    @property
    def support(self) -> int:
        """Number of mappings sharing the block (``|b.M|``)."""
        return len(self.mapping_ids)

    @property
    def mapping_mask(self) -> int:
        """``mapping_ids`` as a bitmask (bit ``i`` set iff mapping ``i`` shares the block).

        Computed on first access and cached, so c-block membership tests in
        the evaluators are single bitwise-AND operations instead of frozenset
        intersections.
        """
        mask = self._mapping_mask
        if mask is None:
            mask = mapping_mask(self.mapping_ids)
            object.__setattr__(self, "_mapping_mask", mask)
        return mask

    def covered_target_ids(self) -> set[int]:
        """Target element ids covered by the block's correspondences."""
        return {target_id for _, target_id in self.correspondences}

    def source_for_target(self, target_id: int) -> int | None:
        """Source element paired with ``target_id`` in this block, or ``None``."""
        for source_id, block_target_id in self.correspondences:
            if block_target_id == target_id:
                return source_id
        return None

    def __repr__(self) -> str:
        return (
            f"Block(anchor={self.anchor_id}, correspondences={len(self.correspondences)}, "
            f"mappings={len(self.mapping_ids)})"
        )
