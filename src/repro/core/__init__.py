"""The block tree: a compact representation of possible mappings.

This is the paper's primary contribution (Section III): blocks capture sets
of correspondences shared by many possible mappings, *c-blocks* (constrained
blocks) additionally cover a complete subtree of the target schema and are
shared by at least ``τ·|M|`` mappings, and the *block tree* organises c-blocks
along the structure of the target schema together with a path hash table used
during query evaluation.
"""

from repro.core.block import Block
from repro.core.blocktree import BlockTree, BlockTreeConfig, BlockTreeNode, build_block_tree

__all__ = [
    "Block",
    "BlockTree",
    "BlockTreeConfig",
    "BlockTreeNode",
    "build_block_tree",
]
