"""Metrics reported in the paper's evaluation section.

* :mod:`repro.stats.overlap` — the o-ratio of a mapping set (Table II).
* :mod:`repro.stats.metrics` — block-tree statistics: compression ratio
  (Fig. 9a), c-block counts (Fig. 9b) and the c-block size distribution
  (Fig. 9c).
"""

from repro.stats.overlap import o_ratio, pairwise_o_ratios
from repro.stats.metrics import (
    block_support_distribution,
    cblock_size_distribution,
    compression_ratio,
    size_distribution_histogram,
)

__all__ = [
    "o_ratio",
    "pairwise_o_ratios",
    "cblock_size_distribution",
    "block_support_distribution",
    "size_distribution_histogram",
    "compression_ratio",
]
