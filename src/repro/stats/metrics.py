"""Block-tree metrics used by the evaluation benchmarks."""

from __future__ import annotations

from collections import Counter

from repro.core.blocktree import BlockTree

__all__ = [
    "compression_ratio",
    "cblock_size_distribution",
    "block_support_distribution",
    "size_distribution_histogram",
]


def compression_ratio(block_tree: BlockTree) -> float:
    """Space saved by the block-tree representation (Fig. 9a).

    Defined as ``1 - B / naive`` where ``B`` is the size of the block tree,
    its hash table and the compressed mappings (correspondences covered by
    blocks replaced by block pointers), and ``naive`` is the size of storing
    every mapping in full.
    """
    return block_tree.compression_ratio()


def cblock_size_distribution(block_tree: BlockTree) -> list[float]:
    """Size of every c-block as a fraction of the target schema (Fig. 9c).

    Each entry is ``|b.C| / |T|`` for one c-block ``b``; the paper plots the
    histogram of these fractions.
    """
    target_size = len(block_tree.target_schema)
    if target_size == 0:
        return []
    return [block.size / target_size for block in block_tree.iter_blocks()]


def block_support_distribution(block_tree: BlockTree) -> list[int]:
    """Number of mappings sharing each c-block (``|b.M|`` per block)."""
    return [block.support for block in block_tree.iter_blocks()]


def size_distribution_histogram(block_tree: BlockTree) -> dict[int, int]:
    """Histogram of c-block sizes in number of correspondences.

    Keys are block sizes (``|b.C|``), values are how many c-blocks have that
    size; a convenient textual companion to :func:`cblock_size_distribution`.
    """
    return dict(sorted(Counter(block.size for block in block_tree.iter_blocks()).items()))
