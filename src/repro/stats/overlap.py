"""Mapping-overlap statistics (the o-ratio of Table II)."""

from __future__ import annotations

from repro.mapping.mapping_set import MappingSet

__all__ = ["o_ratio", "pairwise_o_ratios"]


def o_ratio(mapping_set: MappingSet) -> float:
    """Average pairwise overlap ratio of a mapping set.

    For two mappings the overlap ratio is ``|mi ∩ mj| / |mi ∪ mj|`` over
    their correspondence sets; the o-ratio of the set is the mean over all
    unordered pairs.  High values motivate the block tree: shared
    correspondences can be stored and queried once.
    """
    return mapping_set.o_ratio()


def pairwise_o_ratios(mapping_set: MappingSet) -> list[list[float]]:
    """Full symmetric matrix of pairwise overlap ratios.

    Useful for inspecting the overlap structure (e.g. clusters of mappings
    that differ only in one ambiguous element).  The diagonal is 1.
    """
    mappings = mapping_set.mappings
    size = len(mappings)
    matrix = [[1.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            value = mappings[i].overlap_ratio(mappings[j])
            matrix[i][j] = value
            matrix[j][i] = value
    return matrix
