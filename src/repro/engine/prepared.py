"""Prepared queries and the fluent query builder.

A :class:`PreparedQuery` is a twig query compiled against one
:class:`~repro.engine.dataspace.Dataspace` session: the resolve step (query →
target-schema embeddings) is computed once per query, and the filter step
(relevant mappings) once per *mapping-set generation* — the session bumps its
generation counter whenever the mapping set is invalidated, so a prepared
query transparently refreshes exactly the work that went stale.

:class:`QueryBuilder` is the immutable fluent front-end::

    result = ds.query("Order/DeliverTo/Contact/EMail").top_k(10).execute()
    report = ds.query("Q7").plan("basic").explain()

Each builder method returns a new builder, so partially-configured builders
can be shared and specialised without aliasing surprises.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Union

from repro.engine.plans import (
    ExplainReport,
    QueryPlan,
    anchored_subtree_paths,
    plan_for,
)
from repro.mapping.mapping import Mapping
from repro.query.ptq import filter_mappings
from repro.query.resolve import Embedding, resolve_query
from repro.query.results import PTQResult
from repro.query.twig import TwigQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.dataspace import Dataspace

__all__ = ["PreparedQuery", "QueryBuilder"]

PlanSpec = Union[str, QueryPlan, None]


class PreparedQuery:
    """A twig query compiled against a session (see module docstring).

    Obtain instances through :meth:`Dataspace.prepare` (or the fluent
    :meth:`Dataspace.query`); the session caches them per query text.
    ``resolve_count`` and ``filter_count`` record how often the two cached
    pipeline stages were actually recomputed — they are what the engine's
    cache tests observe.
    """

    def __init__(self, dataspace: "Dataspace", query: TwigQuery) -> None:
        self._dataspace = dataspace
        self._query = query
        self._embeddings: Optional[list[Embedding]] = None
        self._relevant: Optional[list[Mapping]] = None
        self._relevant_generation = -1
        #: Number of times the resolve stage ran (never more than once).
        self.resolve_count = 0
        #: Number of times the filter stage ran (once per mapping-set generation used).
        self.filter_count = 0

    # ------------------------------------------------------------------ #
    # Cached pipeline stages
    # ------------------------------------------------------------------ #
    @property
    def dataspace(self) -> "Dataspace":
        """The session this query was prepared against."""
        return self._dataspace

    @property
    def query(self) -> TwigQuery:
        """The compiled twig query."""
        return self._query

    @property
    def text(self) -> str:
        """The query's text form."""
        return self._query.text

    @property
    def embeddings(self) -> list[Embedding]:
        """Embeddings of the query into the target schema (resolved once)."""
        if self._embeddings is None:
            self._embeddings = resolve_query(self._query, self._dataspace.target_schema)
            self.resolve_count += 1
        return self._embeddings

    def relevant_mappings(self) -> list[Mapping]:
        """Relevant mappings, filtered once per mapping-set generation."""
        mapping_set = self._dataspace.mapping_set
        generation = self._dataspace.generation
        if self._relevant is None or self._relevant_generation != generation:
            self._relevant = filter_mappings(mapping_set, self.embeddings)
            self._relevant_generation = generation
            self.filter_count += 1
        return self._relevant

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, *, k: Optional[int] = None, plan: PlanSpec = None) -> PTQResult:
        """Evaluate the query against the session's current artifacts.

        Parameters
        ----------
        k:
            Optional top-k restriction (Definition 5).
        plan:
            Optional plan override (name or :class:`QueryPlan`); when
            omitted the session selects one.
        """
        ds = self._dataspace
        chosen, _ = ds.select_plan(plan)
        block_tree = ds.block_tree if chosen.uses_block_tree else None
        return chosen.run(
            self._query,
            ds.mapping_set,
            ds.document,
            block_tree=block_tree,
            embeddings=self.embeddings,
            relevant=self.relevant_mappings(),
            k=k,
        )

    def explain(self, *, k: Optional[int] = None, plan: PlanSpec = None) -> ExplainReport:
        """Execute the query and report plan choice, inputs and stage timings."""
        ds = self._dataspace
        timings: dict[str, float] = {}

        started = time.perf_counter()
        embeddings = self.embeddings
        timings["resolve"] = (time.perf_counter() - started) * 1000.0

        mapping_set = ds.mapping_set
        started = time.perf_counter()
        relevant = self.relevant_mappings()
        timings["filter"] = (time.perf_counter() - started) * 1000.0

        chosen, reason = ds.select_plan(plan)
        block_tree = ds.block_tree if chosen.uses_block_tree else None

        started = time.perf_counter()
        result = chosen.run(
            self._query,
            mapping_set,
            ds.document,
            block_tree=block_tree,
            embeddings=embeddings,
            relevant=relevant,
            k=k,
        )
        timings["evaluate"] = (time.perf_counter() - started) * 1000.0

        num_selected = len(relevant) if k is None else min(k, len(relevant))
        anchored = (
            anchored_subtree_paths(self._query, embeddings, block_tree)
            if block_tree is not None
            else ()
        )
        return ExplainReport(
            query=self.text,
            plan=chosen.name,
            reason=reason,
            num_mappings=len(mapping_set),
            num_embeddings=len(embeddings),
            num_relevant=len(relevant),
            relevant_mapping_ids=tuple(mapping.mapping_id for mapping in relevant),
            k=k,
            num_selected=num_selected,
            num_blocks=block_tree.num_blocks if block_tree is not None else None,
            anchored_paths=anchored,
            timings_ms=timings,
            num_answers=len(result),
            num_non_empty=len(result.non_empty()),
        )

    def __repr__(self) -> str:
        return f"PreparedQuery({self.text!r}, dataspace={self._dataspace.name!r})"


class QueryBuilder:
    """Immutable fluent builder over a :class:`PreparedQuery` (see module docs)."""

    __slots__ = ("_prepared", "_k", "_plan")

    def __init__(
        self, prepared: PreparedQuery, k: Optional[int] = None, plan: PlanSpec = None
    ) -> None:
        self._prepared = prepared
        self._k = k
        self._plan = plan

    @property
    def prepared(self) -> PreparedQuery:
        """The underlying prepared query (shared across derived builders)."""
        return self._prepared

    def top_k(self, k: int) -> "QueryBuilder":
        """Return a builder restricted to the ``k`` most probable answers."""
        return QueryBuilder(self._prepared, k, self._plan)

    def plan(self, plan: Union[str, QueryPlan]) -> "QueryBuilder":
        """Return a builder forced onto a specific evaluation plan."""
        return QueryBuilder(self._prepared, self._k, plan)

    def execute(self) -> PTQResult:
        """Evaluate with the builder's settings."""
        return self._prepared.execute(k=self._k, plan=self._plan)

    def explain(self) -> ExplainReport:
        """Evaluate and report how (plan, inputs, timings)."""
        return self._prepared.explain(k=self._k, plan=self._plan)

    def __repr__(self) -> str:
        plan = self._plan.name if isinstance(self._plan, QueryPlan) else self._plan
        return f"QueryBuilder({self._prepared.text!r}, k={self._k}, plan={plan})"
