"""Prepared queries and the fluent query builder.

A :class:`PreparedQuery` is a twig query compiled against one
:class:`~repro.engine.dataspace.Dataspace` session: the resolve step (query →
target-schema embeddings) is computed once per query, and the filter step
(relevant mappings) once per *mapping-set generation* — the session bumps its
generation counter whenever the mapping set is invalidated, so a prepared
query transparently refreshes exactly the work that went stale.  The filter
step goes through the session's shared filter cache, so distinct queries that
require the same target elements share one ``filter_mappings`` pass.

Execution is snapshot-based and thread-safe: each :meth:`PreparedQuery.execute`
captures (or receives) a consistent :class:`~repro.engine.dataspace.EngineSnapshot`
and consults the session's result cache under a key that includes the
snapshot's generation, so concurrent reconfiguration can neither tear an
evaluation nor let a stale cached answer escape.

:class:`QueryBuilder` is the immutable fluent front-end::

    result = ds.query("Order/DeliverTo/Contact/EMail").top_k(10).execute()
    report = ds.query("Q7").plan("basic").explain()

Each builder method returns a new builder, so partially-configured builders
can be shared and specialised without aliasing surprises.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Union

from repro.engine.cache import CacheKey
from repro.engine.delta import embeddings_target_mask
from repro.engine.plans import (
    ExplainReport,
    QueryPlan,
    anchored_subtree_paths,
    plan_for,
    select_top_k,
)
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import mapping_mask
from repro.query.resolve import Embedding, resolve_query
from repro.query.results import PTQResult
from repro.query.twig import TwigQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.dataspace import Dataspace, EngineSnapshot

__all__ = ["PreparedQuery", "QueryBuilder"]

PlanSpec = Union[str, QueryPlan, None]

#: Per-generation relevant-mapping memos kept per prepared query; old
#: generations are pruned so long-lived sessions cannot grow unboundedly.
_MAX_GENERATION_MEMOS = 8


class PreparedQuery:
    """A twig query compiled against a session (see module docstring).

    Obtain instances through :meth:`Dataspace.prepare` (or the fluent
    :meth:`Dataspace.query`); the session caches them per query text.
    ``resolve_count`` and ``filter_count`` record how often the two cached
    pipeline stages were actually refreshed — they are what the engine's
    cache tests observe.  (A refresh of the filter stage may itself be served
    by the session's *shared* filter cache when another query with the same
    target-element signature got there first.)
    """

    def __init__(
        self, dataspace: "Dataspace", query: TwigQuery, cache_key: Optional[str] = None
    ) -> None:
        self._dataspace = dataspace
        self._query = query
        self._cache_key = cache_key if cache_key is not None else (
            query.text or f"<twig:{id(query)}>"
        )
        self._memo_lock = threading.Lock()
        self._embeddings: Optional[list[Embedding]] = None
        self._target_mask: Optional[int] = None
        # Keyed by (generation, delta_epoch): a delta can change which
        # mappings are relevant, so the memo is per mapping-set *state*.
        self._relevant_by_generation: "OrderedDict[tuple[int, int], list[Mapping]]" = (
            OrderedDict()
        )
        #: Number of times the resolve stage ran (never more than once).
        self.resolve_count = 0
        #: Number of times the filter stage was refreshed (once per mapping-set
        #: generation this query executed against).
        self.filter_count = 0

    # ------------------------------------------------------------------ #
    # Cached pipeline stages
    # ------------------------------------------------------------------ #
    @property
    def dataspace(self) -> "Dataspace":
        """The session this query was prepared against."""
        return self._dataspace

    @property
    def query(self) -> TwigQuery:
        """The compiled twig query."""
        return self._query

    @property
    def text(self) -> str:
        """The query's text form."""
        return self._query.text

    @property
    def cache_key(self) -> str:
        """Stable key identifying this query in the session's caches."""
        return self._cache_key

    @property
    def embeddings(self) -> list[Embedding]:
        """Embeddings of the query into the target schema (resolved once)."""
        with self._memo_lock:
            if self._embeddings is None:
                self._embeddings = resolve_query(self._query, self._dataspace.target_schema)
                self.resolve_count += 1
            return self._embeddings

    def relevant_mappings(
        self, snapshot: Optional["EngineSnapshot"] = None
    ) -> list[Mapping]:
        """Relevant mappings, refreshed once per mapping-set state.

        The memo key is ``(generation, delta_epoch)``: a full invalidation
        *and* an applied delta both refresh the filter step.  Delegates the
        actual filtering to
        :meth:`~repro.engine.dataspace.Dataspace.relevant_for`, which shares
        the work across queries requiring the same target elements.
        """
        ds = self._dataspace
        snap = snapshot if snapshot is not None else ds.snapshot(need_tree=False)
        state = (snap.generation, snap.delta_epoch)
        with self._memo_lock:
            relevant = self._relevant_by_generation.get(state)
        if relevant is not None:
            return relevant
        relevant = ds.relevant_for(self.embeddings, snap)
        with self._memo_lock:
            if state not in self._relevant_by_generation:
                self._relevant_by_generation[state] = relevant
                self.filter_count += 1
                while len(self._relevant_by_generation) > _MAX_GENERATION_MEMOS:
                    self._relevant_by_generation.popitem(last=False)
            relevant = self._relevant_by_generation[state]
        return relevant

    def required_target_mask(self) -> int:
        """Bitmask of every target element the query's embeddings require.

        The query side of the delta retention check (see
        :meth:`~repro.engine.cache.ResultCache.retain`); computed once per
        prepared query from the resolved embeddings.
        """
        with self._memo_lock:
            if self._target_mask is not None:
                return self._target_mask
        mask = embeddings_target_mask(self.embeddings)
        with self._memo_lock:
            if self._target_mask is None:
                self._target_mask = mask
            return self._target_mask

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _result_key(
        self, plan: QueryPlan, k: Optional[int], snapshot: "EngineSnapshot"
    ) -> CacheKey:
        """Result-cache key: query, plan, k, tau and snapshot identity.

        Built as an explicit :class:`~repro.engine.cache.CacheKey` with the
        default ``scope="session"``, so plain engine results can never
        collide with the corpus- and shard-scoped entries the sharded
        executor stores in the same cache.
        """
        return CacheKey(
            query=self._cache_key,
            plan=plan.name,
            k=k,
            tau=snapshot.tau,
            generation=snapshot.generation,
            document_version=snapshot.document_version,
            delta_epoch=snapshot.delta_epoch,
        )

    def _snapshot_for(
        self, plan: PlanSpec, snapshot: Optional["EngineSnapshot"]
    ) -> "EngineSnapshot":
        if snapshot is not None:
            return snapshot
        # Only an explicit block-tree plan needs the tree; the default
        # (compiled) plan runs entirely on the compiled mapping set.
        need_tree = plan is not None and plan_for(plan).uses_block_tree
        return self._dataspace.snapshot(need_tree=need_tree)

    def _scatter_eligible(self) -> bool:
        """Whether the cost model may route this query through scatter-gather.

        Identity-keyed twigs (``<twig:N>``) are excluded: the scatter route
        re-resolves the query from its canonical text, which an identity key
        is not.
        """
        return not self._cache_key.startswith("<twig:")

    def execute(
        self,
        *,
        k: Optional[int] = None,
        plan: PlanSpec = None,
        snapshot: Optional["EngineSnapshot"] = None,
        use_cache: bool = True,
    ) -> PTQResult:
        """Evaluate the query against one consistent session snapshot.

        Parameters
        ----------
        k:
            Optional top-k restriction (Definition 5).
        plan:
            Optional plan override (name or :class:`QueryPlan`); when
            omitted the cost model selects a strategy from the query's
            measured statistics (possibly the scatter-gather executor),
            degrading to the fixed ``compiled`` default when cold.  All
            strategies are byte-identical, so the choice only affects time.
        snapshot:
            Evaluate against this pre-captured snapshot instead of taking a
            fresh one (batch executors pass the batch's shared snapshot).
        use_cache:
            Consult/populate the session's result cache (default ``True``).
            Cached results are shared objects — treat them as read-only.
        """
        ds = self._dataspace
        decision = None
        if plan is None and snapshot is None:
            # One snapshot up front: its (generation, delta_epoch) keys the
            # decision, and the common (non-tree) choices evaluate straight
            # against it — only a tree-plan choice pays a second snapshot.
            snap = ds.snapshot(need_tree=False)
            decision = ds.plan_decision(
                self,
                k=k,
                allow_scatter=self._scatter_eligible(),
                state=(snap.generation, snap.delta_epoch),
                collect_statistics=False,
            )
            if decision.executor == "scatter" and decision.num_shards:
                return ds._scatter_execute(self, decision, k=k, use_cache=use_cache)
        if decision is not None:
            chosen = plan_for(decision.plan_name)
            if chosen.uses_block_tree and snap.block_tree is None:
                snap = ds.snapshot(need_tree=True)
        else:
            snap = self._snapshot_for(plan, snapshot)
            chosen, _ = ds.select_plan_for(
                plan, snap, prepared=self if plan is None else None, k=k
            )
            if chosen.uses_block_tree and snap.block_tree is None:
                # A shared batch snapshot taken without the tree cannot run
                # the tree plan; the default needs no tree.
                chosen = plan_for("compiled")
        cache = ds.result_cache if use_cache else None
        key: Optional[CacheKey] = None
        relevant = self.relevant_mappings(snap)
        if cache is not None:
            key = self._result_key(chosen, k, snap)
            cached = cache.get(key)
            if cached is None:
                # Retain-on-miss: after an applied delta, an entry written at
                # an earlier delta_epoch survives when the delta provably did
                # not touch this query's relevant mappings or required
                # target elements (one bitwise AND each).
                cached = cache.retain(
                    key,
                    mapping_mask(m.mapping_id for m in relevant),
                    self.required_target_mask(),
                )
            if cached is not None:
                ds.planner.observe_cache_hit(self._cache_key)
                return cached
        started = time.perf_counter()
        result = chosen.run(
            self._query,
            snap.mapping_set,
            snap.document,
            block_tree=snap.block_tree if chosen.uses_block_tree else None,
            embeddings=self.embeddings,
            relevant=relevant,
            k=k,
            kernels=ds.kernels,
        )
        ds.planner.observe_execution(
            self._cache_key,
            chosen.name,
            (time.perf_counter() - started) * 1000.0,
            state=(snap.generation, snap.delta_epoch),
            num_relevant=len(relevant),
            num_embeddings=len(self.embeddings),
        )
        if cache is not None:
            result = cache.put(key, result)
        return result

    def explain(
        self,
        *,
        k: Optional[int] = None,
        plan: PlanSpec = None,
        snapshot: Optional["EngineSnapshot"] = None,
        use_cache: bool = True,
        analyze: bool = False,
    ) -> ExplainReport:
        """Execute the query and report plan choice, inputs and stage timings.

        Without a forced ``plan`` the report carries the planner's full
        decision — per-candidate cost estimates, the winner, and the
        statistics snapshot used.  With ``analyze=True`` it also compares
        the planner's *estimated* cardinalities and latency against the
        measured actuals of this very execution (``EXPLAIN ANALYZE``).
        """
        ds = self._dataspace
        decision = None
        if plan is None:
            decision = ds.plan_decision(self, k=k, allow_scatter=False)
        # The estimates are whatever the planner knew *before* this run.
        pre_stats = (
            decision.statistics
            if decision is not None
            else ds.planner.snapshot(self._cache_key)
        )
        if decision is not None:
            chosen, reason = plan_for(decision.plan_name), decision.reason
            snap = (
                snapshot
                if snapshot is not None
                else ds.snapshot(need_tree=chosen.uses_block_tree)
            )
        else:
            snap = self._snapshot_for(plan, snapshot)
            chosen, reason = ds.select_plan_for(plan, snap)
        timings: dict[str, float] = {}

        started = time.perf_counter()
        embeddings = self.embeddings
        timings["resolve"] = (time.perf_counter() - started) * 1000.0

        mapping_set = snap.mapping_set
        started = time.perf_counter()
        relevant = self.relevant_mappings(snap)
        timings["filter"] = (time.perf_counter() - started) * 1000.0

        block_tree = snap.block_tree if chosen.uses_block_tree else None
        cache = ds.result_cache if use_cache else None
        key = self._result_key(chosen, k, snap)

        started = time.perf_counter()
        cache_state = "bypass"
        result: Optional[PTQResult] = None
        if cache is not None:
            result = cache.get(key)
            cache_state = "hit" if result is not None else "miss"
            if result is None:
                result = cache.retain(
                    key,
                    mapping_mask(m.mapping_id for m in relevant),
                    self.required_target_mask(),
                )
                if result is not None:
                    cache_state = "retained"
        evaluated = result is None
        if result is None:
            result = chosen.run(
                self._query,
                mapping_set,
                snap.document,
                block_tree=block_tree,
                embeddings=embeddings,
                relevant=relevant,
                k=k,
                kernels=ds.kernels,
            )
            if cache is not None:
                result = cache.put(key, result)
        timings["evaluate"] = (time.perf_counter() - started) * 1000.0
        if evaluated:
            ds.planner.observe_execution(
                self._cache_key,
                chosen.name,
                timings["evaluate"],
                state=(snap.generation, snap.delta_epoch),
                num_relevant=len(relevant),
                num_embeddings=len(embeddings),
            )
        else:
            ds.planner.observe_cache_hit(self._cache_key)

        num_selected = len(relevant) if k is None else min(k, len(relevant))
        anchored = (
            anchored_subtree_paths(self._query, embeddings, block_tree)
            if block_tree is not None
            else ()
        )
        compiled_stats = None
        if chosen.uses_compiled:
            selected = relevant if k is None else select_top_k(relevant, k)
            compiled_stats = snap.mapping_set.compile(ds.kernels).rewrite_stats(
                embeddings, selected
            )
            distinct = compiled_stats.get("num_distinct_rewrites")
            if distinct is not None:
                ds.planner.observe_rewrites(self._cache_key, int(distinct))
        planner_info = None
        if decision is not None:
            planner_info = {
                "winner": decision.plan_name,
                "executor": decision.executor,
                "reason": decision.reason,
                "cached_decision": decision.cached,
                "candidates": [estimate.to_dict() for estimate in decision.candidates],
                "statistics": decision.statistics,
            }
        analyze_info = None
        if analyze:
            estimated: dict = {}
            if pre_stats:
                plan_estimates = pre_stats.get("plans", {}).get(chosen.name) or {}
                ewma = plan_estimates.get("ewma_ms")
                estimated = {
                    "num_relevant": pre_stats.get("num_relevant"),
                    "num_embeddings": pre_stats.get("num_embeddings"),
                    "evaluate_ms": round(ewma, 3) if ewma is not None else None,
                }
            analyze_info = {
                "estimated": estimated,
                "actual": {
                    "num_relevant": len(relevant),
                    "num_embeddings": len(embeddings),
                    "evaluate_ms": round(timings["evaluate"], 3),
                },
            }
        return ExplainReport(
            query=self.text,
            plan=chosen.name,
            reason=reason,
            num_mappings=len(mapping_set),
            num_embeddings=len(embeddings),
            num_relevant=len(relevant),
            relevant_mapping_ids=tuple(mapping.mapping_id for mapping in relevant),
            k=k,
            num_selected=num_selected,
            num_blocks=block_tree.num_blocks if block_tree is not None else None,
            anchored_paths=anchored,
            timings_ms=timings,
            num_answers=len(result),
            num_non_empty=len(result.non_empty()),
            cache=cache_state,
            cache_stats=ds.result_cache.stats().to_dict() if use_cache else None,
            compiled_stats=compiled_stats,
            artifacts=ds.artifact_provenance() or None,
            planner=planner_info,
            analyze=analyze_info,
        )

    def __repr__(self) -> str:
        return f"PreparedQuery({self.text!r}, dataspace={self._dataspace.name!r})"


class QueryBuilder:
    """Immutable fluent builder over a :class:`PreparedQuery` (see module docs)."""

    __slots__ = ("_prepared", "_k", "_plan", "_use_cache")

    def __init__(
        self,
        prepared: PreparedQuery,
        k: Optional[int] = None,
        plan: PlanSpec = None,
        use_cache: bool = True,
    ) -> None:
        self._prepared = prepared
        self._k = k
        self._plan = plan
        self._use_cache = use_cache

    @property
    def prepared(self) -> PreparedQuery:
        """The underlying prepared query (shared across derived builders)."""
        return self._prepared

    def top_k(self, k: int) -> "QueryBuilder":
        """Return a builder restricted to the ``k`` most probable answers."""
        return QueryBuilder(self._prepared, k, self._plan, self._use_cache)

    def plan(self, plan: Union[str, QueryPlan]) -> "QueryBuilder":
        """Return a builder forced onto a specific evaluation plan."""
        return QueryBuilder(self._prepared, self._k, plan, self._use_cache)

    def no_cache(self) -> "QueryBuilder":
        """Return a builder that bypasses the session's result cache."""
        return QueryBuilder(self._prepared, self._k, self._plan, use_cache=False)

    def execute(self) -> PTQResult:
        """Evaluate with the builder's settings."""
        return self._prepared.execute(k=self._k, plan=self._plan, use_cache=self._use_cache)

    def explain(self, *, analyze: bool = False) -> ExplainReport:
        """Evaluate and report how (plan, inputs, timings; estimates when ``analyze``)."""
        return self._prepared.explain(
            k=self._k, plan=self._plan, use_cache=self._use_cache, analyze=analyze
        )

    def __repr__(self) -> str:
        plan = self._plan.name if isinstance(self._plan, QueryPlan) else self._plan
        return f"QueryBuilder({self._prepared.text!r}, k={self._k}, plan={plan})"
