"""The planner's statistics collector.

Every query execution the engine carries out yields observations — how many
mappings survived the filter step, how many distinct rewrites the compiled
core grouped them into, how the result cache participated, and above all how
long each plan actually took.  :class:`StatisticsCollector` accumulates those
observations per prepared-query cache key (the *canonical* query text, so
equivalent query spellings feed one statistics record), and the cost model
(:mod:`repro.engine.planner.cost`) turns them into plan decisions.

Latencies are tracked per execution strategy under plan keys: the engine
plans by name (``"basic"``/``"blocktree"``/``"compiled"``) and scatter-gather
executions as ``"scatter:<num_shards>"``.  Each record keeps a count, best,
last and an exponentially weighted moving average — the EWMA is what the cost
model compares, so one outlier measurement cannot flip a plan choice.

The collector serializes to a canonical JSON payload
(:meth:`StatisticsCollector.to_payload`) that the artifact store persists
alongside the session manifest, keyed by the session's
``(generation, delta_epoch, document_version)`` signature; a reopened session
adopts the payload and starts serving with its learned plan choices intact.

Everything is thread-safe under one collector lock; observations are a few
dict operations, negligible next to any evaluation they describe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["PlanLatency", "QueryStatistics", "StatisticsCollector", "scatter_plan_key"]

#: Payload format version (bumped on incompatible layout changes).
STATS_FORMAT = 1

#: Bound on per-query statistics records kept by one collector — mirrors the
#: engine's bounded prepared-query cache, and for the same reason: a serving
#: session fed arbitrary ad-hoc queries must not grow without limit.
_MAX_QUERY_RECORDS = 512

#: Bound on remembered exact top-k thresholds per query (see
#: :meth:`QueryStatistics.record_topk_threshold`).
_MAX_TOPK_THRESHOLDS = 32

#: EWMA smoothing weight of the newest latency sample.
_EWMA_ALPHA = 0.3

#: Relative EWMA change that counts as a *structural* update (bumps the
#: collector version, retiring cached plan decisions for the query).
_STRUCTURAL_DELTA = 0.25


def scatter_plan_key(num_shards: int) -> str:
    """The latency-record key of a scatter-gather execution over ``num_shards``."""
    return f"scatter:{num_shards}"


@dataclass
class PlanLatency:
    """Measured latencies of one (query, execution strategy) pair."""

    count: int = 0
    total_ms: float = 0.0
    best_ms: float = 0.0
    last_ms: float = 0.0
    ewma_ms: float = 0.0

    def observe(self, latency_ms: float) -> bool:
        """Fold one measurement in; ``True`` when the EWMA moved structurally."""
        latency_ms = float(latency_ms)
        self.count += 1
        self.total_ms += latency_ms
        self.last_ms = latency_ms
        if self.count == 1:
            self.best_ms = latency_ms
            self.ewma_ms = latency_ms
            return True
        self.best_ms = min(self.best_ms, latency_ms)
        previous = self.ewma_ms
        self.ewma_ms = _EWMA_ALPHA * latency_ms + (1.0 - _EWMA_ALPHA) * self.ewma_ms
        reference = max(previous, 1e-9)
        return abs(self.ewma_ms - previous) / reference >= _STRUCTURAL_DELTA

    def to_payload(self) -> dict:
        """JSON-serialisable view (floats round-trip exactly through the store)."""
        return {
            "count": self.count,
            "total_ms": self.total_ms,
            "best_ms": self.best_ms,
            "last_ms": self.last_ms,
            "ewma_ms": self.ewma_ms,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PlanLatency":
        """Rebuild a record from :meth:`to_payload` output."""
        return cls(
            count=int(payload.get("count", 0)),
            total_ms=float(payload.get("total_ms", 0.0)),
            best_ms=float(payload.get("best_ms", 0.0)),
            last_ms=float(payload.get("last_ms", 0.0)),
            ewma_ms=float(payload.get("ewma_ms", 0.0)),
        )


@dataclass
class QueryStatistics:
    """Accumulated observations of one prepared query (by canonical key).

    ``plans`` maps execution-strategy keys to :class:`PlanLatency` records;
    ``num_relevant`` / ``num_embeddings`` / ``distinct_rewrites`` hold the
    latest observed cardinalities together with the ``state``
    (generation, delta epoch) they were observed at — a delta can change
    which mappings are relevant, so estimates are state-tagged.  ``scatter``
    keeps per-fan-out skip/prune counters, and ``topk_thresholds`` remembers
    the *exact* k-th best probability of finished top-k selections per
    session state (see :meth:`record_topk_threshold`).
    """

    key: str
    executions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    num_relevant: Optional[int] = None
    num_embeddings: Optional[int] = None
    distinct_rewrites: Optional[int] = None
    state: Optional[tuple[int, int]] = None
    plans: dict[str, PlanLatency] = field(default_factory=dict)
    scatter: dict[int, dict] = field(default_factory=dict)
    topk_thresholds: "OrderedDict[str, float]" = field(default_factory=OrderedDict)

    def cache_hit_rate(self) -> Optional[float]:
        """Result-cache hit ratio over every observed lookup, or ``None``."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return None
        return self.cache_hits / lookups

    def to_payload(self) -> dict:
        """Canonical JSON-serialisable view of this record."""
        return {
            "key": self.key,
            "executions": self.executions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "num_relevant": self.num_relevant,
            "num_embeddings": self.num_embeddings,
            "distinct_rewrites": self.distinct_rewrites,
            "state": list(self.state) if self.state is not None else None,
            "plans": {
                name: record.to_payload() for name, record in sorted(self.plans.items())
            },
            "scatter": {
                str(num_shards): dict(counters)
                for num_shards, counters in sorted(self.scatter.items())
            },
            "topk_thresholds": dict(self.topk_thresholds),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryStatistics":
        """Rebuild a record from :meth:`to_payload` output."""
        state = payload.get("state")
        record = cls(
            key=str(payload["key"]),
            executions=int(payload.get("executions", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
            num_relevant=payload.get("num_relevant"),
            num_embeddings=payload.get("num_embeddings"),
            distinct_rewrites=payload.get("distinct_rewrites"),
            state=(int(state[0]), int(state[1])) if state else None,
        )
        for name, latency in payload.get("plans", {}).items():
            record.plans[str(name)] = PlanLatency.from_payload(latency)
        for num_shards, counters in payload.get("scatter", {}).items():
            record.scatter[int(num_shards)] = {
                str(key): int(value) for key, value in counters.items()
            }
        for token, probability in payload.get("topk_thresholds", {}).items():
            record.topk_thresholds[str(token)] = float(probability)
        return record


class StatisticsCollector:
    """Thread-safe accumulation of per-query observations (see module docs)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: "OrderedDict[str, QueryStatistics]" = OrderedDict()
        self._version = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    @property
    def version(self) -> int:
        """Monotonic counter bumped on structural updates.

        Cached plan decisions embed the version they were derived from, so a
        first measurement for a new strategy (or a large EWMA move) retires
        them without any cache walking.  Read without the lock: an int read
        is atomic, and a momentarily stale version only replays a decision
        the racing update is about to retire anyway — the execute hot path
        reads this once per query.
        """
        return self._version

    def _record(self, key: str) -> QueryStatistics:
        """The stats record for ``key``, LRU-bumped and bounded (lock held)."""
        record = self._stats.get(key)
        if record is None:
            record = QueryStatistics(key=key)
            self._stats[key] = record
            while len(self._stats) > _MAX_QUERY_RECORDS:
                self._stats.popitem(last=False)
        else:
            self._stats.move_to_end(key)
        return record

    # ------------------------------------------------------------------ #
    # Observation entry points
    # ------------------------------------------------------------------ #
    def observe_execution(
        self,
        key: str,
        plan: str,
        latency_ms: float,
        *,
        state: Optional[tuple[int, int]] = None,
        num_relevant: Optional[int] = None,
        num_embeddings: Optional[int] = None,
        distinct_rewrites: Optional[int] = None,
    ) -> None:
        """Record one evaluated (cache-missing) execution of ``key``."""
        with self._lock:
            record = self._record(key)
            record.executions += 1
            record.cache_misses += 1
            if state is not None:
                record.state = state
            if num_relevant is not None:
                record.num_relevant = num_relevant
            if num_embeddings is not None:
                record.num_embeddings = num_embeddings
            if distinct_rewrites is not None:
                record.distinct_rewrites = distinct_rewrites
            latency = record.plans.get(plan)
            if latency is None:
                latency = record.plans.setdefault(plan, PlanLatency())
            if latency.observe(latency_ms):
                self._version += 1

    def observe_cache_hit(self, key: str) -> None:
        """Record a result-cache hit (or a retained pre-delta entry) for ``key``."""
        with self._lock:
            record = self._record(key)
            record.cache_hits += 1

    def observe_rewrites(self, key: str, distinct_rewrites: int) -> None:
        """Record the distinct-rewrite count the compiled core measured."""
        with self._lock:
            record = self._record(key)
            record.distinct_rewrites = distinct_rewrites

    def observe_scatter(
        self,
        key: str,
        num_shards: int,
        latency_ms: float,
        *,
        state: Optional[tuple[int, int]] = None,
        fan_out: int = 0,
        skipped: int = 0,
    ) -> None:
        """Record one evaluated scatter-gather execution of ``key``."""
        with self._lock:
            record = self._record(key)
            record.executions += 1
            if state is not None:
                record.state = state
            counters = record.scatter.setdefault(
                num_shards, {"executions": 0, "fan_out": 0, "skipped": 0}
            )
            counters["executions"] += 1
            counters["fan_out"] += int(fan_out)
            counters["skipped"] += int(skipped)
            plan_key = scatter_plan_key(num_shards)
            latency = record.plans.get(plan_key)
            if latency is None:
                latency = record.plans.setdefault(plan_key, PlanLatency())
            if latency.observe(latency_ms):
                self._version += 1

    def record_topk_threshold(
        self, key: str, k: int, state_token: str, probability: float
    ) -> None:
        """Remember the exact k-th best probability of a finished selection.

        The token encodes ``k`` and the full session state the selection ran
        against, so a remembered threshold is only ever replayed against
        byte-identical probabilities — seeding with it skips exactly the
        sessions the unseeded selection would have contributed nothing from.
        """
        token = f"k={k}@{state_token}"
        with self._lock:
            record = self._record(key)
            record.topk_thresholds[token] = probability
            record.topk_thresholds.move_to_end(token)
            while len(record.topk_thresholds) > _MAX_TOPK_THRESHOLDS:
                record.topk_thresholds.popitem(last=False)

    def topk_seed(self, key: str, k: int, state_token: str) -> Optional[float]:
        """The remembered exact threshold for ``(key, k, state)``, or ``None``."""
        token = f"k={k}@{state_token}"
        with self._lock:
            record = self._stats.get(key)
            if record is None:
                return None
            return record.topk_thresholds.get(token)

    # ------------------------------------------------------------------ #
    # Introspection and serialization
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[QueryStatistics]:
        """The live statistics record for ``key``, or ``None``."""
        with self._lock:
            return self._stats.get(key)

    def snapshot(self, key: str) -> Optional[dict]:
        """A JSON-ready copy of ``key``'s record (for ``explain()``), or ``None``."""
        with self._lock:
            record = self._stats.get(key)
            return record.to_payload() if record is not None else None

    def to_payload(self, signature: Optional[dict] = None) -> Optional[dict]:
        """The canonical persistence payload, or ``None`` when empty."""
        with self._lock:
            if not self._stats:
                return None
            return {
                "kind": "planner_stats",
                "format": STATS_FORMAT,
                "signature": dict(signature or {}),
                "queries": [
                    record.to_payload()
                    for _, record in sorted(self._stats.items())
                ],
            }

    def adopt_payload(self, payload: Optional[dict]) -> int:
        """Merge a persisted payload back in; returns the records adopted.

        Unknown formats are ignored (a session reopened by older code keeps
        working, it just re-learns).  Adopted records *replace* same-key
        records — the persisted state is the most recent complete view.
        """
        if not payload or payload.get("format") != STATS_FORMAT:
            return 0
        adopted = 0
        for row in payload.get("queries", []):
            try:
                record = QueryStatistics.from_payload(row)
            except (KeyError, TypeError, ValueError):
                continue
            with self._lock:
                self._stats[record.key] = record
                self._stats.move_to_end(record.key)
                while len(self._stats) > _MAX_QUERY_RECORDS:
                    self._stats.popitem(last=False)
                self._version += 1
            adopted += 1
        return adopted
