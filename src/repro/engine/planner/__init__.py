"""Cost-based adaptive query planning.

The planner package closes the loop the engine's ``explain()`` output left
open: the session already *measured* selectivities, rewrite-group sizes and
per-plan latencies — this package accumulates them
(:mod:`~repro.engine.planner.statistics`), prices execution strategies with
them (:mod:`~repro.engine.planner.cost`) and keys everything by a canonical
query rendering (:mod:`~repro.engine.planner.normalize`) so equivalent query
spellings share one prepared plan and one statistics record.

:class:`QueryPlanner` is the facade a :class:`~repro.engine.dataspace.Dataspace`
owns: one statistics collector, one cost model, and a bounded decision cache
keyed by ``(query, collector version, session state, k, scatter allowed)`` —
steady-state decisions are dictionary lookups, and any structural statistics
change retires them wholesale by bumping the collector version.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.engine.planner.cost import (
    COST_MARGIN,
    CostModel,
    PlanDecision,
    PlanEstimate,
    default_service_workers,
    recommend_scatter_workers,
)
from repro.engine.planner.normalize import canonical_text, normalize_query_text
from repro.engine.planner.statistics import (
    PlanLatency,
    QueryStatistics,
    StatisticsCollector,
    scatter_plan_key,
)

__all__ = [
    "COST_MARGIN",
    "CostModel",
    "PlanDecision",
    "PlanEstimate",
    "PlanLatency",
    "QueryPlanner",
    "QueryStatistics",
    "StatisticsCollector",
    "canonical_text",
    "default_service_workers",
    "normalize_query_text",
    "recommend_scatter_workers",
    "scatter_plan_key",
]

#: Bound on cached plan decisions (mirrors the statistics record bound).
_MAX_DECISIONS = 512


class QueryPlanner:
    """Statistics collector + cost model + bounded decision cache."""

    def __init__(self, margin: float = COST_MARGIN) -> None:
        self.collector = StatisticsCollector()
        self.model = CostModel(margin=margin)
        self._lock = threading.Lock()
        self._decisions: "OrderedDict[tuple, tuple[PlanDecision, PlanDecision]]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def decide(
        self,
        key: str,
        *,
        state: Optional[tuple[int, int]] = None,
        k: Optional[int] = None,
        allow_scatter: bool = False,
        collect_statistics: bool = False,
    ) -> PlanDecision:
        """The cost model's strategy for ``key`` at ``state`` (cached).

        The cache key embeds the collector version: any structural
        statistics update (first measurement of a strategy, large EWMA move,
        adopted persisted payload) bumps it and every stale decision misses
        naturally — no invalidation walk.

        By default decisions carry no serialized statistics snapshot (the
        hot execute path never reads it); ``collect_statistics=True`` —
        the ``explain()`` path — upgrades the cached entry in place.
        """
        version = self.collector.version
        cache_key = (key, version, state, k, allow_scatter)
        with self._lock:
            entry = self._decisions.get(cache_key)
            if entry is not None and not (
                collect_statistics and entry[0].statistics is None
            ):
                self._decisions.move_to_end(cache_key)
                # The pre-built cached variant keeps steady-state decisions
                # allocation-free — this path runs on every executed query.
                return entry[1]
        decision = self.model.decide(
            self.collector.get(key),
            k=k,
            allow_scatter=allow_scatter,
            collect_statistics=collect_statistics,
        )
        with self._lock:
            self._decisions[cache_key] = (decision, decision.as_cached())
            self._decisions.move_to_end(cache_key)
            while len(self._decisions) > _MAX_DECISIONS:
                self._decisions.popitem(last=False)
        return decision

    # ------------------------------------------------------------------ #
    # Observation passthroughs
    # ------------------------------------------------------------------ #
    def observe_execution(self, key: str, plan: str, latency_ms: float, **kw) -> None:
        self.collector.observe_execution(key, plan, latency_ms, **kw)

    def observe_cache_hit(self, key: str) -> None:
        self.collector.observe_cache_hit(key)

    def observe_rewrites(self, key: str, distinct_rewrites: int) -> None:
        self.collector.observe_rewrites(key, distinct_rewrites)

    def observe_scatter(self, key: str, num_shards: int, latency_ms: float, **kw) -> None:
        self.collector.observe_scatter(key, num_shards, latency_ms, **kw)

    def record_topk_threshold(
        self, key: str, k: int, state_token: str, probability: float
    ) -> None:
        self.collector.record_topk_threshold(key, k, state_token, probability)

    def topk_seed(self, key: str, k: int, state_token: str) -> Optional[float]:
        return self.collector.topk_seed(key, k, state_token)

    # ------------------------------------------------------------------ #
    # Introspection and persistence
    # ------------------------------------------------------------------ #
    def statistics(self, key: str) -> Optional[QueryStatistics]:
        return self.collector.get(key)

    def snapshot(self, key: str) -> Optional[dict]:
        return self.collector.snapshot(key)

    def statistics_payload(self, signature: Optional[dict] = None) -> Optional[dict]:
        return self.collector.to_payload(signature)

    def adopt_payload(self, payload: Optional[dict]) -> int:
        adopted = self.collector.adopt_payload(payload)
        if adopted:
            with self._lock:
                self._decisions.clear()
        return adopted

    def report(self) -> dict:
        """Summary for ``Dataspace.describe()``."""
        with self._lock:
            cached_decisions = len(self._decisions)
        return {
            "tracked_queries": len(self.collector),
            "cached_decisions": cached_decisions,
            "version": self.collector.version,
            "margin": self.model.margin,
        }
