"""Canonical twig-query rendering for the normalized plan cache.

Two query texts that parse to the same twig structure should share one
:class:`~repro.engine.prepared.PreparedQuery` — and with it the resolved
embeddings, the per-generation filter memo and the planner's accumulated
statistics.  :func:`canonical_text` renders a parsed :class:`TwigQuery` back
into a single canonical string so that whitespace variants
(``"Order / DeliverTo"``), predicate-order variants
(``"Address[./City][./Country]"`` vs ``"Address[./Country][./City]"``) and
alias variants (``"//UP"`` vs ``"//UnitPrice"``, expanded at parse time) all
map onto one cache key.

Canonical form:

* no whitespace; ``/`` and ``//`` as the only separators;
* the root step carries no leading ``/`` on the child axis and ``//`` on the
  descendant axis;
* a value constraint renders as a leading ``[.="value"]`` predicate;
* every non-main-path child renders as a bracketed predicate with an explicit
  ``./`` (or ``.//``) prefix, and the predicates of one step are sorted by
  their rendered text;
* inside a predicate, *all* children render as nested predicates — the
  grammar's path continuation (``[./A/B]``) and an explicit nesting
  (``[./A[./B]]``) describe the same tree, so both normalize to the latter.

The rendering is idempotent: ``normalize_query_text(canonical) == canonical``
(pinned by the unit suite), which is what lets persisted cache keys round-trip
through the artifact store.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.query.parser import parse_twig
from repro.query.twig import AXIS_DESCENDANT, TwigNode, TwigQuery

__all__ = ["canonical_text", "normalize_query_text"]


def _quote(value: str) -> str:
    """Quote a value literal, preferring double quotes (no escape syntax)."""
    if '"' not in value:
        return f'"{value}"'
    return f"'{value}'"


def _branch(node: TwigNode) -> str:
    """Render a predicate (non-main-path) child as one bracketed rel-path."""
    axis = ".//" if node.axis == AXIS_DESCENDANT else "./"
    return f"[{axis}{_step(node, in_branch=True)}]"


def _step(node: TwigNode, *, in_branch: bool) -> str:
    """Render one step: label, value predicate, sorted branches, main path."""
    out = node.label
    if node.value is not None:
        out += f"[.={_quote(node.value)}]"
    main_child: Optional[TwigNode] = None
    if not in_branch:
        mains = [child for child in node.children if child.on_main_path]
        if mains:
            # The parser produces at most one main-path child; for hand-built
            # trees the output node is the *last* main-path node in pre-order,
            # so the last one continues the path and the rest are branches.
            main_child = mains[-1]
    out += "".join(
        sorted(_branch(child) for child in node.children if child is not main_child)
    )
    if main_child is not None:
        axis = "//" if main_child.axis == AXIS_DESCENDANT else "/"
        out += axis + _step(main_child, in_branch=False)
    return out


def canonical_text(twig: TwigQuery) -> str:
    """The canonical text form of a parsed twig query (see module docstring)."""
    prefix = "//" if twig.root.axis == AXIS_DESCENDANT else ""
    return prefix + _step(twig.root, in_branch=False)


def normalize_query_text(
    text: str, aliases: Optional[Mapping[str, str]] = None
) -> str:
    """Parse ``text`` (with optional label aliases) and render it canonically.

    Raises
    ------
    TwigParseError
        When ``text`` is not a valid twig query.
    """
    return canonical_text(parse_twig(text, aliases=aliases))
