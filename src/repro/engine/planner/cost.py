"""The cost model: measured statistics → plan, fan-out and worker choices.

The engine's three in-process plans (``basic``, ``blocktree``, ``compiled``)
and the scatter-gather executor all return byte-identical answers — the plan
choice is purely a performance strategy, which is exactly what makes it safe
to hand to a cost model: a wrong estimate can only cost time, never change a
result (the differential suite pins this).

The model is deliberately conservative.  It deviates from the session default
(``compiled``) only when there is measured evidence on *both* sides: the
default itself must have been observed for this query, and a challenger must
beat its EWMA latency by :data:`COST_MARGIN`.  A cold query — no statistics
at all — therefore behaves exactly as before this module existed, which is
what keeps the golden suites byte-stable and the "never slower than the fixed
heuristic" benchmark gate honest.  Statistics arrive passively from serving
traffic (every cache-missing execution is measured) or actively through
:meth:`repro.engine.dataspace.Dataspace.calibrate`.

Worker sizing lives here too: :func:`recommend_scatter_workers` and
:func:`default_service_workers` size thread pools for the kernel backend in
use — the numpy kernels release the GIL during their bitset sweeps, so pools
scale with the machine's cores instead of the fixed GIL-bound sizing the
executors shipped with.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.engine.planner.statistics import QueryStatistics, scatter_plan_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.kernels import Kernels

__all__ = [
    "COST_MARGIN",
    "CostModel",
    "PlanDecision",
    "PlanEstimate",
    "default_service_workers",
    "recommend_scatter_workers",
]

#: A challenger plan must beat the measured default by this factor before the
#: model deviates from it — measurement noise must not flip plans.
COST_MARGIN = 1.15

#: The fixed session default every cold query runs on.
_DEFAULT_PLAN = "compiled"

#: In-process plan names the model considers (registration order).
_INPROCESS_PLANS = ("basic", "blocktree", "compiled")


@dataclass(frozen=True)
class PlanEstimate:
    """One candidate strategy's estimated cost, as the model saw it."""

    plan: str
    cost_ms: float
    observations: int
    source: str = "measured"

    def to_dict(self) -> dict:
        """JSON-serialisable view (rendered by ``explain()``)."""
        return {
            "plan": self.plan,
            "cost_ms": round(self.cost_ms, 3),
            "observations": self.observations,
            "source": self.source,
        }


@dataclass(frozen=True)
class PlanDecision:
    """The cost model's answer for one (query, state, k) question.

    ``executor`` is ``"inline"`` for the engine's in-process plans (then
    ``plan_name`` names a registered :class:`~repro.engine.plans.QueryPlan`)
    or ``"scatter"`` for the corpus scatter-gather route (then ``num_shards``
    carries the chosen fan-out).  ``candidates`` records every estimate the
    model compared and ``statistics`` the statistics snapshot it used — both
    surface through ``explain()`` so a plan choice is always explainable.
    """

    plan_name: str
    reason: str
    executor: str = "inline"
    num_shards: Optional[int] = None
    candidates: tuple[PlanEstimate, ...] = ()
    statistics: Optional[dict] = None
    cached: bool = False

    def as_cached(self) -> "PlanDecision":
        """This decision, marked as served from the decision cache."""
        return replace(self, cached=True)


def _backend_name(kernels: Optional["Kernels"]) -> str:
    return getattr(kernels, "name", "python")


def recommend_scatter_workers(
    num_shards: int, kernels: Optional["Kernels"] = None
) -> int:
    """Thread-pool size for a scatter over ``num_shards`` shard tasks.

    Under the GIL-releasing numpy kernels the pool scales with the machine
    (two workers per core, capped by the task count plus the spine task);
    under the pure-Python kernels the original conservative GIL-bound sizing
    is kept — extra threads would only add contention there.
    """
    if _backend_name(kernels) == "numpy":
        cpus = os.cpu_count() or 2
        return max(2, min(32, num_shards + 1, 2 * cpus))
    return min(8, max(2, num_shards))


def default_service_workers(kernels: Optional["Kernels"] = None) -> int:
    """Default :class:`~repro.service.QueryService` pool size for a backend.

    Numpy-backed sessions overlap their kernel sweeps across cores, so the
    service default grows with the machine (never below the historical 8);
    Python-backed sessions keep the historical fixed default.
    """
    if _backend_name(kernels) == "numpy":
        cpus = os.cpu_count() or 2
        return max(8, min(32, 4 * cpus))
    return 8


class CostModel:
    """Choose an execution strategy from measured statistics (see module docs)."""

    def __init__(self, margin: float = COST_MARGIN) -> None:
        if margin < 1.0:
            raise ValueError(f"cost margin must be >= 1.0, got {margin}")
        self.margin = margin

    def _default(self, reason: str, candidates: tuple[PlanEstimate, ...] = (),
                 statistics: Optional[dict] = None) -> PlanDecision:
        return PlanDecision(
            plan_name=_DEFAULT_PLAN,
            reason=reason,
            candidates=candidates,
            statistics=statistics,
        )

    def decide(
        self,
        stats: Optional[QueryStatistics],
        *,
        k: Optional[int] = None,
        allow_scatter: bool = False,
        collect_statistics: bool = True,
    ) -> PlanDecision:
        """Pick a strategy for one query given its accumulated statistics.

        ``allow_scatter`` admits the corpus scatter-gather route as a
        candidate (callers only set it when the execution context can route
        through a corpus); ``k`` is currently informational — latencies are
        aggregated across top-k settings.  ``collect_statistics=False`` skips
        attaching the serialized statistics snapshot — the execute hot path
        asks for that, since the snapshot only serves ``explain()`` output
        and building it costs more than the decision itself.
        """
        if stats is None:
            return self._default("compiled bitset core (no statistics yet)")
        snapshot = stats.to_payload() if collect_statistics else None
        baseline = stats.plans.get(_DEFAULT_PLAN)
        candidates = []
        for name in _INPROCESS_PLANS:
            latency = stats.plans.get(name)
            if latency is not None and latency.count > 0:
                candidates.append(
                    PlanEstimate(
                        plan=name,
                        cost_ms=latency.ewma_ms,
                        observations=latency.count,
                    )
                )
        if allow_scatter:
            for num_shards in sorted(stats.scatter):
                latency = stats.plans.get(scatter_plan_key(num_shards))
                if latency is not None and latency.count > 0:
                    candidates.append(
                        PlanEstimate(
                            plan=scatter_plan_key(num_shards),
                            cost_ms=latency.ewma_ms,
                            observations=latency.count,
                        )
                    )
        ranked = tuple(
            sorted(candidates, key=lambda est: (est.cost_ms, est.plan != _DEFAULT_PLAN, est.plan))
        )
        if baseline is None or baseline.count == 0:
            # Never deviate without evidence on both sides: until the default
            # itself has been measured, a challenger's number has nothing to
            # beat and the model stays on the safe fixed choice.
            return self._default(
                "compiled bitset core (default not yet measured)", ranked, snapshot
            )
        winner = ranked[0]
        if winner.plan == _DEFAULT_PLAN:
            return self._default(
                f"cost model: compiled measured fastest "
                f"({winner.cost_ms:.2f} ms over {winner.observations} runs)",
                ranked,
                snapshot,
            )
        if winner.cost_ms * self.margin > baseline.ewma_ms:
            return self._default(
                f"cost model: {winner.plan} ({winner.cost_ms:.2f} ms) within "
                f"{self.margin:.2f}x margin of compiled ({baseline.ewma_ms:.2f} ms)",
                ranked,
                snapshot,
            )
        reason = (
            f"cost model: {winner.plan} measured {winner.cost_ms:.2f} ms vs "
            f"compiled {baseline.ewma_ms:.2f} ms "
            f"({baseline.ewma_ms / max(winner.cost_ms, 1e-9):.1f}x, "
            f"{winner.observations} runs)"
        )
        if winner.plan.startswith("scatter:"):
            return PlanDecision(
                plan_name=winner.plan,
                reason=reason,
                executor="scatter",
                num_shards=int(winner.plan.split(":", 1)[1]),
                candidates=ranked,
                statistics=snapshot,
            )
        return PlanDecision(
            plan_name=winner.plan,
            reason=reason,
            candidates=ranked,
            statistics=snapshot,
        )
