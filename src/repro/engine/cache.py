"""Bounded, thread-safe LRU result cache with hit/miss statistics.

This module lives in the engine (the service layer re-exports it as
:mod:`repro.service`'s ``ResultCache``) because the session itself owns the
caches, while the service package sits above the engine.

:class:`ResultCache` is deliberately generic — the engine uses one instance
for evaluated :class:`~repro.query.results.PTQResult` objects and a second,
smaller one for shared ``filter_mappings`` prefixes — but the *keying*
discipline is what makes it safe: the engine always includes the session's
mapping-set generation (and document version) in the key, so entries written
against a superseded configuration are simply never looked up again and age
out through normal LRU eviction.  The cache itself never has to be flushed on
reconfiguration, which keeps ``configure()`` cheap under concurrency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, NamedTuple, Optional

__all__ = ["CacheKey", "CacheStats", "ResultCache"]

#: Bound on remembered delta transitions; retention across more than this
#: many epochs conservatively fails (the entry is simply recomputed).
_MAX_DELTA_LOG = 64
#: Bound on how many epochs one retain() call walks back.
_MAX_RETAIN_SCAN = 16


class CacheKey(NamedTuple):
    """Explicit, collision-proof result-cache key.

    Historically the engine keyed cached results by a bare positional tuple
    ``(query, plan, k, tau, generation, document_version)``.  With sharded
    execution in the picture — where a corpus holds one document view per
    shard and caches merged results *and* per-shard partials in the same
    session cache — positional tuples invite silent collisions, so the key
    is an explicit record instead:

    * ``scope`` discriminates the entry family: ``"session"`` for plain
      engine results, ``"corpus"`` for merged scatter-gather results,
      ``"shard"`` / ``"spine"`` for per-shard partials.  Two keys with
      different scopes are never equal, whatever their other fields.
    * ``shard`` / ``shards`` pin a partial to one shard of one layout, so a
      4-shard partial can never serve a 7-shard (or whole-corpus) lookup.
    * ``generation`` and ``document_version`` stay :class:`Hashable` rather
      than ``int`` because corpus scopes store the *full* per-session
      generation signature there — a multi-session corpus result depends on
      every member's generation, not just one.
    * ``delta_epoch`` is the fine-grained counter bumped by
      :meth:`Dataspace.apply_delta <repro.engine.dataspace.Dataspace.apply_delta>`
      *within* one generation.  It is what makes delta-aware retention
      possible: on a miss at the current epoch, :meth:`ResultCache.retain`
      looks for the same key at earlier epochs and promotes the entry when
      the intervening deltas provably cannot have affected it.

    Implemented as a :class:`~typing.NamedTuple` rather than a dataclass:
    a key is built on every cache consultation, and tuple construction and
    hashing are ~2.5x cheaper than a frozen dataclass's — measurable on the
    warm-request path, where the key is most of the remaining work.  The
    field layout is identical for every instance, so tuple equality is
    exactly field-wise equality.
    """

    query: str
    plan: str
    k: Optional[int]
    tau: Optional[float]
    generation: Hashable
    document_version: Hashable
    scope: str = "session"
    shard: Optional[int] = None
    shards: Optional[int] = None
    delta_epoch: Hashable = None


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters.

    ``hits``/``misses`` count lookups, ``evictions`` counts LRU removals
    caused by capacity pressure, and ``size``/``capacity`` describe the
    current occupancy.  ``retained`` counts entries that survived a mapping
    delta: served by :meth:`ResultCache.retain` after the plain lookup at
    the new ``delta_epoch`` missed.  A retained serve is *not* also counted
    as a hit, so ``hit_rate`` keeps its pre-delta meaning.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    retained: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable view of the snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "retained": self.retained,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """A bounded LRU cache safe for concurrent readers and writers.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is evicted
        when a put would exceed it.  A capacity of ``0`` disables the cache
        (every lookup misses, every put is dropped) while keeping the
        call-sites oblivious.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._retained = 0
        #: delta_epoch -> (probability-dirty mapping mask, dirty target
        #: mask), recorded by the session on every applied delta; consulted
        #: by :meth:`retain` to prove an older-epoch entry still valid.
        self._deltas: "OrderedDict[int, tuple[int, int]]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum number of entries the cache holds."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """``False`` when the cache was built with capacity 0."""
        return self._capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` (marking it recently used), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def items(self) -> list[tuple[Hashable, Any]]:
        """Consistent snapshot of all entries, least recently used first.

        Used by the persistence layer to capture result-cache warmth without
        touching recency or the hit/miss counters.
        """
        with self._lock:
            return list(self._entries.items())

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert ``value`` under ``key``, evicting the LRU entry when full.

        Returns the value actually stored: under a racing double-compute the
        first writer wins, so every caller ends up holding the same object.
        """
        if self._capacity == 0:
            return value
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = value
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    # ------------------------------------------------------------------ #
    # Delta-aware retention
    # ------------------------------------------------------------------ #
    def record_delta(
        self, delta_epoch: int, probability_mask: int, target_mask: int
    ) -> None:
        """Record the dirt of one applied mapping delta.

        Called by the owning session (under its write lock) when
        ``apply_delta`` commits epoch ``delta_epoch``.  ``probability_mask``
        flags the mappings whose probability value changed and
        ``target_mask`` the target elements whose correspondences changed —
        together they bound every way the delta can influence a query result
        (see :class:`repro.engine.delta.DeltaEffect`).  The log is bounded
        at :data:`_MAX_DELTA_LOG` entries; a lookup that would need an
        evicted-from-log transition simply fails to retain (conservative, so
        correctness never depends on the bound).
        """
        with self._lock:
            self._deltas[delta_epoch] = (probability_mask, target_mask)
            while len(self._deltas) > _MAX_DELTA_LOG:
                self._deltas.popitem(last=False)

    def retain(
        self,
        key: Any,
        mapping_mask: int,
        target_mask: int,
        *,
        probability_sensitive: bool = True,
        transform: Optional[Callable[[Any], Any]] = None,
    ) -> Optional[Any]:
        """Retain-on-miss: promote a pre-delta entry that provably survived.

        Called after :meth:`get` missed for ``key`` — any named-tuple key
        with a ``delta_epoch`` field holding the current epoch (the result
        cache's :class:`CacheKey`, the session filter cache's signature
        key).  Walks back through earlier epochs of the
        *same* key, accumulating the recorded dirt of every intervening
        delta, and stops as soon as the accumulated dirt intersects the
        caller's masks — one bitwise AND per mask:

        * ``mapping_mask`` — the mappings the cached entry depends on
          (typically the query's relevant-mapping mask), checked against the
          accumulated *probability* dirt: a reweighted relevant mapping may
          have changed the answer's probabilities or its top-k selection;
        * ``target_mask`` — the target elements the query requires, checked
          against the accumulated *target* dirt: a structural edit can
          influence a result only through the edited target elements
          (coverage, relevance and rewrites at every other target are
          untouched), so this single check covers all structural dirt.

        ``probability_sensitive=False`` skips the mapping-mask check —
        correct for values that do not encode probabilities or
        probability-driven selections, such as full (``k=None``) per-shard
        match partials, which a pure reweight delta cannot change.

        ``transform``, when given, is applied to the surviving value before
        it is re-inserted under the current-epoch key; the transformed value
        is what gets stored and returned.  This lets callers whose cached
        values hold epoch-bound objects (e.g. the filter cache's
        :class:`Mapping` lists, which must come from the *current* mapping
        set) promote entries across epochs by re-anchoring them instead of
        recomputing from scratch.  The callable runs under the cache lock
        and must be cheap and non-reentrant (it must not call back into the
        cache).

        A surviving entry is re-keyed to the current epoch (the old key is
        removed) and returned; ``None`` means nothing could be proven and
        the caller must evaluate.  Entries can never be retained across a
        generation bump or a full ``invalidate()``: only ``delta_epoch``
        varies in the probed keys, every other field (including
        ``generation``) must match exactly.
        """
        epoch = getattr(key, "delta_epoch", None)
        if self._capacity == 0 or not isinstance(epoch, int) or epoch <= 0:
            return None
        with self._lock:
            accumulated_mappings = 0
            accumulated_targets = 0
            lowest = max(0, epoch - _MAX_RETAIN_SCAN)
            for earlier in range(epoch - 1, lowest - 1, -1):
                recorded = self._deltas.get(earlier + 1)
                if recorded is None:
                    # Unknown transition (log evicted or epoch from another
                    # cache): nothing can be proven about it.
                    return None
                probability_dirt, dirty_targets = recorded
                if probability_sensitive:
                    accumulated_mappings |= probability_dirt
                accumulated_targets |= dirty_targets
                if (accumulated_mappings & mapping_mask) or (
                    accumulated_targets & target_mask
                ):
                    # Dirty already; older entries carry at least this dirt.
                    return None
                old_key = key._replace(delta_epoch=earlier)
                value = self._entries.get(old_key)
                if value is not None:
                    del self._entries[old_key]
                    if transform is not None:
                        value = transform(value)
                    self._entries[key] = value
                    self._entries.move_to_end(key)
                    self._retained += 1
                    return value
            return None

    def clear(self) -> None:
        """Drop every entry and the delta log (statistics are kept)."""
        with self._lock:
            self._entries.clear()
            self._deltas.clear()

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
                retained=self._retained,
            )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ResultCache(size={stats.size}/{stats.capacity}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
