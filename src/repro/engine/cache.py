"""Bounded, thread-safe LRU result cache with hit/miss statistics.

This module lives in the engine (the service layer re-exports it as
:mod:`repro.service`'s ``ResultCache``) because the session itself owns the
caches, while the service package sits above the engine.

:class:`ResultCache` is deliberately generic — the engine uses one instance
for evaluated :class:`~repro.query.results.PTQResult` objects and a second,
smaller one for shared ``filter_mappings`` prefixes — but the *keying*
discipline is what makes it safe: the engine always includes the session's
mapping-set generation (and document version) in the key, so entries written
against a superseded configuration are simply never looked up again and age
out through normal LRU eviction.  The cache itself never has to be flushed on
reconfiguration, which keeps ``configure()`` cheap under concurrency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, NamedTuple, Optional

__all__ = ["CacheKey", "CacheStats", "ResultCache"]


class CacheKey(NamedTuple):
    """Explicit, collision-proof result-cache key.

    Historically the engine keyed cached results by a bare positional tuple
    ``(query, plan, k, tau, generation, document_version)``.  With sharded
    execution in the picture — where a corpus holds one document view per
    shard and caches merged results *and* per-shard partials in the same
    session cache — positional tuples invite silent collisions, so the key
    is an explicit record instead:

    * ``scope`` discriminates the entry family: ``"session"`` for plain
      engine results, ``"corpus"`` for merged scatter-gather results,
      ``"shard"`` / ``"spine"`` for per-shard partials.  Two keys with
      different scopes are never equal, whatever their other fields.
    * ``shard`` / ``shards`` pin a partial to one shard of one layout, so a
      4-shard partial can never serve a 7-shard (or whole-corpus) lookup.
    * ``generation`` and ``document_version`` stay :class:`Hashable` rather
      than ``int`` because corpus scopes store the *full* per-session
      generation signature there — a multi-session corpus result depends on
      every member's generation, not just one.

    Implemented as a :class:`~typing.NamedTuple` rather than a dataclass:
    a key is built on every cache consultation, and tuple construction and
    hashing are ~2.5x cheaper than a frozen dataclass's — measurable on the
    warm-request path, where the key is most of the remaining work.  The
    field layout is identical for every instance, so tuple equality is
    exactly field-wise equality.
    """

    query: str
    plan: str
    k: Optional[int]
    tau: Optional[float]
    generation: Hashable
    document_version: Hashable
    scope: str = "session"
    shard: Optional[int] = None
    shards: Optional[int] = None


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters.

    ``hits``/``misses`` count lookups, ``evictions`` counts LRU removals
    caused by capacity pressure, and ``size``/``capacity`` describe the
    current occupancy.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable view of the snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """A bounded LRU cache safe for concurrent readers and writers.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is evicted
        when a put would exceed it.  A capacity of ``0`` disables the cache
        (every lookup misses, every put is dropped) while keeping the
        call-sites oblivious.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries the cache holds."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """``False`` when the cache was built with capacity 0."""
        return self._capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` (marking it recently used), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert ``value`` under ``key``, evicting the LRU entry when full.

        Returns the value actually stored: under a racing double-compute the
        first writer wins, so every caller ends up holding the same object.
        """
        if self._capacity == 0:
            return value
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = value
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ResultCache(size={stats.size}/{stats.capacity}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
