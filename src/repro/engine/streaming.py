"""Standing queries over delta batches: the engine's streaming write path.

The delta engine (:mod:`repro.engine.delta`) made mapping evolution cheap for
*readers* — caches retain provably-untouched entries across epochs — but each
write still answered "what changed?" by making every reader re-execute.  This
module turns ``apply_delta`` into a production write path with two pieces:

* :class:`DeltaBatch` / :func:`apply_delta_batch` coalesce a *sequence* of
  :class:`~repro.engine.delta.MappingDelta` edits into **one** patched compile
  and a single ``delta_epoch`` bump.  Each delta is validated against the
  intermediate state it applies to (exactly as if applied one by one), but
  the compiled bitset artifact is patched once, from the *net* difference
  between the first and last state — an add that a later delta removes never
  touches a posting list.  A batch of one delta is bit-identical (compiled
  columns and bookkeeping) to :func:`~repro.engine.delta.apply_mapping_delta`,
  which is what lets the session route its single-delta path through here.

* :class:`SubscriptionRegistry` inverts the cache-retention machinery: where
  :meth:`~repro.engine.cache.ResultCache.retain` proves which cached results
  a delta *cannot* touch, the registry proves which standing queries it
  *must* notify.  A subscription registers a PTQ/top-k once (keyed by the
  planner's canonical query text, so equivalent spellings share one standing
  query) and each committed batch partitions the standing queries three ways:

  ========================  ================================================
  class                     condition / work
  ========================  ================================================
  **unaffected**            masks AND dirt == 0 — two integer ANDs, no work
  **reweight-only**         probability column dirty, structure clean at the
                            query's required targets — rescore cached rows
                            and emit changed entries only, no re-execution
  **structural**            required-target structure dirty — re-execute via
                            the normal cost-routed path and diff
  ========================  ================================================

  Notifications are :class:`SubscriptionUpdate` diffs (added / removed /
  rescored rows) with the guarantee that replaying the stream onto the
  initial result set (:func:`apply_update`) reproduces, byte for byte, what
  re-executing the standing query from scratch at the new epoch returns —
  the differential property the streaming test harness pins across plans,
  kernel backends and shard counts.

Lifecycle and delivery contract
-------------------------------
``subscribe()`` executes the query once (the *baseline*) and delivers an
``initial`` update carrying the full current result; every later update is a
diff against the previous state the subscriber saw.  Updates are delivered
in epoch order, at most once per committed epoch, and never for an epoch
from before the subscription's baseline.  Consecutive epochs may be coalesced
into one update (the diff then spans all of them — the replay contract is
unaffected).  An update whose diff is empty is suppressed.  Callbacks run on
the committing (or draining) thread and must be fast and non-blocking;
exceptions are counted, never propagated.  ``configure()`` does not notify
by itself — a reconfiguration surfaces as a ``structural`` update at the
next committed delta batch.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Union

from repro.engine.delta import (
    DeltaReport,
    MappingDelta,
    apply_mapping_delta,
    target_mask_of,
)
from repro.engine.plans import plan_for, select_top_k
from repro.exceptions import MappingError, QueryError
from repro.mapping.mapping_set import MappingSet, mapping_mask
from repro.query.results import PTQAnswer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.dataspace import Dataspace, EngineSnapshot
    from repro.engine.delta import DeltaEffect
    from repro.engine.prepared import PreparedQuery
    from repro.query.twig import TwigQuery

__all__ = [
    "DeltaBatch",
    "BatchEffect",
    "DeltaBatchReport",
    "apply_delta_batch",
    "SubscriptionUpdate",
    "apply_update",
    "Subscription",
    "SubscriptionRegistry",
]

#: Bound on the registry's remembered per-epoch dirt entries; a standing
#: query lagging further behind is conservatively re-executed (structural).
_MAX_NOTIFY_LOG = 64

#: Sort key of update rows: most probable first, ties by mapping id — the
#: same order :class:`~repro.query.results.PTQResult` imposes on answers.
def _row_order(row: PTQAnswer) -> tuple[float, int]:
    """Sort key ordering answer rows like ``PTQResult`` does."""
    return (-row.probability, row.mapping_id)


# --------------------------------------------------------------------------- #
# Delta batches
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DeltaBatch:
    """An ordered sequence of deltas applied as one atomic epoch bump.

    Each member delta is validated against the state left by its
    predecessors — a batch behaves exactly like applying its deltas one by
    one — but the whole batch commits as a *single* ``delta_epoch`` bump
    with one incremental recompile of the net difference.

    >>> batch = DeltaBatch.of(MappingDelta.build(reweight={0: 0.5, 1: 0.5}))
    >>> len(batch)
    1
    """

    deltas: tuple[MappingDelta, ...] = ()

    @classmethod
    def of(cls, *deltas: MappingDelta) -> "DeltaBatch":
        """Build a batch from deltas given as positional arguments."""
        return cls(deltas=tuple(deltas))

    @classmethod
    def build(cls, deltas: Iterable[MappingDelta]) -> "DeltaBatch":
        """Build a batch from any iterable of deltas."""
        return cls(deltas=tuple(deltas))

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[MappingDelta]:
        return iter(self.deltas)

    def is_empty(self) -> bool:
        """``True`` when the batch holds no deltas (or only empty ones)."""
        return all(delta.is_empty() for delta in self.deltas)

    def touched_ids(self) -> frozenset[int]:
        """Ids of every mapping any member delta touches in any way."""
        ids: set[int] = set()
        for delta in self.deltas:
            ids |= delta.touched_ids()
        return frozenset(ids)

    def to_payload(self) -> dict:
        """JSON-serialisable form (see :meth:`from_payload`).

        Member deltas keep their order — a batch is a *sequence*, so unlike
        a single delta's canonical payload the list is not sorted.
        """
        return {"deltas": [delta.to_payload() for delta in self.deltas]}

    @classmethod
    def from_payload(cls, payload: dict) -> "DeltaBatch":
        """Rebuild a batch from :meth:`to_payload` output."""
        return cls(
            deltas=tuple(
                MappingDelta.from_payload(item) for item in payload.get("deltas", ())
            )
        )


@dataclass(frozen=True)
class BatchEffect:
    """Coalesced bitmask summary of one applied delta batch.

    The mask fields mirror :class:`~repro.engine.delta.DeltaEffect` but
    describe the *net* first-to-last difference: an edit a later delta of
    the same batch reverts contributes no dirt.  ``dirty_sources`` /
    ``dirty_source_mask`` additionally record the edited *source* elements,
    which shard-level dirty routing in the corpus layer keys on (a shard
    holding none of the edited source elements cannot observe the batch
    structurally).
    """

    num_deltas: int
    reweight_edits: int
    replace_edits: int
    dirty_mask: int
    structural_mask: int
    probability_mask: int
    dirty_target_mask: int
    dirty_targets: frozenset[int]
    dirty_sources: frozenset[int]
    dirty_source_mask: int
    posting_lists_touched: int
    posting_lists_total: int
    compiled_incrementally: bool


@dataclass(frozen=True)
class DeltaBatchReport(DeltaReport):
    """A :class:`~repro.engine.delta.DeltaReport` for a whole batch.

    Identical to the single-delta report — one epoch, one compile, the same
    reuse accounting — plus ``num_deltas``, the number of member deltas the
    epoch coalesced.  ``isinstance(report, DeltaReport)`` holds, so every
    existing report consumer keeps working.
    """

    num_deltas: int = 1

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report (adds ``num_deltas``)."""
        payload = super().to_dict()
        payload["num_deltas"] = self.num_deltas
        return payload

    def format(self) -> str:
        """Human-readable rendering (adds the coalesced-delta count)."""
        return super().format() + f"\ncoalesced:  {self.num_deltas} deltas"


def apply_delta_batch(
    mapping_set: MappingSet, batch: Union[DeltaBatch, Iterable[MappingDelta]]
) -> tuple[MappingSet, BatchEffect]:
    """Apply a batch of deltas to ``mapping_set``; one compile, net-diff masks.

    Each delta is applied (and fully validated) against the intermediate
    state left by its predecessors, on an *uncompiled* shadow of the input
    set — so no intermediate compile work happens.  The compiled artifact is
    then patched exactly once from the net first-to-last difference, and the
    returned :class:`BatchEffect` masks describe that net difference.

    A batch of one delta is bit-identical to
    :func:`~repro.engine.delta.apply_mapping_delta`: the same patched
    :class:`Mapping` objects, the same ``changed_pairs``, the same single
    :meth:`CompiledMappingSet.patched
    <repro.engine.compiled.CompiledMappingSet.patched>` call.

    Raises
    ------
    MappingError
        On an empty batch, or when any member delta is invalid against the
        state it applies to (the input set is never mutated either way).

    >>> # patched, effect = apply_delta_batch(ms, DeltaBatch.of(d1, d2))
    """
    deltas = list(batch.deltas) if isinstance(batch, DeltaBatch) else list(batch)
    if not deltas:
        raise MappingError("a delta batch must contain at least one delta")
    original = list(mapping_set)
    # Uncompiled shadow: apply_mapping_delta sees is_compiled == False and
    # skips per-step compile patching; validation is per intermediate state.
    shadow = MappingSet._patched(mapping_set.matching, original)
    touched: set[int] = set()
    structural: set[int] = set()
    reweight_edits = 0
    replace_edits = 0
    for delta in deltas:
        shadow, _ = apply_mapping_delta(shadow, delta)
        touched |= delta.touched_ids()
        structural |= delta.structural_ids()
        reweight_edits += len(delta.reweight)
        replace_edits += len(delta.replace)
    final = list(shadow)

    # Net first-to-last diff: exactly what apply_mapping_delta computes for
    # a single delta, so the one-compile patch below is call-identical.
    changed_pairs: dict[int, tuple[frozenset, frozenset]] = {}
    probability_ids: list[int] = []
    for mapping_id in sorted(touched):
        old, new = original[mapping_id], final[mapping_id]
        if new.correspondences != old.correspondences:
            changed_pairs[mapping_id] = (old.correspondences, new.correspondences)
        if new.probability != old.probability:
            probability_ids.append(mapping_id)

    dirty_targets: set[int] = set()
    dirty_sources: set[int] = set()
    edited_pairs: set = set()
    for old_pairs, new_pairs in changed_pairs.values():
        for pair in old_pairs ^ new_pairs:
            edited_pairs.add(pair)
            dirty_sources.add(pair[0])
            dirty_targets.add(pair[1])

    if mapping_set.is_compiled:
        from repro.engine.compiled import CompiledMappingSet

        compiled = CompiledMappingSet.patched(mapping_set.compile(), shadow, changed_pairs)
        shadow._compiled = compiled
        posting_total = len(compiled._pair_masks)
    else:
        posting_total = 0

    effect = BatchEffect(
        num_deltas=len(deltas),
        reweight_edits=reweight_edits,
        replace_edits=replace_edits,
        dirty_mask=mapping_mask(sorted(touched)),
        structural_mask=mapping_mask(sorted(structural)),
        probability_mask=mapping_mask(probability_ids),
        dirty_target_mask=target_mask_of(dirty_targets),
        dirty_targets=frozenset(dirty_targets),
        dirty_sources=frozenset(dirty_sources),
        dirty_source_mask=target_mask_of(dirty_sources),
        posting_lists_touched=len(edited_pairs),
        posting_lists_total=posting_total,
        compiled_incrementally=mapping_set.is_compiled,
    )
    return shadow, effect


# --------------------------------------------------------------------------- #
# Subscription updates and the replay contract
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SubscriptionUpdate:
    """One incremental notification of a standing query.

    ``kind`` is ``"initial"`` (the full baseline at registration),
    ``"reweight"`` (probabilities moved, structure provably clean — only
    ``rescored`` and, for top-k queries, membership churn) or
    ``"structural"`` (the query was re-executed and diffed).  The diff
    semantics (see :func:`apply_update`):

    * ``removed`` — mapping ids whose row leaves the result;
    * ``rescored`` — ``(mapping_id, probability)`` for rows whose matches
      are unchanged but whose probability moved;
    * ``added`` — full rows to upsert: genuinely new rows *and* rows whose
      match set changed.

    ``added`` rows are ordered like result answers (most probable first);
    ``removed`` and ``rescored`` ascend by mapping id.
    """

    subscription_id: int
    query: str
    k: Optional[int]
    kind: str
    generation: int
    delta_epoch: int
    added: tuple[PTQAnswer, ...] = ()
    removed: tuple[int, ...] = ()
    rescored: tuple[tuple[int, float], ...] = ()

    def is_empty_diff(self) -> bool:
        """``True`` when the update changes nothing (candidate for suppression)."""
        return not (self.added or self.removed or self.rescored)


def apply_update(
    rows: Iterable[PTQAnswer], update: SubscriptionUpdate
) -> list[PTQAnswer]:
    """Replay one update onto a row list; returns the new result rows.

    This is the subscriber-side half of the differential contract: starting
    from the ``initial`` update's rows and folding every subsequent update
    through this function yields, byte for byte (``float.hex()`` on
    probabilities), the rows a from-scratch execution of the standing query
    returns at the update's epoch.

    >>> # rows = apply_update(rows, update)
    """
    by_id = {row.mapping_id: row for row in rows}
    for mapping_id in update.removed:
        by_id.pop(mapping_id, None)
    for mapping_id, probability in update.rescored:
        old = by_id.get(mapping_id)
        if old is not None:
            by_id[mapping_id] = PTQAnswer(
                mapping_id=mapping_id, probability=probability, matches=old.matches
            )
    for row in update.added:
        by_id[row.mapping_id] = row
    return sorted(by_id.values(), key=_row_order)


# --------------------------------------------------------------------------- #
# Standing queries and subscriptions
# --------------------------------------------------------------------------- #
class _StandingQuery:
    """Registry-internal state of one registered (query, k) pair.

    All mutable fields are guarded by the registry's table lock.
    ``baseline`` maps mapping id to the row the subscribers currently hold;
    ``relevant_ids`` / ``relevant_mask`` cache the filter prefix (refreshed
    on structural updates) and ``required_mask`` the target elements the
    query's embeddings need — the two integers the unaffected check ANDs.
    """

    __slots__ = (
        "prepared",
        "k",
        "key",
        "relevant_ids",
        "relevant_mask",
        "required_mask",
        "baseline",
        "last_epoch",
        "generation",
        "document_version",
        "subscribers",
    )

    def __init__(
        self,
        prepared: "PreparedQuery",
        k: Optional[int],
        key: tuple[str, Optional[int]],
        relevant_ids: tuple[int, ...],
        required_mask: int,
        baseline: dict[int, PTQAnswer],
        last_epoch: int,
        generation: int,
        document_version: int,
    ) -> None:
        self.prepared = prepared
        self.k = k
        self.key = key
        self.relevant_ids = relevant_ids
        self.relevant_mask = mapping_mask(relevant_ids)
        self.required_mask = required_mask
        self.baseline = baseline
        self.last_epoch = last_epoch
        self.generation = generation
        self.document_version = document_version
        self.subscribers: dict[int, "Subscription"] = {}


class Subscription:
    """A live subscriber handle returned by ``subscribe()``.

    Holds the subscriber's id, the standing query's canonical text and
    ``k``, the ``initial`` update delivered at registration, and the most
    recent update seen.  :meth:`cancel` detaches the subscriber; cancelling
    from inside a notification callback is safe.
    """

    def __init__(
        self,
        registry: "SubscriptionRegistry",
        standing: _StandingQuery,
        subscription_id: int,
        callback: Callable[[SubscriptionUpdate], None],
    ) -> None:
        self._registry = registry
        self._standing = standing
        self._id = subscription_id
        self._callback = callback
        self._active = True
        self.initial: Optional[SubscriptionUpdate] = None
        self.last_update: Optional[SubscriptionUpdate] = None
        self.updates_delivered = 0

    @property
    def subscription_id(self) -> int:
        """Registry-unique id of this subscriber."""
        return self._id

    @property
    def query(self) -> str:
        """Canonical text of the standing query."""
        return self._standing.prepared.cache_key

    @property
    def k(self) -> Optional[int]:
        """The standing query's top-k restriction (``None`` for full results)."""
        return self._standing.k

    @property
    def active(self) -> bool:
        """``False`` once :meth:`cancel` has detached the subscriber."""
        return self._active

    def cancel(self) -> bool:
        """Detach this subscriber; returns whether it was still attached.

        After cancellation no further updates are delivered.  The standing
        query itself is dropped when its last subscriber cancels.
        """
        was_active = self._registry._cancel(self._standing, self._id)
        self._active = False
        return was_active

    def _record(self, update: SubscriptionUpdate) -> None:
        """Remember a delivered update on the handle (registry-internal)."""
        if update.kind == "initial":
            self.initial = update
        self.last_update = update
        self.updates_delivered += 1

    def __repr__(self) -> str:
        return (
            f"Subscription(id={self._id}, query={self.query!r}, k={self.k}, "
            f"active={self._active})"
        )


@dataclass(frozen=True)
class _Notice:
    """A committed state the registry must advance standing queries to."""

    epoch: int
    generation: int
    document_version: int
    snapshot: "EngineSnapshot"


class SubscriptionRegistry:
    """Standing queries of one session, notified from delta dirty masks.

    Owned by a :class:`~repro.engine.dataspace.Dataspace`; the session calls
    :meth:`on_commit` under its write lock when a delta batch commits and
    :meth:`drain` after releasing it.  See the module docstring for the
    three-way classification and the delivery contract.

    Locking: the table lock (reentrant) guards the standing-query table and
    all delivery, so each subscriber observes a total order of updates; the
    pending queue and the per-epoch dirt log have their own leaf locks so
    :meth:`on_commit` — which runs under the session's write lock — never
    touches the table lock.  :meth:`drain` is single-flight: a drain
    triggered from inside a notification callback (e.g. a callback that
    applies another delta) returns immediately and the outer drain picks
    the new notice up.
    """

    def __init__(self, dataspace: "Dataspace") -> None:
        self._dataspace = dataspace
        self._table: dict[tuple[str, Optional[int]], _StandingQuery] = {}
        self._table_lock = threading.RLock()
        self._pending: "deque[_Notice]" = deque()
        self._pending_lock = threading.Lock()
        self._log: "OrderedDict[int, tuple[int, int]]" = OrderedDict()
        self._log_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._subscribed = 0
        self._cancelled = 0
        self._batches = 0
        self._unaffected = 0
        self._reweight_only = 0
        self._structural = 0
        self._notifications = 0
        self._suppressed = 0
        self._callback_errors = 0
        self._update_errors = 0

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        query: Union[str, "TwigQuery"],
        *,
        k: Optional[int] = None,
        callback: Callable[[SubscriptionUpdate], None],
    ) -> Subscription:
        """Register a standing query; returns the live :class:`Subscription`.

        The query is prepared (and keyed) by its canonical text, executed
        once as the baseline, and the ``initial`` update is delivered to
        ``callback`` before this method returns.  A second subscriber to an
        already-standing (query, k) pair shares the standing query's state
        and receives an ``initial`` built from it — no re-execution.

        Raises
        ------
        QueryError
            On a non-positive ``k``.
        """
        if k is not None and k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        ds = self._dataspace
        prepared = ds.prepare(query)
        snap = ds.snapshot(need_tree=False)
        baseline = prepared.execute(k=k, snapshot=snap, use_cache=True)
        relevant = prepared.relevant_mappings(snap)
        required_mask = prepared.required_target_mask()
        key = (prepared.cache_key, k)
        with self._table_lock:
            standing = self._table.get(key)
            created = standing is None
            if standing is None:
                standing = _StandingQuery(
                    prepared=prepared,
                    k=k,
                    key=key,
                    relevant_ids=tuple(m.mapping_id for m in relevant),
                    required_mask=required_mask,
                    baseline={row.mapping_id: row for row in baseline.answers},
                    last_epoch=snap.delta_epoch,
                    generation=snap.generation,
                    document_version=snap.document_version,
                )
                self._table[key] = standing
            subscription_id = next(self._ids)
            handle = Subscription(self, standing, subscription_id, callback)
            standing.subscribers[subscription_id] = handle
            initial = SubscriptionUpdate(
                subscription_id=subscription_id,
                query=prepared.cache_key,
                k=k,
                kind="initial",
                generation=standing.generation,
                delta_epoch=standing.last_epoch,
                added=tuple(sorted(standing.baseline.values(), key=_row_order)),
            )
            handle._record(initial)
            self._deliver_one(handle, initial)
            with self._stats_lock:
                self._subscribed += 1
        if created:
            # Close the registration race: a batch that committed between the
            # baseline snapshot and the table insert drained before this
            # standing query existed.  A synthetic notice at the *current*
            # state catches it up; the epoch guard in _advance makes any
            # overlap with real pending notices harmless.
            current = ds.snapshot(need_tree=False)
            if (
                current.delta_epoch > snap.delta_epoch
                or current.generation != snap.generation
                or current.document_version != snap.document_version
            ):
                with self._pending_lock:
                    self._pending.append(
                        _Notice(
                            epoch=current.delta_epoch,
                            generation=current.generation,
                            document_version=current.document_version,
                            snapshot=current,
                        )
                    )
        self.drain()
        return handle

    def _cancel(self, standing: _StandingQuery, subscription_id: int) -> bool:
        """Detach one subscriber; drop the standing query when it empties."""
        with self._table_lock:
            handle = standing.subscribers.pop(subscription_id, None)
            if handle is not None:
                with self._stats_lock:
                    self._cancelled += 1
            if not standing.subscribers and self._table.get(standing.key) is standing:
                del self._table[standing.key]
        return handle is not None

    # ------------------------------------------------------------------ #
    # Commit plumbing (called by the session)
    # ------------------------------------------------------------------ #
    def on_commit(
        self,
        epoch: int,
        generation: int,
        document_version: int,
        effect: Union[BatchEffect, "DeltaEffect"],
        snapshot: Optional["EngineSnapshot"],
    ) -> None:
        """Record one committed batch; runs under the session's write lock.

        Appends the epoch's dirt masks to the bounded log and enqueues a
        notice carrying the committed snapshot.  Only leaf locks are taken
        here — never the table lock — so commit latency stays independent of
        subscriber count and no lock cycle with delivery is possible.
        ``snapshot`` is ``None`` only when the session's document is not
        built, in which case no standing query can exist yet.
        """
        with self._log_lock:
            self._log[epoch] = (effect.probability_mask, effect.dirty_target_mask)
            while len(self._log) > _MAX_NOTIFY_LOG:
                self._log.popitem(last=False)
        if snapshot is None:
            return
        with self._pending_lock:
            self._pending.append(
                _Notice(
                    epoch=epoch,
                    generation=generation,
                    document_version=document_version,
                    snapshot=snapshot,
                )
            )

    def drain(self) -> int:
        """Deliver every pending notice; returns how many were processed.

        Single-flight and non-blocking: when another thread (or an enclosing
        callback on this thread) is already draining, this returns ``0``
        immediately — the active drain's re-check loop picks up any notice
        enqueued meanwhile, so no notice is ever stranded.
        """
        processed = 0
        while True:
            with self._pending_lock:
                if not self._pending:
                    return processed
            if not self._drain_lock.acquire(blocking=False):
                return processed
            try:
                while True:
                    with self._pending_lock:
                        if not self._pending:
                            break
                        notice = self._pending.popleft()
                    self._process(notice)
                    processed += 1
            finally:
                self._drain_lock.release()

    def _process(self, notice: _Notice) -> None:
        """Advance every standing query to ``notice`` (under the table lock).

        Per-standing-query statistics are accumulated in a notice-local
        ``counts`` dict and flushed under the stats lock once, so a large
        subscriber population costs one lock round-trip per notice instead
        of several per standing query.
        """
        counts = {
            "unaffected": 0,
            "reweight_only": 0,
            "structural": 0,
            "suppressed": 0,
            "notifications": 0,
            "callback_errors": 0,
            "update_errors": 0,
        }
        # Standing queries over the same relevant set share their top-k
        # reselection for this notice (see _reweight_update).
        memo: dict = {}
        with self._table_lock:
            for standing in list(self._table.values()):
                try:
                    self._advance(standing, notice, memo, counts)
                except Exception:
                    # One failing standing query never blocks the others;
                    # the failure is counted and the query retries (from its
                    # unchanged last_epoch) at the next notice.
                    counts["update_errors"] += 1
        with self._stats_lock:
            self._batches += 1
            self._unaffected += counts["unaffected"]
            self._reweight_only += counts["reweight_only"]
            self._structural += counts["structural"]
            self._suppressed += counts["suppressed"]
            self._notifications += counts["notifications"]
            self._callback_errors += counts["callback_errors"]
            self._update_errors += counts["update_errors"]

    # ------------------------------------------------------------------ #
    # Classification and incremental updates
    # ------------------------------------------------------------------ #
    def _accumulated_dirt(
        self, standing: _StandingQuery, epoch: int
    ) -> Optional[tuple[int, int]]:
        """OR of the logged dirt over ``(last_epoch, epoch]``; ``None`` on a gap."""
        probability_dirt = 0
        target_dirt = 0
        with self._log_lock:
            for step in range(standing.last_epoch + 1, epoch + 1):
                entry = self._log.get(step)
                if entry is None:
                    return None
                probability_dirt |= entry[0]
                target_dirt |= entry[1]
        return probability_dirt, target_dirt

    def _classify(self, standing: _StandingQuery, notice: _Notice) -> tuple[str, int]:
        """Partition one standing query for one notice (see module docstring).

        Returns ``(kind, probability_dirt)`` — the accumulated probability
        dirt is handed to the reweight path so the rescore touches exactly
        the dirty rows (``0`` for the other kinds, which don't consume it).
        """
        if (
            notice.generation != standing.generation
            or notice.document_version != standing.document_version
        ):
            return "structural", 0
        dirt = self._accumulated_dirt(standing, notice.epoch)
        if dirt is None:
            return "structural", 0
        probability_dirt, target_dirt = dirt
        if target_dirt & standing.required_mask:
            return "structural", 0
        if probability_dirt & standing.relevant_mask:
            return "reweight", probability_dirt
        return "unaffected", 0

    def _advance(
        self,
        standing: _StandingQuery,
        notice: _Notice,
        memo: Optional[dict] = None,
        counts: Optional[dict] = None,
    ) -> None:
        """Move one standing query to ``notice``'s state, delivering its diff.

        ``memo`` is the notice-scoped reselection cache shared by every
        standing query processed for the same notice; ``counts`` is the
        notice-local statistics accumulator (see :meth:`_process`).
        """
        if notice.epoch <= standing.last_epoch:
            return
        kind, probability_dirt = self._classify(standing, notice)
        if kind == "unaffected":
            standing.last_epoch = notice.epoch
            self._count(counts, "unaffected")
            return
        # With one subscriber (the common case) the update is built carrying
        # its id directly, skipping the per-subscriber copy below; ids start
        # at 1, so the 0 placeholder never matches a real subscriber.
        subscribers = list(standing.subscribers.items())
        sole_id = subscribers[0][0] if len(subscribers) == 1 else 0
        if kind == "reweight":
            update = self._reweight_update(
                standing, notice, probability_dirt, sole_id, memo
            )
            self._count(counts, "reweight_only")
        else:
            update = self._structural_update(standing, notice, sole_id)
            self._count(counts, "structural")
        standing.last_epoch = notice.epoch
        standing.generation = notice.generation
        standing.document_version = notice.document_version
        if update.is_empty_diff():
            self._count(counts, "suppressed")
            return
        for subscription_id, handle in subscribers:
            delivered = (
                update
                if subscription_id == update.subscription_id
                else replace(update, subscription_id=subscription_id)
            )
            handle._record(delivered)
            self._deliver_one(handle, delivered, counts)

    def _count(self, counts: Optional[dict], key: str) -> None:
        """Bump one statistic, batched into ``counts`` when one is supplied."""
        if counts is not None:
            counts[key] += 1
            return
        with self._stats_lock:
            setattr(self, f"_{key}", getattr(self, f"_{key}") + 1)

    def _deliver_one(
        self,
        handle: Subscription,
        update: SubscriptionUpdate,
        counts: Optional[dict] = None,
    ) -> None:
        """Invoke one subscriber callback, counting (never raising) errors."""
        self._count(counts, "notifications")
        try:
            handle._callback(update)
        except Exception:
            self._count(counts, "callback_errors")

    def _reweight_update(
        self,
        standing: _StandingQuery,
        notice: _Notice,
        probability_dirt: int,
        subscription_id: int = 0,
        memo: Optional[dict] = None,
    ) -> SubscriptionUpdate:
        """Rescore cached rows from the new probability column; no re-execution.

        Structure at the query's required targets is provably clean, so
        every cached row's match set is still exact and the relevant-mapping
        id set is unchanged; only probabilities (and, under a top-k
        restriction, the top-k membership) can move.  Only mappings flagged
        in ``probability_dirt`` can have moved, so the unrestricted rescore
        walks exactly the dirty rows instead of scanning the whole baseline,
        and both paths read the incrementally-patched compiled probability
        column when one is available.  Top-k entrants — rows newly selected
        into the top k — are the only thing evaluated, via one compiled-plan
        run restricted to exactly those mappings.
        """
        mapping_set = notice.snapshot.mapping_set
        compiled = mapping_set._compiled
        removed: tuple[int, ...] = ()
        added: list[PTQAnswer] = []
        rescored: list[tuple[int, float]] = []
        if standing.k is None:
            baseline = standing.baseline
            dirty = probability_dirt
            while dirty:
                low_bit = dirty & -dirty
                dirty ^= low_bit
                mapping_id = low_bit.bit_length() - 1
                row = baseline.get(mapping_id)
                if row is None:
                    continue
                probability = (
                    compiled.probabilities[mapping_id]
                    if compiled is not None
                    else mapping_set[mapping_id].probability
                )
                if probability != row.probability:
                    baseline[mapping_id] = PTQAnswer(
                        mapping_id=mapping_id,
                        probability=probability,
                        matches=row.matches,
                    )
                    rescored.append((mapping_id, probability))
        else:
            if compiled is not None:
                probabilities = compiled.probabilities
                # Standing queries sharing a relevant set and k reuse one
                # reselection per notice (memo is scoped to one _process).
                memo_key = (standing.relevant_ids, standing.k)
                new_ids = memo.get(memo_key) if memo is not None else None
                if new_ids is None:
                    new_ids = sorted(
                        standing.relevant_ids,
                        key=lambda mid: (-probabilities[mid], mid),
                    )[: standing.k]
                    if memo is not None:
                        memo[memo_key] = new_ids

                def probability_of(mapping_id: int) -> float:
                    """Probability from the patched compiled column."""
                    return probabilities[mapping_id]

            else:
                fresh = [
                    mapping_set[mapping_id] for mapping_id in standing.relevant_ids
                ]
                new_ids = [
                    mapping.mapping_id
                    for mapping in select_top_k(fresh, standing.k)
                ]

                def probability_of(mapping_id: int) -> float:
                    """Probability from the uncompiled mapping objects."""
                    return mapping_set[mapping_id].probability

            old = standing.baseline
            entrant_ids = [mapping_id for mapping_id in new_ids if mapping_id not in old]
            if not entrant_ids and len(new_ids) == len(old):
                # Stable membership (no entrants, so new_ids is a subset of
                # the old top k; equal sizes make it the same set): rescore
                # the dirty rows in place exactly like the unrestricted path.
                dirty = probability_dirt
                while dirty:
                    low_bit = dirty & -dirty
                    dirty ^= low_bit
                    mapping_id = low_bit.bit_length() - 1
                    row = old.get(mapping_id)
                    if row is None:
                        continue
                    probability = probability_of(mapping_id)
                    if probability != row.probability:
                        old[mapping_id] = PTQAnswer(
                            mapping_id=mapping_id,
                            probability=probability,
                            matches=row.matches,
                        )
                        rescored.append((mapping_id, probability))
                return SubscriptionUpdate(
                    subscription_id=subscription_id,
                    query=standing.prepared.cache_key,
                    k=standing.k,
                    kind="reweight",
                    generation=notice.generation,
                    delta_epoch=notice.epoch,
                    added=(),
                    removed=(),
                    rescored=tuple(sorted(rescored)),
                )
            entrant_rows: dict[int, PTQAnswer] = {}
            if entrant_ids:
                result = plan_for("compiled").run(
                    standing.prepared.query,
                    mapping_set,
                    notice.snapshot.document,
                    embeddings=standing.prepared.embeddings,
                    mappings=[mapping_set[mapping_id] for mapping_id in entrant_ids],
                    kernels=self._dataspace.kernels,
                )
                entrant_rows = {row.mapping_id: row for row in result}
            removed = tuple(sorted(set(old) - set(new_ids)))
            new_baseline: dict[int, PTQAnswer] = {}
            for mapping_id in new_ids:
                if mapping_id in old:
                    row = old[mapping_id]
                    probability = probability_of(mapping_id)
                    if probability != row.probability:
                        row = PTQAnswer(
                            mapping_id=mapping_id,
                            probability=probability,
                            matches=row.matches,
                        )
                        rescored.append((mapping_id, probability))
                else:
                    row = entrant_rows[mapping_id]
                    added.append(row)
                new_baseline[mapping_id] = row
            standing.baseline = new_baseline
        return SubscriptionUpdate(
            subscription_id=subscription_id,
            query=standing.prepared.cache_key,
            k=standing.k,
            kind="reweight",
            generation=notice.generation,
            delta_epoch=notice.epoch,
            added=tuple(sorted(added, key=_row_order)),
            removed=removed,
            rescored=tuple(sorted(rescored)),
        )

    def _structural_update(
        self,
        standing: _StandingQuery,
        notice: _Notice,
        subscription_id: int = 0,
    ) -> SubscriptionUpdate:
        """Re-execute via the normal cost-routed path and diff against baseline."""
        result = standing.prepared.execute(
            k=standing.k, snapshot=notice.snapshot, use_cache=True
        )
        relevant = standing.prepared.relevant_mappings(notice.snapshot)
        standing.relevant_ids = tuple(m.mapping_id for m in relevant)
        standing.relevant_mask = mapping_mask(standing.relevant_ids)
        rows = {row.mapping_id: row for row in result.answers}
        old = standing.baseline
        removed = tuple(sorted(set(old) - set(rows)))
        added: list[PTQAnswer] = []
        rescored: list[tuple[int, float]] = []
        for mapping_id, row in rows.items():
            previous = old.get(mapping_id)
            if previous is None or previous.matches != row.matches:
                added.append(row)
            elif previous.probability != row.probability:
                rescored.append((mapping_id, row.probability))
        standing.baseline = rows
        return SubscriptionUpdate(
            subscription_id=subscription_id,
            query=standing.prepared.cache_key,
            k=standing.k,
            kind="structural",
            generation=notice.generation,
            delta_epoch=notice.epoch,
            added=tuple(sorted(added, key=_row_order)),
            removed=removed,
            rescored=tuple(sorted(rescored)),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters of the registry: registrations, classification, delivery."""
        with self._table_lock:
            standing_queries = len(self._table)
            subscribers = sum(len(sq.subscribers) for sq in self._table.values())
        with self._stats_lock:
            return {
                "standing_queries": standing_queries,
                "subscribers": subscribers,
                "subscribed": self._subscribed,
                "cancelled": self._cancelled,
                "batches": self._batches,
                "unaffected": self._unaffected,
                "reweight_only": self._reweight_only,
                "structural": self._structural,
                "notifications": self._notifications,
                "suppressed": self._suppressed,
                "callback_errors": self._callback_errors,
                "update_errors": self._update_errors,
            }

    def __len__(self) -> int:
        with self._table_lock:
            return len(self._table)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SubscriptionRegistry(standing={stats['standing_queries']}, "
            f"subscribers={stats['subscribers']}, "
            f"notifications={stats['notifications']})"
        )
