"""Pluggable PTQ evaluation plans — the engine's strategy layer.

A :class:`QueryPlan` packages one way of evaluating a probabilistic twig
query: the ``basic`` plan runs the paper's per-mapping Algorithm 3, the
``blocktree`` plan runs the c-block sharing Algorithm 4, and the ``compiled``
plan (the engine default) runs on the mapping set's compiled bitset view —
mappings are grouped by identical query rewrite up front and each distinct
rewrite is evaluated exactly once.  All plans produce identical
:class:`~repro.query.results.PTQResult` contents; a plan is a pure strategy
choice, so the engine (or a caller forcing an override) can pick one without
affecting answers.

Every plan shares the resolve → filter → evaluate pipeline through
:meth:`QueryPlan.run`, which accepts pre-computed ``embeddings`` and
``relevant`` mappings so a :class:`~repro.engine.prepared.PreparedQuery` can
cache that work across executions.  Top-k restriction (Definition 5) also
lives here: the k best answers are exactly the k most probable relevant
mappings.

Additional plans can be added with :func:`register_plan`; lookup by name is
case-, dash- and underscore-insensitive (``"block-tree"`` and ``"blocktree"``
name the same plan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.core.blocktree import BlockTree
from repro.document.document import XMLDocument
from repro.exceptions import QueryError
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.query.ptq import (
    evaluate_resolved_basic,
    evaluate_resolved_blocktree,
    evaluate_resolved_compiled,
    filter_mappings,
)
from repro.query.resolve import Embedding, resolve_query
from repro.query.results import PTQResult
from repro.query.twig import TwigQuery

__all__ = [
    "QueryPlan",
    "BasicPlan",
    "BlockTreePlan",
    "CompiledPlan",
    "ExplainReport",
    "plan_for",
    "register_plan",
    "available_plans",
    "select_top_k",
    "anchored_subtree_paths",
]


def select_top_k(relevant: Sequence[Mapping], k: int) -> list[Mapping]:
    """Keep the ``k`` most probable mappings (ties broken by mapping id).

    Raises
    ------
    QueryError
        If ``k`` is not positive.
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    ordered = sorted(relevant, key=lambda mapping: (-mapping.probability, mapping.mapping_id))
    return ordered[:k]


class QueryPlan:
    """One strategy for evaluating a PTQ (see module docstring).

    Subclasses set :attr:`name` (the registry key) and
    :attr:`uses_block_tree`, and implement :meth:`evaluate` over
    pre-resolved embeddings and a pre-filtered mapping subset.
    """

    #: Registry name of the plan (normalised: lowercase, no separators).
    name: str = "abstract"
    #: Whether :meth:`evaluate` needs a block tree.
    uses_block_tree: bool = False
    #: Whether :meth:`evaluate` runs on the compiled bitset view of the
    #: mapping set (``MappingSet.compile()``); ``explain()`` reports the
    #: compiled rewrite/bitset statistics for such plans.
    uses_compiled: bool = False

    def run(
        self,
        query: TwigQuery,
        mapping_set: MappingSet,
        document: XMLDocument,
        *,
        block_tree: Optional[BlockTree] = None,
        embeddings: Optional[list[Embedding]] = None,
        relevant: Optional[Iterable[Mapping]] = None,
        mappings: Optional[Iterable[Mapping]] = None,
        k: Optional[int] = None,
        kernels=None,
    ) -> PTQResult:
        """Full pipeline: resolve and filter (unless pre-computed), then evaluate.

        Parameters
        ----------
        query, mapping_set, document:
            The PTQ and the artifacts it runs over.
        block_tree:
            Required by plans with :attr:`uses_block_tree`.
        embeddings:
            Pre-resolved embeddings of the query into the target schema;
            resolved here when omitted.
        relevant:
            Pre-filtered relevant mappings (from :func:`filter_mappings`
            over the whole mapping set); computed here when omitted.  Any
            iterable is accepted and materialised once.
        mappings:
            Explicit candidate subset (any iterable); overrides ``relevant``
            and is re-filtered, mirroring the seed free functions.
        k:
            Optional top-k restriction (Definition 5).
        kernels:
            Kernel-backend selection for plans with :attr:`uses_compiled`
            (see :func:`repro.engine.kernels.resolve_kernels`); ignored by
            the object-graph plans.  Answers never depend on the backend.
        """
        if k is not None and k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if embeddings is None:
            embeddings = resolve_query(query, mapping_set.matching.target)
        # Normalise candidate inputs to concrete lists exactly once: the
        # evaluators iterate their mapping subset once per embedding, so a
        # caller-supplied generator or other one-shot iterable must not reach
        # them raw (it would silently drain after the first embedding).
        if mappings is not None:
            selected: Sequence[Mapping] = filter_mappings(mappings, embeddings)
        elif relevant is not None:
            selected = list(relevant)
        else:
            selected = filter_mappings(mapping_set, embeddings)
        if k is not None:
            selected = select_top_k(selected, k)
        return self.evaluate(
            query, mapping_set, document, embeddings, selected, block_tree, kernels
        )

    def evaluate(
        self,
        query: TwigQuery,
        mapping_set: MappingSet,
        document: XMLDocument,
        embeddings: list[Embedding],
        mappings: Sequence[Mapping],
        block_tree: Optional[BlockTree],
        kernels=None,
    ) -> PTQResult:
        """Evaluate over pre-resolved embeddings and pre-filtered mappings."""
        raise NotImplementedError


class BasicPlan(QueryPlan):
    """Algorithm 3: rewrite and match the whole query once per mapping."""

    name = "basic"
    uses_block_tree = False

    def evaluate(
        self, query, mapping_set, document, embeddings, mappings, block_tree, kernels=None
    ):
        """Delegate to :func:`repro.query.ptq.evaluate_resolved_basic`."""
        return evaluate_resolved_basic(query, mapping_set, document, embeddings, mappings)


class BlockTreePlan(QueryPlan):
    """Algorithm 4: share evaluation across mappings through c-blocks."""

    name = "blocktree"
    uses_block_tree = True

    def evaluate(
        self, query, mapping_set, document, embeddings, mappings, block_tree, kernels=None
    ):
        """Delegate to :func:`repro.query.ptq.evaluate_resolved_blocktree`."""
        if block_tree is None:
            raise QueryError("the blocktree plan requires a block tree")
        return evaluate_resolved_blocktree(
            query, mapping_set, document, block_tree, embeddings, mappings
        )


class CompiledPlan(QueryPlan):
    """Compiled core: group mappings by identical rewrite, evaluate each once.

    Runs on the mapping set's compiled bitset view
    (:mod:`repro.engine.compiled`).  Generalises the c-block sharing of
    Algorithm 4 — sharing applies even where the block tree carries no
    anchored blocks — without needing the tree at all.
    """

    name = "compiled"
    uses_block_tree = False
    uses_compiled = True

    def evaluate(
        self, query, mapping_set, document, embeddings, mappings, block_tree, kernels=None
    ):
        """Delegate to :func:`repro.query.ptq.evaluate_resolved_compiled`."""
        return evaluate_resolved_compiled(
            query, mapping_set, document, embeddings, mappings, kernels
        )


# --------------------------------------------------------------------------- #
# Plan registry
# --------------------------------------------------------------------------- #
_PLAN_REGISTRY: dict[str, QueryPlan] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "").replace("_", "")


def register_plan(plan: QueryPlan) -> QueryPlan:
    """Register ``plan`` under its (normalised) :attr:`~QueryPlan.name`."""
    _PLAN_REGISTRY[_normalize(plan.name)] = plan
    return plan


def available_plans() -> tuple[str, ...]:
    """Names of the registered plans, in registration order."""
    return tuple(plan.name for plan in _PLAN_REGISTRY.values())


def plan_for(plan: Union[str, QueryPlan]) -> QueryPlan:
    """Resolve a plan name (or pass a plan instance through).

    Raises
    ------
    QueryError
        If the name is not registered.
    """
    if isinstance(plan, QueryPlan):
        return plan
    try:
        return _PLAN_REGISTRY[_normalize(str(plan))]
    except KeyError:
        raise QueryError(
            f"unknown query plan {plan!r}; available plans: {', '.join(available_plans())}"
        ) from None


register_plan(BasicPlan())
register_plan(BlockTreePlan())
register_plan(CompiledPlan())


# --------------------------------------------------------------------------- #
# Explain support
# --------------------------------------------------------------------------- #
def anchored_subtree_paths(
    query: TwigQuery, embeddings: list[Embedding], block_tree: BlockTree
) -> tuple[str, ...]:
    """Highest anchored subtree per embedding, as target-schema paths.

    For each embedding this walks the query top-down (pre-order) and records
    the first query node whose target element has an entry in the block
    tree's hash table — the point where Algorithm 4 switches from
    decomposition to per-block evaluation.
    """
    paths: list[str] = []
    schema = block_tree.target_schema
    for embedding in embeddings:
        for node in query.root.iter_subtree():
            path = schema.get(embedding[node.node_id]).path
            tree_node = block_tree.node_for_path(path)
            if tree_node is not None and tree_node.has_blocks:
                paths.append(path)
                break
    return tuple(dict.fromkeys(paths))


@dataclass(frozen=True)
class ExplainReport:
    """Structured account of how one PTQ execution was (or would be) carried out.

    Produced by :meth:`repro.engine.prepared.PreparedQuery.explain`; rendered
    by the CLI's ``explain`` subcommand.  ``timings_ms`` holds the measured
    ``resolve``/``filter``/``evaluate`` stage times — a stage served from a
    prepared-query cache reports (close to) zero.  ``cache`` records how the session's result cache
    participated (``"hit"``, ``"miss"``, ``"retained"`` — a pre-delta entry
    that survived the last mapping delta — or ``"bypass"``) and
    ``cache_stats`` snapshots its counters.
    ``compiled_stats`` is populated when the plan ran on the compiled bitset
    core: distinct-rewrite counts for this query plus bitset statistics of the
    compiled artifact (see
    :meth:`repro.engine.compiled.CompiledMappingSet.rewrite_stats`).
    ``artifacts`` records per-artifact provenance — ``loaded`` (restored from
    a persistent store, with the deserialization time) versus ``built`` (cold
    derivation) — mirroring the cache-participation reporting.
    ``planner`` records *why* the plan was selected: the cost estimate of
    every candidate strategy, the winner, and the statistics snapshot the
    cost model used (``None`` when the plan was forced by the caller).
    ``analyze`` is populated by ``explain(analyze=True)``: the planner's
    estimated cardinalities and latency next to the measured actuals of this
    very execution.
    """

    query: str
    plan: str
    reason: str
    num_mappings: int
    num_embeddings: int
    num_relevant: int
    relevant_mapping_ids: tuple[int, ...]
    k: Optional[int]
    num_selected: int
    num_blocks: Optional[int]
    anchored_paths: tuple[str, ...]
    timings_ms: dict[str, float]
    num_answers: int
    num_non_empty: int
    cache: Optional[str] = None
    cache_stats: Optional[dict] = None
    compiled_stats: Optional[dict] = None
    artifacts: Optional[dict] = None
    planner: Optional[dict] = None
    analyze: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report."""
        return {
            "query": self.query,
            "plan": self.plan,
            "reason": self.reason,
            "num_mappings": self.num_mappings,
            "num_embeddings": self.num_embeddings,
            "num_relevant": self.num_relevant,
            "relevant_mapping_ids": list(self.relevant_mapping_ids),
            "k": self.k,
            "num_selected": self.num_selected,
            "num_blocks": self.num_blocks,
            "anchored_paths": list(self.anchored_paths),
            "timings_ms": {stage: round(ms, 3) for stage, ms in self.timings_ms.items()},
            "num_answers": self.num_answers,
            "num_non_empty": self.num_non_empty,
            "cache": self.cache,
            "cache_stats": self.cache_stats,
            "compiled_stats": self.compiled_stats,
            "artifacts": self.artifacts,
            "planner": self.planner,
            "analyze": self.analyze,
        }

    def format(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        ids = ", ".join(str(mapping_id) for mapping_id in self.relevant_mapping_ids[:12])
        if len(self.relevant_mapping_ids) > 12:
            ids += f", ... ({len(self.relevant_mapping_ids)} total)"
        timings = "  ".join(f"{stage}={ms:.2f} ms" for stage, ms in self.timings_ms.items())
        lines = [
            f"query:      {self.query}",
            f"plan:       {self.plan} ({self.reason})",
            f"mappings:   |M|={self.num_mappings}  relevant={self.num_relevant}"
            f"  selected={self.num_selected}"
            + (f"  (top-k, k={self.k})" if self.k is not None else ""),
            f"relevant:   [{ids}]",
            f"embeddings: {self.num_embeddings}",
        ]
        if self.num_blocks is not None:
            anchored = ", ".join(self.anchored_paths) if self.anchored_paths else "(none)"
            lines.append(f"c-blocks:   {self.num_blocks}")
            lines.append(f"anchored:   {anchored}")
        if self.compiled_stats is not None:
            stats = self.compiled_stats
            lines.append(
                "compiled:   "
                f"{stats.get('num_distinct_rewrites', 0)} distinct rewrites / "
                f"{stats.get('num_rewrite_groups', 0)} groups "
                f"(saved {stats.get('evaluations_saved', 0)} evaluations; "
                f"{stats.get('num_posting_lists', 0)} posting lists, "
                f"{stats.get('bitset_bytes', 0)} B bitsets; "
                f"{stats.get('kernel_backend', 'python')} kernels)"
            )
        if self.planner is not None:
            estimates = ", ".join(
                f"{row.get('plan')}={row.get('cost_ms')} ms"
                f" ({row.get('observations')} obs)"
                for row in self.planner.get("candidates", [])
            )
            lines.append(f"planner:    {self.planner.get('reason', '?')}")
            if estimates:
                lines.append(f"estimates:  {estimates}")
        if self.analyze is not None:
            estimated = self.analyze.get("estimated") or {}
            actual = self.analyze.get("actual") or {}
            parts = []
            for field_name in sorted(set(estimated) | set(actual)):
                parts.append(
                    f"{field_name}={estimated.get(field_name, '?')}→"
                    f"{actual.get(field_name, '?')}"
                )
            lines.append(f"analyze:    {'  '.join(parts)} (estimated→actual)")
        lines.append(f"timings:    {timings}")
        if self.cache is not None:
            stats = self.cache_stats or {}
            detail = ""
            if stats:
                detail = (
                    f" (hits={stats.get('hits', 0)} misses={stats.get('misses', 0)}"
                    f" hit_rate={stats.get('hit_rate', 0.0)})"
                )
            lines.append(f"cache:      {self.cache}{detail}")
        if self.artifacts:
            parts = []
            for name, info in sorted(self.artifacts.items()):
                source = info.get("source", "?")
                ms = info.get("ms")
                parts.append(
                    f"{name}={source}" + (f"({ms:.1f} ms)" if ms is not None else "")
                )
            lines.append(f"artifacts:  {'  '.join(parts)}")
        lines.append(f"answers:    {self.num_answers} ({self.num_non_empty} non-empty)")
        return "\n".join(lines)
