"""The compiled evaluation core: columnar bitset algebra over a mapping set.

The paper's speed argument (Section III) is that possible mappings share most
of their correspondences, so evaluation work should be shared across them.
The object-graph representation pays per-mapping costs anyway: probing
``Mapping.source_for_target`` per query node per mapping, intersecting
``frozenset`` mapping-id sets for c-block membership, and filling one dict
entry per mapping in the evaluators.  This module lowers a
:class:`~repro.mapping.mapping_set.MappingSet` into dense integer indices so
those operations become single bitwise AND / popcount steps:

* **posting lists** — for every correspondence ``(s, t)`` a bitmask of the
  mappings that contain it (:meth:`CompiledMappingSet.pair_mask`);
* **coverage masks** — for every target element the union of its posting
  lists, i.e. the mappings that map it *somewhere*
  (:meth:`CompiledMappingSet.covered_mask`); ``filter_mappings`` becomes one
  AND per query node (:meth:`CompiledMappingSet.relevant_mask`);
* **source partitions** — for every target element, its posting lists grouped
  by source element: the one-step refinement used to split a candidate mask
  into groups sharing the same rewrite
  (:meth:`CompiledMappingSet.rewrite_groups`);
* **probability column** — mapping probabilities as a flat tuple indexed by
  mapping id.

:meth:`CompiledMappingSet.rewrite_groups` is what the engine's ``compiled``
query plan runs on: it partitions the relevant mappings of a query embedding
into groups whose members rewrite *every* query node to the same source
element, so each distinct rewrite is evaluated exactly once and the result is
fanned back out by bitmask.  This generalises the c-block sharing of
Algorithm 4 — it shares work even where the block tree carries no anchored
block, and it never misses sharing because of the tree's construction budgets.

Instances are built through :meth:`MappingSet.compile`, which memoizes the
artifact on the (immutable) mapping set — under the engine's generation
machinery, invalidating the mapping set therefore also retires its compiled
view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.mapping.mapping_set import MappingSet, iter_mapping_ids, mapping_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.mapping import Mapping
    from repro.matching.correspondence import CorrespondenceKey
    from repro.query.resolve import Embedding

__all__ = ["CompiledMappingSet", "compile_mapping_set"]

#: A rewrite group: (bitmask of member mappings, target element -> source element).
RewriteGroup = tuple[int, dict[int, int]]


class CompiledMappingSet:
    """Dense, integer-indexed view of a mapping set (see module docstring).

    Built once per (immutable) mapping set via :meth:`MappingSet.compile`.
    All masks index mappings by their ``mapping_id``, which by construction
    is the mapping's position in the set.
    """

    __slots__ = (
        "mapping_set",
        "num_mappings",
        "all_mask",
        "probabilities",
        "_pair_masks",
        "_covered_masks",
        "_target_sources",
    )

    def __init__(self, mapping_set: MappingSet) -> None:
        self.mapping_set = mapping_set
        self.num_mappings = len(mapping_set)
        #: Bitmask with one bit per mapping, all set.
        self.all_mask = (1 << self.num_mappings) - 1
        #: Probability column, indexed by mapping id.
        self.probabilities: tuple[float, ...] = tuple(
            mapping.probability for mapping in mapping_set
        )
        pair_masks: dict["CorrespondenceKey", int] = {}
        covered_masks: dict[int, int] = {}
        sources: dict[int, dict[int, int]] = {}
        for mapping in mapping_set:
            bit = 1 << mapping.mapping_id
            for source_id, target_id in mapping.correspondences:
                key = (source_id, target_id)
                pair_masks[key] = pair_masks.get(key, 0) | bit
                covered_masks[target_id] = covered_masks.get(target_id, 0) | bit
                by_source = sources.setdefault(target_id, {})
                by_source[source_id] = by_source.get(source_id, 0) | bit
        self._pair_masks = pair_masks
        self._covered_masks = covered_masks
        # Source partitions are stored sorted by source id so every traversal
        # (rewrite grouping, stats) is deterministic.
        self._target_sources: dict[int, tuple[tuple[int, int], ...]] = {
            target_id: tuple(sorted(by_source.items()))
            for target_id, by_source in sources.items()
        }

    @classmethod
    def patched(
        cls,
        previous: "CompiledMappingSet",
        mapping_set: MappingSet,
        changed_pairs: dict[int, tuple[frozenset, frozenset]],
    ) -> "CompiledMappingSet":
        """Derive a compiled view incrementally from a predecessor artifact.

        ``changed_pairs`` maps each structurally dirty mapping id to its
        ``(old_correspondences, new_correspondences)`` frozensets.  Only the
        posting lists of edited correspondences, the coverage masks and
        source partitions of their target elements, and the probability
        column are rebuilt; every other bitmask column is carried over from
        ``previous`` untouched.  The result is indistinguishable from a full
        :meth:`MappingSet.compile` of the same set (the differential suite
        pins dict-level equality), at a cost proportional to the edit instead
        of to ``h x |pairs|``.

        >>> # compiled = CompiledMappingSet.patched(old, new_set, {3: (old_pairs, new_pairs)})
        """
        self = object.__new__(cls)
        self.mapping_set = mapping_set
        self.num_mappings = previous.num_mappings
        self.all_mask = previous.all_mask
        # The probability column is the one full column a delta rebuilds.
        self.probabilities = tuple(mapping.probability for mapping in mapping_set)
        pair_masks = dict(previous._pair_masks)
        covered_masks = dict(previous._covered_masks)
        target_sources = dict(previous._target_sources)
        # Touched targets get a mutable source->mask dict, seeded from the
        # predecessor's (immutable) partition tuple exactly once.
        editable: dict[int, dict[int, int]] = {}

        def by_source(target_id: int) -> dict[int, int]:
            partitions = editable.get(target_id)
            if partitions is None:
                partitions = dict(target_sources.get(target_id, ()))
                editable[target_id] = partitions
            return partitions

        for mapping_id, (old_pairs, new_pairs) in changed_pairs.items():
            bit = 1 << mapping_id
            for key in old_pairs - new_pairs:
                source_id, target_id = key
                mask = pair_masks.get(key, 0) & ~bit
                if mask:
                    pair_masks[key] = mask
                else:
                    pair_masks.pop(key, None)
                partitions = by_source(target_id)
                source_mask = partitions.get(source_id, 0) & ~bit
                if source_mask:
                    partitions[source_id] = source_mask
                else:
                    partitions.pop(source_id, None)
            for key in new_pairs - old_pairs:
                source_id, target_id = key
                pair_masks[key] = pair_masks.get(key, 0) | bit
                partitions = by_source(target_id)
                partitions[source_id] = partitions.get(source_id, 0) | bit

        for target_id, partitions in editable.items():
            if partitions:
                target_sources[target_id] = tuple(sorted(partitions.items()))
                covered = 0
                for mask in partitions.values():
                    covered |= mask
                covered_masks[target_id] = covered
            else:
                # The last correspondence for this target was removed; a
                # fresh compile would not know the element at all.
                target_sources.pop(target_id, None)
                covered_masks.pop(target_id, None)

        self._pair_masks = pair_masks
        self._covered_masks = covered_masks
        self._target_sources = target_sources
        return self

    # ------------------------------------------------------------------ #
    # Mask primitives
    # ------------------------------------------------------------------ #
    def pair_mask(self, key: "CorrespondenceKey") -> int:
        """Posting list of correspondence ``key``: mappings containing it."""
        return self._pair_masks.get(key, 0)

    def covered_mask(self, target_id: int) -> int:
        """Mappings that map ``target_id`` to *some* source element."""
        return self._covered_masks.get(target_id, 0)

    def source_partitions(self, target_id: int) -> tuple[tuple[int, int], ...]:
        """``(source_id, mask)`` partition of :meth:`covered_mask`, ascending source id."""
        return self._target_sources.get(target_id, ())

    def mask_for(self, mappings: Iterable["Mapping"]) -> int:
        """Bitmask of the given mapping objects (by ``mapping_id``)."""
        return mapping_mask(mapping.mapping_id for mapping in mappings)

    def iter_ids(self, mask: int) -> Iterator[int]:
        """Mapping ids encoded in ``mask``, ascending."""
        return iter_mapping_ids(mask)

    def mappings_of(self, mask: int) -> list["Mapping"]:
        """Materialise ``mask`` as mapping objects, in ascending-id order."""
        mapping_set = self.mapping_set
        return [mapping_set[mapping_id] for mapping_id in iter_mapping_ids(mask)]

    # ------------------------------------------------------------------ #
    # Coverage / filtering (the paper's filter_mappings, as bit algebra)
    # ------------------------------------------------------------------ #
    def covers_mask(self, target_ids: Iterable[int]) -> int:
        """Mappings containing a correspondence for *every* given target element."""
        mask = self.all_mask
        for target_id in target_ids:
            mask &= self._covered_masks.get(target_id, 0)
            if not mask:
                break
        return mask

    def covers_targets(self, mapping_id: int, target_ids: Iterable[int]) -> bool:
        """Single-mapping coverage test against the compiled index."""
        bit = 1 << mapping_id
        return all(self._covered_masks.get(target_id, 0) & bit for target_id in target_ids)

    def mappings_covering(self, target_ids: Iterable[int]) -> list["Mapping"]:
        """Mapping objects covering every target id (ascending-id order)."""
        return self.mappings_of(self.covers_mask(target_ids))

    def relevant_mask(self, embeddings: Iterable["Embedding"]) -> int:
        """Mappings relevant for *any* embedding (union of per-embedding coverage)."""
        mask = 0
        for embedding in embeddings:
            mask |= self.covers_mask(set(embedding.values()))
            if mask == self.all_mask:
                break
        return mask

    def relevant_mappings(self, embeddings: Iterable["Embedding"]) -> list["Mapping"]:
        """The paper's ``filter_mappings`` over pre-resolved embeddings."""
        return self.mappings_of(self.relevant_mask(embeddings))

    # ------------------------------------------------------------------ #
    # Rewrite grouping (the compiled plan's sharing step)
    # ------------------------------------------------------------------ #
    def rewrite_groups(
        self, target_ids: Iterable[int], mask: Optional[int] = None
    ) -> list[RewriteGroup]:
        """Partition mappings by their rewrite of the given target elements.

        Starting from the mappings covering every target element (optionally
        intersected with ``mask``), the candidate bitmask is refined one
        target element at a time by the element's source partitions.  Each
        returned ``(group_mask, assignment)`` satisfies: every mapping in
        ``group_mask`` maps each requested target element to
        ``assignment[target_id]`` — i.e. the whole group shares one query
        rewrite.  Groups are disjoint and their union is exactly the covering
        candidates; traversal order is deterministic (targets ascending,
        sources ascending).
        """
        required = sorted(set(target_ids))
        candidates = self.covers_mask(required)
        if mask is not None:
            candidates &= mask
        if not candidates:
            return []
        groups: list[RewriteGroup] = [(candidates, {})]
        for target_id in required:
            refined: list[RewriteGroup] = []
            for group_mask, assignment in groups:
                for source_id, source_mask in self.source_partitions(target_id):
                    shared = group_mask & source_mask
                    if shared:
                        extended = dict(assignment)
                        extended[target_id] = source_id
                        refined.append((shared, extended))
            groups = refined
        return groups

    # ------------------------------------------------------------------ #
    # Statistics (surfaced by explain())
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Bitset statistics of the compiled artifact."""
        popcounts = [mask.bit_count() for mask in self._pair_masks.values()]
        num_masks = (
            len(self._pair_masks)
            + len(self._covered_masks)
            + sum(len(partitions) for partitions in self._target_sources.values())
        )
        mask_bytes = (self.num_mappings + 7) // 8
        return {
            "num_mappings": self.num_mappings,
            "num_posting_lists": len(self._pair_masks),
            "num_target_elements": len(self._covered_masks),
            "mean_posting_popcount": (
                round(sum(popcounts) / len(popcounts), 2) if popcounts else 0.0
            ),
            "max_posting_popcount": max(popcounts, default=0),
            "bitset_bytes": num_masks * mask_bytes,
        }

    def rewrite_stats(
        self, embeddings: Iterable["Embedding"], mappings: Iterable["Mapping"]
    ) -> dict:
        """Sharing statistics for one query: how many rewrites are distinct.

        ``num_rewrite_groups`` counts the per-embedding groups the compiled
        plan would evaluate; ``num_distinct_rewrites`` deduplicates identical
        target→source assignments across embeddings; ``evaluations_saved`` is
        the number of per-mapping evaluations Algorithm 3 would have run that
        the compiled plan shares away.
        """
        mask = self.mask_for(mappings)
        signatures: set[tuple[tuple[int, int], ...]] = set()
        num_groups = 0
        per_mapping_evaluations = 0
        for embedding in embeddings:
            for group_mask, assignment in self.rewrite_groups(
                set(embedding.values()), mask
            ):
                num_groups += 1
                per_mapping_evaluations += group_mask.bit_count()
                signatures.add(tuple(sorted(assignment.items())))
        stats = self.stats()
        stats.update(
            {
                "num_selected": mask.bit_count(),
                "num_rewrite_groups": num_groups,
                "num_distinct_rewrites": len(signatures),
                "evaluations_saved": per_mapping_evaluations - num_groups,
            }
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"CompiledMappingSet(mappings={self.num_mappings}, "
            f"posting_lists={len(self._pair_masks)})"
        )


def compile_mapping_set(mapping_set: MappingSet) -> CompiledMappingSet:
    """Functional alias of :meth:`MappingSet.compile` (same memoized artifact)."""
    return mapping_set.compile()
