"""The compiled evaluation core: columnar bitset algebra over a mapping set.

The paper's speed argument (Section III) is that possible mappings share most
of their correspondences, so evaluation work should be shared across them.
The object-graph representation pays per-mapping costs anyway: probing
``Mapping.source_for_target`` per query node per mapping, intersecting
``frozenset`` mapping-id sets for c-block membership, and filling one dict
entry per mapping in the evaluators.  This module lowers a
:class:`~repro.mapping.mapping_set.MappingSet` into dense integer indices so
those operations become single bitwise AND / popcount steps:

* **posting lists** — for every correspondence ``(s, t)`` a bitmask of the
  mappings that contain it (:meth:`CompiledMappingSet.pair_mask`);
* **coverage masks** — for every target element the union of its posting
  lists, i.e. the mappings that map it *somewhere*
  (:meth:`CompiledMappingSet.covered_mask`); ``filter_mappings`` becomes one
  AND per query node (:meth:`CompiledMappingSet.relevant_mask`);
* **source partitions** — for every target element, its posting lists grouped
  by source element: the one-step refinement used to split a candidate mask
  into groups sharing the same rewrite
  (:meth:`CompiledMappingSet.rewrite_groups`);
* **probability column** — mapping probabilities as a flat tuple indexed by
  mapping id.

These neutral columns (plain Python ints and float tuples) are the artifact's
*source of truth* — what :meth:`CompiledMappingSet.patched` edits and what the
persistent store serialises.  The hot loops *over* them — coverage
intersection, the union-of-coverage filter step, partition refinement,
probability accumulation — run on a pluggable kernel backend
(:mod:`repro.engine.kernels`): the pure-Python backend evaluates the columns
directly, while the numpy backend lazily packs them into ``uint64`` word
matrices and a contiguous ``float64`` column and runs the same loops as
vectorised ufunc calls.  Backends are byte-identical by contract; which one
runs is reported through :meth:`CompiledMappingSet.stats` (and thus
``explain()``).

:meth:`CompiledMappingSet.rewrite_groups` is what the engine's ``compiled``
query plan runs on: it partitions the relevant mappings of a query embedding
into groups whose members rewrite *every* query node to the same source
element, so each distinct rewrite is evaluated exactly once and the result is
fanned back out by bitmask.  This generalises the c-block sharing of
Algorithm 4 — it shares work even where the block tree carries no anchored
block, and it never misses sharing because of the tree's construction budgets.

Instances are built through :meth:`MappingSet.compile`, which memoizes the
artifact on the (immutable) mapping set — under the engine's generation
machinery, invalidating the mapping set therefore also retires its compiled
view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Union

from repro.engine.kernels import Kernels, resolve_kernels
from repro.mapping.mapping_set import MappingSet, iter_mapping_ids, mapping_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.mapping import Mapping
    from repro.matching.correspondence import CorrespondenceKey
    from repro.query.resolve import Embedding

__all__ = ["CompiledMappingSet", "compile_mapping_set"]

#: A rewrite group: (bitmask of member mappings, target element -> source element).
RewriteGroup = tuple[int, dict[int, int]]


class CompiledMappingSet:
    """Dense, integer-indexed view of a mapping set (see module docstring).

    Built once per (immutable) mapping set via :meth:`MappingSet.compile`.
    All masks index mappings by their ``mapping_id``, which by construction
    is the mapping's position in the set.
    """

    __slots__ = (
        "mapping_set",
        "num_mappings",
        "all_mask",
        "probabilities",
        "kernels",
        "_pair_masks",
        "_covered_masks",
        "_target_sources",
        "_columns",
    )

    def __init__(
        self, mapping_set: MappingSet, kernels: Union[Kernels, str, None] = None
    ) -> None:
        self.mapping_set = mapping_set
        self.num_mappings = len(mapping_set)
        #: The kernel backend the hot loops run on (repro.engine.kernels).
        self.kernels: Kernels = resolve_kernels(kernels)
        # Backend columnar state, bound lazily on first hot-loop call.
        self._columns: Any = None
        #: Bitmask with one bit per mapping, all set.
        self.all_mask = (1 << self.num_mappings) - 1
        #: Probability column, indexed by mapping id.
        self.probabilities: tuple[float, ...] = tuple(
            mapping.probability for mapping in mapping_set
        )
        pair_masks: dict["CorrespondenceKey", int] = {}
        covered_masks: dict[int, int] = {}
        sources: dict[int, dict[int, int]] = {}
        for mapping in mapping_set:
            bit = 1 << mapping.mapping_id
            for source_id, target_id in mapping.correspondences:
                key = (source_id, target_id)
                pair_masks[key] = pair_masks.get(key, 0) | bit
                covered_masks[target_id] = covered_masks.get(target_id, 0) | bit
                by_source = sources.setdefault(target_id, {})
                by_source[source_id] = by_source.get(source_id, 0) | bit
        self._pair_masks = pair_masks
        self._covered_masks = covered_masks
        # Source partitions are stored sorted by source id so every traversal
        # (rewrite grouping, stats) is deterministic.
        self._target_sources: dict[int, tuple[tuple[int, int], ...]] = {
            target_id: tuple(sorted(by_source.items()))
            for target_id, by_source in sources.items()
        }

    @classmethod
    def patched(
        cls,
        previous: "CompiledMappingSet",
        mapping_set: MappingSet,
        changed_pairs: dict[int, tuple[frozenset, frozenset]],
    ) -> "CompiledMappingSet":
        """Derive a compiled view incrementally from a predecessor artifact.

        ``changed_pairs`` maps each structurally dirty mapping id to its
        ``(old_correspondences, new_correspondences)`` frozensets.  Only the
        posting lists of edited correspondences, the coverage masks and
        source partitions of their target elements, and the probability
        column are rebuilt; every other bitmask column is carried over from
        ``previous`` untouched.  The result is indistinguishable from a full
        :meth:`MappingSet.compile` of the same set (the differential suite
        pins dict-level equality), at a cost proportional to the edit instead
        of to ``h x |pairs|``.

        >>> # compiled = CompiledMappingSet.patched(old, new_set, {3: (old_pairs, new_pairs)})
        """
        self = object.__new__(cls)
        self.mapping_set = mapping_set
        self.num_mappings = previous.num_mappings
        self.all_mask = previous.all_mask
        # The patched artifact stays on its predecessor's backend; its bound
        # columnar state is rebuilt lazily because the columns changed.
        self.kernels = previous.kernels
        self._columns = None
        # The probability column is the one full column a delta rebuilds.
        self.probabilities = tuple(mapping.probability for mapping in mapping_set)
        pair_masks = dict(previous._pair_masks)
        covered_masks = dict(previous._covered_masks)
        target_sources = dict(previous._target_sources)
        # Touched targets get a mutable source->mask dict, seeded from the
        # predecessor's (immutable) partition tuple exactly once.
        editable: dict[int, dict[int, int]] = {}

        def by_source(target_id: int) -> dict[int, int]:
            partitions = editable.get(target_id)
            if partitions is None:
                partitions = dict(target_sources.get(target_id, ()))
                editable[target_id] = partitions
            return partitions

        for mapping_id, (old_pairs, new_pairs) in changed_pairs.items():
            bit = 1 << mapping_id
            for key in old_pairs - new_pairs:
                source_id, target_id = key
                mask = pair_masks.get(key, 0) & ~bit
                if mask:
                    pair_masks[key] = mask
                else:
                    pair_masks.pop(key, None)
                partitions = by_source(target_id)
                source_mask = partitions.get(source_id, 0) & ~bit
                if source_mask:
                    partitions[source_id] = source_mask
                else:
                    partitions.pop(source_id, None)
            for key in new_pairs - old_pairs:
                source_id, target_id = key
                pair_masks[key] = pair_masks.get(key, 0) | bit
                partitions = by_source(target_id)
                partitions[source_id] = partitions.get(source_id, 0) | bit

        for target_id, partitions in editable.items():
            if partitions:
                target_sources[target_id] = tuple(sorted(partitions.items()))
                covered = 0
                for mask in partitions.values():
                    covered |= mask
                covered_masks[target_id] = covered
            else:
                # The last correspondence for this target was removed; a
                # fresh compile would not know the element at all.
                target_sources.pop(target_id, None)
                covered_masks.pop(target_id, None)

        self._pair_masks = pair_masks
        self._covered_masks = covered_masks
        self._target_sources = target_sources
        return self

    # ------------------------------------------------------------------ #
    # Kernel backend plumbing
    # ------------------------------------------------------------------ #
    def _bound(self) -> Any:
        """The backend's columnar state, bound on first use and memoized.

        Benign under races: binding is a pure function of the (immutable)
        neutral columns, so two threads building concurrently produce
        equivalent states and the last assignment wins.
        """
        columns = self._columns
        if columns is None:
            columns = self.kernels.bind(self)
            self._columns = columns
        return columns

    def with_kernels(self, kernels: Union[Kernels, str, None]) -> "CompiledMappingSet":
        """A view of this artifact running on a different kernel backend.

        The neutral columns are shared (they are immutable by convention);
        only the backend choice and its lazily bound columnar state differ.
        Returns ``self`` when the resolved backend is already this one.
        """
        resolved = resolve_kernels(kernels)
        if resolved is self.kernels:
            return self
        twin = object.__new__(type(self))
        twin.mapping_set = self.mapping_set
        twin.num_mappings = self.num_mappings
        twin.all_mask = self.all_mask
        twin.probabilities = self.probabilities
        twin.kernels = resolved
        twin._pair_masks = self._pair_masks
        twin._covered_masks = self._covered_masks
        twin._target_sources = self._target_sources
        twin._columns = None
        return twin

    # ------------------------------------------------------------------ #
    # Mask primitives
    # ------------------------------------------------------------------ #
    def pair_mask(self, key: "CorrespondenceKey") -> int:
        """Posting list of correspondence ``key``: mappings containing it."""
        return self._pair_masks.get(key, 0)

    def covered_mask(self, target_id: int) -> int:
        """Mappings that map ``target_id`` to *some* source element."""
        return self._covered_masks.get(target_id, 0)

    def source_partitions(self, target_id: int) -> tuple[tuple[int, int], ...]:
        """``(source_id, mask)`` partition of :meth:`covered_mask`, ascending source id."""
        return self._target_sources.get(target_id, ())

    def mask_for(self, mappings: Iterable["Mapping"]) -> int:
        """Bitmask of the given mapping objects (by ``mapping_id``)."""
        return mapping_mask(mapping.mapping_id for mapping in mappings)

    def iter_ids(self, mask: int) -> Iterator[int]:
        """Mapping ids encoded in ``mask``, ascending."""
        return iter_mapping_ids(mask)

    def mappings_of(self, mask: int) -> list["Mapping"]:
        """Materialise ``mask`` as mapping objects, in ascending-id order."""
        mapping_set = self.mapping_set
        return [mapping_set[mapping_id] for mapping_id in iter_mapping_ids(mask)]

    # ------------------------------------------------------------------ #
    # Coverage / filtering (the paper's filter_mappings, as bit algebra)
    # ------------------------------------------------------------------ #
    def covers_mask(self, target_ids: Iterable[int]) -> int:
        """Mappings containing a correspondence for *every* given target element."""
        return self.kernels.coverage_mask(self._bound(), list(target_ids))

    def covers_targets(self, mapping_id: int, target_ids: Iterable[int]) -> bool:
        """Single-mapping coverage test against the compiled index."""
        bit = 1 << mapping_id
        return all(self._covered_masks.get(target_id, 0) & bit for target_id in target_ids)

    def mappings_covering(self, target_ids: Iterable[int]) -> list["Mapping"]:
        """Mapping objects covering every target id (ascending-id order)."""
        return self.mappings_of(self.covers_mask(target_ids))

    def relevant_mask(self, embeddings: Iterable["Embedding"]) -> int:
        """Mappings relevant for *any* embedding (union of per-embedding coverage)."""
        return self.kernels.union_coverage(
            self._bound(),
            [list(set(embedding.values())) for embedding in embeddings],
        )

    def relevant_mappings(self, embeddings: Iterable["Embedding"]) -> list["Mapping"]:
        """The paper's ``filter_mappings`` over pre-resolved embeddings."""
        return self.mappings_of(self.relevant_mask(embeddings))

    # ------------------------------------------------------------------ #
    # Rewrite grouping (the compiled plan's sharing step)
    # ------------------------------------------------------------------ #
    def rewrite_groups(
        self, target_ids: Iterable[int], mask: Optional[int] = None
    ) -> list[RewriteGroup]:
        """Partition mappings by their rewrite of the given target elements.

        Starting from the mappings covering every target element (optionally
        intersected with ``mask``), the candidate bitmask is refined one
        target element at a time by the element's source partitions.  Each
        returned ``(group_mask, assignment)`` satisfies: every mapping in
        ``group_mask`` maps each requested target element to
        ``assignment[target_id]`` — i.e. the whole group shares one query
        rewrite.  Groups are disjoint and their union is exactly the covering
        candidates; traversal order is deterministic (targets ascending,
        sources ascending).
        """
        required = sorted(set(target_ids))
        candidates = self.covers_mask(required)
        if mask is not None:
            candidates &= mask
        if not candidates:
            return []
        return self.kernels.refine_groups(self._bound(), required, candidates)

    # ------------------------------------------------------------------ #
    # Probability column (kernel-accelerated accumulation)
    # ------------------------------------------------------------------ #
    def probabilities_of(self, mask: int) -> list[float]:
        """Probability-column entries of ``mask``'s members, ascending id."""
        return self.kernels.gather_probabilities(self._bound(), mask)

    def probability_of_mask(self, mask: int) -> float:
        """Accumulated probability mass of the mappings encoded in ``mask``.

        Both kernel backends sum in ascending mapping-id order with plain
        sequential IEEE-754 addition, so the value is bit-identical across
        backends.
        """
        return self.kernels.probability_mass(self._bound(), mask)

    def max_probability(self) -> float:
        """Largest single mapping probability (top-k session upper bounds)."""
        return self.kernels.max_probability(self._bound())

    # ------------------------------------------------------------------ #
    # Statistics (surfaced by explain())
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Bitset statistics of the compiled artifact."""
        popcounts = self.kernels.popcounts(self._pair_masks.values())
        num_masks = (
            len(self._pair_masks)
            + len(self._covered_masks)
            + sum(len(partitions) for partitions in self._target_sources.values())
        )
        mask_bytes = (self.num_mappings + 7) // 8
        return {
            "kernel_backend": self.kernels.name,
            "num_mappings": self.num_mappings,
            "num_posting_lists": len(self._pair_masks),
            "num_target_elements": len(self._covered_masks),
            "mean_posting_popcount": (
                round(sum(popcounts) / len(popcounts), 2) if popcounts else 0.0
            ),
            "max_posting_popcount": max(popcounts, default=0),
            "bitset_bytes": num_masks * mask_bytes,
        }

    def rewrite_stats(
        self, embeddings: Iterable["Embedding"], mappings: Iterable["Mapping"]
    ) -> dict:
        """Sharing statistics for one query: how many rewrites are distinct.

        ``num_rewrite_groups`` counts the per-embedding groups the compiled
        plan would evaluate; ``num_distinct_rewrites`` deduplicates identical
        target→source assignments across embeddings; ``evaluations_saved`` is
        the number of per-mapping evaluations Algorithm 3 would have run that
        the compiled plan shares away.
        """
        mask = self.mask_for(mappings)
        signatures: set[tuple[tuple[int, int], ...]] = set()
        num_groups = 0
        per_mapping_evaluations = 0
        for embedding in embeddings:
            for group_mask, assignment in self.rewrite_groups(
                set(embedding.values()), mask
            ):
                num_groups += 1
                per_mapping_evaluations += self.kernels.popcount(group_mask)
                signatures.add(tuple(sorted(assignment.items())))
        stats = self.stats()
        stats.update(
            {
                "num_selected": self.kernels.popcount(mask),
                "selected_probability_mass": self.probability_of_mask(mask),
                "num_rewrite_groups": num_groups,
                "num_distinct_rewrites": len(signatures),
                "evaluations_saved": per_mapping_evaluations - num_groups,
            }
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"CompiledMappingSet(mappings={self.num_mappings}, "
            f"posting_lists={len(self._pair_masks)}, "
            f"kernels={self.kernels.name!r})"
        )


def compile_mapping_set(
    mapping_set: MappingSet, kernels: Union[Kernels, str, None] = None
) -> CompiledMappingSet:
    """Functional alias of :meth:`MappingSet.compile` (same memoized artifact)."""
    return mapping_set.compile(kernels)
