"""Incremental mapping-set evolution: deltas instead of cold restarts.

The paper's setting is a dataspace whose uncertain mappings *evolve* as
evidence accrues: a correspondence is confirmed or retracted, probability
mass shifts between candidate mappings, a mapping drops out of the top-h and
another takes its slot.  Before this module, the engine could only react to
such a change by invalidating whole artifacts — a ``configure()`` that
touched probabilities rebuilt matching → mapping set → compiled bitsets from
scratch and retired every cache entry of the generation.  A
:class:`MappingDelta` makes mapping evolution a *cheap* operation instead:

* :func:`apply_mapping_delta` patches a
  :class:`~repro.mapping.mapping_set.MappingSet` structurally — untouched
  :class:`~repro.mapping.mapping.Mapping` objects are shared with the
  predecessor set, only dirty slots get fresh objects — and re-compiles the
  :class:`~repro.engine.compiled.CompiledMappingSet` *incrementally*
  (:meth:`~repro.engine.compiled.CompiledMappingSet.patched`): only the
  posting lists, coverage masks and source partitions of touched
  correspondences are edited, untouched bitmask columns are reused, and the
  probability column is the only full column rebuilt.
* The :class:`DeltaEffect` summarises what changed as three bitmasks — the
  *dirty-mapping mask* (any change), the *structural mask* (correspondence
  changes only) and the *dirty-target mask* (target elements whose posting
  lists changed) — which is exactly what the delta-aware
  :class:`~repro.engine.cache.ResultCache` needs for its retain-on-miss
  check: a cached entry survives the delta when one bitwise AND against each
  mask comes back empty (see :meth:`~repro.engine.cache.ResultCache.retain`).

The session-level entry point is :meth:`Dataspace.apply_delta
<repro.engine.dataspace.Dataspace.apply_delta>` (and
:meth:`QueryService.apply_delta <repro.service.service.QueryService.apply_delta>`
on the serving layer), which swaps the patched set in under the write lock,
bumps the fine-grained ``delta_epoch`` counter *without* bumping the
generation, and records the delta's masks in the result cache so
non-intersecting entries keep serving.  In-flight queries are unaffected:
they evaluate against an immutable :class:`EngineSnapshot` captured before
the swap, so a delta can never tear a running evaluation.

Delta semantics
---------------
A delta must preserve the probability model invariants:

* **reweight** edits move probability mass *within* the reweighted subset —
  the new probabilities of the reweighted mappings must sum to what the old
  ones summed to (±1e-6), so every untouched mapping keeps its exact
  probability and the distribution still sums to one;
* **replace** (top-h membership change) installs a new mapping in an
  existing slot and inherits the slot's probability unless the same delta
  also reweights it;
* **add**/**remove** edit single correspondences of one mapping; added pairs
  must exist in the schema matching, and the per-mapping constraint (each
  source and target element mapped at most once) is re-validated.

Deltas never change ``len(mapping_set)`` — the set stays "the top-h possible
mappings"; membership churn is expressed as replacement.

Typical usage::

    delta = MappingDelta.build(
        reweight={3: 0.25, 9: 0.05},                 # mass-preserving shift
        remove=[(7, (src_id, tgt_id))],              # retract a pair
        replace=[(42, new_pairs, new_score)],        # top-h membership change
    )
    report = ds.apply_delta(delta)
    print(report.format())                           # touched columns, epoch
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping as MappingType, Optional, Tuple, Union

from repro.exceptions import MappingError
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet, mapping_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matching.correspondence import CorrespondenceKey
    from repro.query.resolve import Embedding

__all__ = [
    "MappingDelta",
    "DeltaEffect",
    "DeltaReport",
    "apply_mapping_delta",
    "target_mask_of",
    "embeddings_target_mask",
]

#: One correspondence edit: (mapping_id, (source_id, target_id)).
PairEdit = Tuple[int, "CorrespondenceKey"]

#: Tolerance for the mass-preservation check on reweights.
_MASS_TOLERANCE = 1e-6


def target_mask_of(target_ids: Iterable[int]) -> int:
    """Encode a set of target element ids as a bitmask (bit ``t`` set iff present).

    The dirty-target side of the cache retention check uses the same integer
    bitmask encoding as mapping-id sets — this is :func:`mapping_mask` under
    a name that says what the bits mean here.

    >>> target_mask_of([0, 3])
    9
    """
    return mapping_mask(target_ids)


def embeddings_target_mask(embeddings: Iterable["Embedding"]) -> int:
    """Bitmask of every target element required by any of ``embeddings``.

    This is the query side of the retention check: a cached result can only
    be invalidated by a structural delta whose changed correspondences touch
    one of these target elements.
    """
    mask = 0
    for embedding in embeddings:
        for target_id in embedding.values():
            mask |= 1 << target_id
    return mask


@dataclass(frozen=True)
class MappingDelta:
    """A declarative, validated-on-apply edit of a mapping set.

    Build instances with :meth:`build` (which normalises dicts and lists) or
    directly with tuples.  A delta is immutable and reusable; validation
    against a concrete mapping set happens in :func:`apply_mapping_delta`.

    Parameters
    ----------
    add:
        ``(mapping_id, (source_id, target_id))`` correspondences to insert.
    remove:
        ``(mapping_id, (source_id, target_id))`` correspondences to delete.
    reweight:
        ``(mapping_id, new_probability)`` pairs; must be mass-preserving
        over the reweighted subset (see the module docstring).
    replace:
        ``(mapping_id, correspondences, score)`` top-h membership changes:
        the slot's mapping is replaced wholesale by a new mapping with the
        given correspondence set and score, inheriting the slot's
        probability unless also reweighted.

    >>> delta = MappingDelta.build(reweight={0: 0.5, 1: 0.25})
    >>> sorted(delta.touched_ids())
    [0, 1]
    """

    add: tuple[PairEdit, ...] = ()
    remove: tuple[PairEdit, ...] = ()
    reweight: tuple[tuple[int, float], ...] = ()
    replace: tuple[tuple[int, frozenset, float], ...] = ()

    @classmethod
    def build(
        cls,
        *,
        add: Optional[Iterable[PairEdit]] = None,
        remove: Optional[Iterable[PairEdit]] = None,
        reweight: Optional[Union[MappingType[int, float], Iterable[tuple[int, float]]]] = None,
        replace: Optional[Iterable[tuple[int, Iterable["CorrespondenceKey"], float]]] = None,
    ) -> "MappingDelta":
        """Normalise convenient inputs (dicts, lists, iterables) into a delta.

        >>> MappingDelta.build(remove=[(2, (5, 7))]).remove
        ((2, (5, 7)),)
        """
        if isinstance(reweight, MappingType):
            reweight_items: Iterable[tuple[int, float]] = reweight.items()
        else:
            reweight_items = reweight or ()
        return cls(
            add=tuple((int(mid), (int(key[0]), int(key[1]))) for mid, key in (add or ())),
            remove=tuple((int(mid), (int(key[0]), int(key[1]))) for mid, key in (remove or ())),
            reweight=tuple((int(mid), float(p)) for mid, p in reweight_items),
            replace=tuple(
                (int(mid), frozenset((int(s), int(t)) for s, t in pairs), float(score))
                for mid, pairs, score in (replace or ())
            ),
        )

    def is_empty(self) -> bool:
        """``True`` when the delta contains no edits at all."""
        return not (self.add or self.remove or self.reweight or self.replace)

    def to_payload(self) -> dict:
        """JSON-serialisable form of the delta (see :meth:`from_payload`).

        Edits are sorted so equal deltas always serialize to equal canonical
        bytes — the property the persistent store's content addressing
        relies on when an overlay-staged delta is compared against a
        directly applied one.
        """
        return {
            "add": sorted([mid, [s, t]] for mid, (s, t) in self.add),
            "remove": sorted([mid, [s, t]] for mid, (s, t) in self.remove),
            "reweight": sorted([mid, p] for mid, p in self.reweight),
            "replace": sorted(
                [mid, sorted([s, t] for s, t in pairs), score]
                for mid, pairs, score in self.replace
            ),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MappingDelta":
        """Rebuild a delta from :meth:`to_payload` output."""
        return cls.build(
            add=[(mid, (s, t)) for mid, (s, t) in payload.get("add", ())],
            remove=[(mid, (s, t)) for mid, (s, t) in payload.get("remove", ())],
            reweight=[(mid, p) for mid, p in payload.get("reweight", ())],
            replace=[
                (mid, [(s, t) for s, t in pairs], score)
                for mid, pairs, score in payload.get("replace", ())
            ],
        )

    def touched_ids(self) -> frozenset[int]:
        """Ids of every mapping the delta touches in any way."""
        return frozenset(
            [mid for mid, _ in self.add]
            + [mid for mid, _ in self.remove]
            + [mid for mid, _ in self.reweight]
            + [mid for mid, _, _ in self.replace]
        )

    def structural_ids(self) -> frozenset[int]:
        """Ids of the mappings whose *correspondences* change (not just probability)."""
        return frozenset(
            [mid for mid, _ in self.add]
            + [mid for mid, _ in self.remove]
            + [mid for mid, _, _ in self.replace]
        )


@dataclass(frozen=True)
class DeltaEffect:
    """Bitmask summary of one applied delta — the cache-retention currency.

    ``dirty_mask`` flags every touched mapping, ``structural_mask`` the
    mappings whose correspondences changed, ``probability_mask`` the
    mappings whose probability *value* actually changed, and
    ``dirty_target_mask`` the target elements whose posting lists were
    edited.

    The retention check (:meth:`repro.engine.cache.ResultCache.retain`)
    needs only ``probability_mask`` and ``dirty_target_mask``: a structural
    edit can influence a query result *only through the edited target
    elements* — coverage, relevance and rewrites at every other target are
    byte-identical — so structural dirt is fully covered by the target
    check, while probability dirt propagates through any relevant mapping
    and is checked against the entry's mapping mask.
    """

    dirty_mask: int
    structural_mask: int
    probability_mask: int
    dirty_target_mask: int
    dirty_targets: frozenset[int]
    posting_lists_touched: int
    posting_lists_total: int
    compiled_incrementally: bool


@dataclass(frozen=True)
class DeltaReport:
    """The account :meth:`Dataspace.apply_delta` returns to the caller.

    Carries the new ``delta_epoch``, the touched/reused column counts of the
    incremental recompilation, and the wall-clock cost of the whole apply.
    When the session has an attached store, ``persist_failed`` /
    ``persist_error`` report whether the best-effort write-through of the
    patched artifacts succeeded — the delta itself is applied either way,
    but a failed write-through means a restart would reopen at the previous
    epoch.

    >>> # report = ds.apply_delta(delta); report.delta_epoch, report.touched_mappings
    """

    delta_epoch: int
    generation: int
    num_mappings: int
    touched_mappings: int
    structural_mappings: int
    reweighted_mappings: int
    replaced_mappings: int
    touched_targets: int
    posting_lists_touched: int
    posting_lists_total: int
    compiled_incrementally: bool
    elapsed_ms: float
    persist_failed: bool = False
    persist_error: Optional[str] = None

    @property
    def posting_lists_reused(self) -> int:
        """Posting lists carried over unedited from the predecessor artifact."""
        return max(0, self.posting_lists_total - self.posting_lists_touched)

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report."""
        return {
            "delta_epoch": self.delta_epoch,
            "generation": self.generation,
            "num_mappings": self.num_mappings,
            "touched_mappings": self.touched_mappings,
            "structural_mappings": self.structural_mappings,
            "reweighted_mappings": self.reweighted_mappings,
            "replaced_mappings": self.replaced_mappings,
            "touched_targets": self.touched_targets,
            "posting_lists_touched": self.posting_lists_touched,
            "posting_lists_total": self.posting_lists_total,
            "posting_lists_reused": self.posting_lists_reused,
            "compiled_incrementally": self.compiled_incrementally,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "persist_failed": self.persist_failed,
            "persist_error": self.persist_error,
        }

    def format(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        how = "incrementally" if self.compiled_incrementally else "from scratch (lazy)"
        return "\n".join(
            [
                f"delta:      epoch {self.delta_epoch} (generation {self.generation})",
                f"touched:    {self.touched_mappings}/{self.num_mappings} mappings "
                f"(structural={self.structural_mappings} "
                f"reweighted={self.reweighted_mappings} "
                f"replaced={self.replaced_mappings})",
                f"compiled:   {how}; "
                f"{self.posting_lists_touched} posting lists touched, "
                f"{self.posting_lists_reused} reused, "
                f"{self.touched_targets} target columns rebuilt",
                f"elapsed:    {self.elapsed_ms:.2f} ms",
            ]
            + (
                [f"persist:    FAILED ({self.persist_error})"]
                if self.persist_failed
                else []
            )
        )


def _check_slot(mapping_set: MappingSet, mapping_id: int, kind: str) -> None:
    if not 0 <= mapping_id < len(mapping_set):
        raise MappingError(
            f"delta {kind} targets mapping {mapping_id}, but the set holds "
            f"mappings 0..{len(mapping_set) - 1}"
        )


def apply_mapping_delta(
    mapping_set: MappingSet, delta: MappingDelta
) -> tuple[MappingSet, DeltaEffect]:
    """Apply ``delta`` to ``mapping_set``; return the patched set and its effect.

    The returned set shares every untouched :class:`Mapping` object with the
    input (structure sharing) and — when the input set was already compiled —
    carries an incrementally patched
    :class:`~repro.engine.compiled.CompiledMappingSet` whose untouched
    bitmask columns are reused.  The input set is never mutated, so
    in-flight snapshots holding it stay consistent.

    Raises
    ------
    MappingError
        On out-of-range mapping ids, duplicate/conflicting edits, pairs
        absent from the matching, mass-violating reweights, or any edit that
        breaks the per-mapping one-source/one-target constraint.

    >>> # patched, effect = apply_mapping_delta(ms, MappingDelta.build(...))
    """
    matching = mapping_set.matching
    old_mappings = list(mapping_set)

    replaced: dict[int, tuple[frozenset, float]] = {}
    for mapping_id, pairs, score in delta.replace:
        _check_slot(mapping_set, mapping_id, "replace")
        if mapping_id in replaced:
            raise MappingError(f"delta replaces mapping {mapping_id} twice")
        for source_id, target_id in pairs:
            if matching.get(source_id, target_id) is None:
                raise MappingError(
                    f"replacement for mapping {mapping_id} uses pair "
                    f"({source_id}, {target_id}) which is not a correspondence of "
                    f"matching {matching.name!r}"
                )
        replaced[mapping_id] = (pairs, score)

    pair_edits: dict[int, set] = {}
    score_shift: dict[int, float] = {}
    for mapping_id, key in delta.add:
        _check_slot(mapping_set, mapping_id, "add")
        if mapping_id in replaced:
            raise MappingError(
                f"delta both replaces mapping {mapping_id} and edits its pairs"
            )
        correspondence = matching.get(*key)
        if correspondence is None:
            raise MappingError(
                f"cannot add pair {key} to mapping {mapping_id}: not a "
                f"correspondence of matching {matching.name!r}"
            )
        pairs = pair_edits.setdefault(mapping_id, set(old_mappings[mapping_id].correspondences))
        if key in pairs:
            raise MappingError(f"mapping {mapping_id} already contains pair {key}")
        pairs.add(key)
        score_shift[mapping_id] = score_shift.get(mapping_id, 0.0) + correspondence.score
    for mapping_id, key in delta.remove:
        _check_slot(mapping_set, mapping_id, "remove")
        if mapping_id in replaced:
            raise MappingError(
                f"delta both replaces mapping {mapping_id} and edits its pairs"
            )
        pairs = pair_edits.setdefault(mapping_id, set(old_mappings[mapping_id].correspondences))
        if key not in pairs:
            raise MappingError(f"mapping {mapping_id} does not contain pair {key}")
        pairs.remove(key)
        correspondence = matching.get(*key)
        score_shift[mapping_id] = score_shift.get(mapping_id, 0.0) - (
            correspondence.score if correspondence is not None else 0.0
        )

    reweights: dict[int, float] = {}
    for mapping_id, probability in delta.reweight:
        _check_slot(mapping_set, mapping_id, "reweight")
        if mapping_id in reweights:
            raise MappingError(f"delta reweights mapping {mapping_id} twice")
        if not 0.0 <= probability <= 1.0 + 1e-9:
            raise MappingError(
                f"reweighted probability for mapping {mapping_id} must be in "
                f"[0, 1], got {probability!r}"
            )
        reweights[mapping_id] = probability
    if reweights:
        old_mass = sum(old_mappings[mid].probability for mid in reweights)
        new_mass = sum(reweights.values())
        if abs(old_mass - new_mass) > _MASS_TOLERANCE:
            raise MappingError(
                "reweight must preserve probability mass within the reweighted "
                f"subset: old mass {old_mass:.6f}, new mass {new_mass:.6f}"
            )

    dirty_ids = sorted(set(replaced) | set(pair_edits) | set(reweights))
    structural_ids = sorted(set(replaced) | set(pair_edits))

    # Build the patched mapping objects; untouched slots share the old object.
    new_mappings = list(old_mappings)
    changed_pairs: dict[int, tuple[frozenset, frozenset]] = {}
    probability_ids: list[int] = []
    for mapping_id in dirty_ids:
        old = old_mappings[mapping_id]
        if mapping_id in replaced:
            new_pairs, score = replaced[mapping_id]
        elif mapping_id in pair_edits:
            new_pairs = frozenset(pair_edits[mapping_id])
            score = max(0.0, old.score + score_shift.get(mapping_id, 0.0))
        else:
            new_pairs, score = old.correspondences, old.score
        probability = reweights.get(mapping_id, old.probability)
        # Mapping.__post_init__ re-validates the one-source/one-target rule.
        new_mappings[mapping_id] = Mapping(
            mapping_id=mapping_id,
            correspondences=new_pairs,
            score=score,
            probability=probability,
        )
        if new_pairs != old.correspondences:
            changed_pairs[mapping_id] = (old.correspondences, new_pairs)
        if probability != old.probability:
            probability_ids.append(mapping_id)

    total = sum(mapping.probability for mapping in new_mappings)
    if abs(total - 1.0) > _MASS_TOLERANCE:
        raise MappingError(
            f"delta left probabilities summing to {total:.6f}; they must sum to 1"
        )

    dirty_targets = set()
    edited_pairs = set()
    for old_pairs, new_pairs in changed_pairs.values():
        for pair in old_pairs ^ new_pairs:
            edited_pairs.add(pair)
            dirty_targets.add(pair[1])

    compiled = None
    if mapping_set.is_compiled:
        from repro.engine.compiled import CompiledMappingSet

        old_compiled = mapping_set.compile()
        patched_set = MappingSet._patched(matching, new_mappings)
        compiled = CompiledMappingSet.patched(old_compiled, patched_set, changed_pairs)
        patched_set._compiled = compiled
        posting_total = len(compiled._pair_masks)
    else:
        patched_set = MappingSet._patched(matching, new_mappings)
        posting_total = 0

    effect = DeltaEffect(
        dirty_mask=mapping_mask(dirty_ids),
        structural_mask=mapping_mask(structural_ids),
        probability_mask=mapping_mask(probability_ids),
        dirty_target_mask=target_mask_of(dirty_targets),
        dirty_targets=frozenset(dirty_targets),
        posting_lists_touched=len(edited_pairs),
        posting_lists_total=posting_total,
        compiled_incrementally=compiled is not None,
    )
    return patched_set, effect
