"""The :class:`Dataspace` engine facade — a stateful session over one schema pair.

The paper's system is meant to live inside a dataspace: the uncertain schema
matching is derived once, its top-h possible mappings and block tree are kept
cached, and probabilistic twig queries are answered continuously against that
representation.  :class:`Dataspace` is that session object.  It owns the
pipeline artifacts (matching → mapping set → block tree → source document),
builds each lazily on first use, memoizes it, and invalidates exactly the
affected suffix of the pipeline when configuration changes:

========================  =============================================
change                    invalidates
========================  =============================================
``matcher_config``        matching, mapping set, block tree (generation bump)
``h`` / ``method``        mapping set, block tree (generation bump)
``tau`` / block budgets   block tree only
``apply_delta(...)``      nothing wholesale — delta-epoch bump only
``apply_delta_batch(…)``  same — one epoch bump for the whole batch
========================  =============================================

Mapping evolution does **not** go through invalidation at all:
:meth:`Dataspace.apply_delta` patches the mapping set structurally, reuses
the untouched columns of the compiled artifact, and bumps only the
fine-grained ``delta_epoch`` counter — cached results whose inputs the delta
provably did not touch keep serving (see :mod:`repro.engine.delta`).

The *generation* counter is what prepared queries key their cached filter
step on, so a reconfigured session transparently refreshes exactly the work
that went stale.  The compiled bitset view of the mapping set
(:mod:`repro.engine.compiled`, the default plan's substrate) is memoized on
the mapping set itself, so whatever invalidates the mapping set retires the
compiled artifact with it.

Concurrency
-----------
A session is safe to share between threads.  All session state sits behind a
writer-preferring :class:`~repro.engine.locking.ReadWriteLock`: any number of
reader threads snapshot and query concurrently, while ``configure()`` /
``invalidate()`` / ``set_document()`` take the write side.  Query execution
never evaluates under the lock — it grabs an immutable
:class:`EngineSnapshot` (generation + artifacts, captured atomically) and
works off that, so a mid-flight reconfiguration can never produce a torn
read: every result is computed entirely against one generation's artifacts.

Two bounded LRU caches ride on the session (see
:class:`~repro.engine.cache.ResultCache`):

* the **result cache** memoizes evaluated :class:`PTQResult` objects under
  ``(query, plan, k, tau, generation, document version)`` — stale entries
  are unreachable by construction, never served;
* the **filter cache** shares the ``filter_mappings`` prefix across queries
  whose embeddings require the same target-element sets (the cross-query
  extension of the paper's amortisation argument for Algorithm 4).

Typical usage::

    ds = Dataspace.from_dataset("D7", h=100)
    result = ds.query("Order/DeliverTo/Contact/EMail").top_k(10).execute()
    report = ds.query("Q7").explain()          # which plan ran, and why
    results = ds.query_batch(["Q1", "Q2", "Q3"], max_workers=4)
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, NamedTuple, Optional, Tuple, Union

from repro.core.blocktree import BlockTree, BlockTreeConfig, build_block_tree
from repro.document.document import XMLDocument
from repro.document.generator import generate_document
from repro.engine.cache import CacheKey, ResultCache
from repro.engine.delta import DeltaReport, MappingDelta
from repro.engine.kernels import Kernels, resolve_kernels
from repro.engine.locking import ReadWriteLock
from repro.engine.planner import PlanDecision, QueryPlanner, canonical_text
from repro.engine.plans import QueryPlan, available_plans, plan_for
from repro.engine.prepared import PlanSpec, PreparedQuery, QueryBuilder
from repro.engine.streaming import (
    DeltaBatch,
    DeltaBatchReport,
    Subscription,
    SubscriptionRegistry,
    SubscriptionUpdate,
    apply_delta_batch,
)
from repro.exceptions import (
    DataspaceError,
    PersistFailedWarning,
    StoreError,
    StoreFallbackWarning,
)
from repro.mapping.generator import GenerationMethod, generate_top_h_mappings
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matcher import MatcherConfig, SchemaMatcher
from repro.matching.matching import SchemaMatching
from repro.query.parser import parse_twig
from repro.query.ptq import filter_mappings
from repro.query.resolve import Embedding
from repro.query.results import PTQAnswer, PTQResult
from repro.query.twig import TwigQuery
from repro.schema.schema import Schema
from repro.store.artifacts import ArtifactStore, SessionBundle, partition_from_layout, partition_layout
from repro.workloads.datasets import DATASET_SPECS, build_mapping_set, load_dataset, load_source_document
from repro.workloads.queries import QUERY_ALIASES, QUERY_STRINGS, load_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor

    from repro.engine.compiled import CompiledMappingSet

__all__ = ["Dataspace", "EngineSnapshot"]

_UNSET = object()

#: Bound on cached PreparedQuery objects per session: a long-lived serving
#: session receiving ad-hoc query texts must not grow without limit.  An
#: evicted query is simply re-prepared (and re-resolves) on next use.
_PREPARED_CACHE_CAPACITY = 512


class _FilterKey(NamedTuple):
    """Filter-cache key: the shared ``filter_mappings`` prefix of one epoch.

    A :class:`~typing.NamedTuple` with a ``delta_epoch`` field (like
    :class:`~repro.engine.cache.CacheKey`) so
    :meth:`~repro.engine.cache.ResultCache.retain` can probe earlier epochs
    of the same signature and promote a surviving prefix instead of
    recomputing it — closing the per-epoch filter recompute.
    """

    generation: int
    signature: frozenset
    delta_epoch: int


@dataclass(frozen=True)
class EngineSnapshot:
    """An immutable, consistent view of one session generation.

    Captured atomically under the session lock; query execution works
    entirely off a snapshot, so concurrent reconfiguration cannot interleave
    with an in-flight evaluation.  ``block_tree`` is ``None`` when the
    snapshot was taken with ``need_tree=False`` and the tree was not already
    built.
    """

    generation: int
    document_version: int
    delta_epoch: int
    tau: float
    mapping_set: MappingSet
    document: XMLDocument
    block_tree: Optional[BlockTree]


class Dataspace:
    """A stateful, thread-safe engine session over one source/target schema pair.

    Construct directly from two schemas, or with :meth:`from_dataset` (one of
    the paper's Table II datasets), :meth:`from_matching` (a pre-computed
    schema matching) or :meth:`from_mapping_set` (a pre-computed mapping
    set).  See the module docstring for the caching/invalidation contract and
    the concurrency guarantees.

    Parameters
    ----------
    source_schema, target_schema:
        The schema pair the session manages.
    h:
        Size of the possible-mapping set (the paper's default is 100).
    method:
        Mapping-generation method, ``"partition"`` or ``"murty"``.
    matcher_config:
        Optional :class:`MatcherConfig` override; when ``None`` the session
        uses the dataset's configured matcher (dataset sessions) or the
        default matcher.
    tau, max_blocks, max_failures:
        Block-tree construction parameters (Definition 2 / Algorithm 2).
    document:
        Optional source document; when omitted, dataset sessions load the
        workload document and schema-pair sessions generate one from the
        source schema on first use.
    document_nodes:
        Approximate node budget for a generated document.
    seed:
        Base seed for matcher noise and document generation.
    name:
        Session name; defaults to ``"<source>-><target>"``.
    cache_size:
        Capacity of the session's result cache (``0`` disables caching).
    kernels:
        Kernel backend the compiled bitset core runs on: a
        :class:`~repro.engine.kernels.Kernels` instance, a backend name
        (``"python"`` / ``"numpy"``), or ``None`` for the process default
        (the ``REPRO_KERNELS`` environment variable, else ``numpy`` when
        importable, else ``python``).  The backend never changes answers —
        only how the hot loops execute.
    """

    def __init__(
        self,
        source_schema: Schema,
        target_schema: Schema,
        *,
        h: int = 100,
        method: Union[str, GenerationMethod] = GenerationMethod.PARTITION,
        matcher_config: Optional[MatcherConfig] = None,
        tau: float = 0.2,
        max_blocks: int = 500,
        max_failures: int = 500,
        document: Optional[XMLDocument] = None,
        document_nodes: Optional[int] = None,
        seed: Optional[int] = None,
        name: Optional[str] = None,
        cache_size: int = 128,
        kernels: Union[str, Kernels, None] = None,
    ) -> None:
        if h < 1:
            raise DataspaceError(f"h must be at least 1, got {h}")
        self.source_schema = source_schema
        self.target_schema = target_schema
        self.name = name or f"{source_schema.name}->{target_schema.name}"
        self._h = h
        self._method = GenerationMethod(method).value
        self._matcher_config = matcher_config
        # Validate the block-tree parameters eagerly, not on first build.
        BlockTreeConfig(tau=tau, max_blocks=max_blocks, max_failures=max_failures)
        self._tau = tau
        self._max_blocks = max_blocks
        self._max_failures = max_failures
        self._seed = seed
        self._kernels = resolve_kernels(kernels)
        self._dataset_id: Optional[str] = None
        if document is not None:
            self._check_document(document)
        self._document = document
        self._document_nodes = document_nodes
        self._matching: Optional[SchemaMatching] = None
        self._mapping_set: Optional[MappingSet] = None
        self._block_tree: Optional[BlockTree] = None
        self._pinned_matching = False
        self._pinned_mapping_set = False
        self._generation = 0
        self._document_version = 0
        self._delta_epoch = 0
        self._prepared: ResultCache = ResultCache(_PREPARED_CACHE_CAPACITY)
        # Caller-supplied twigs get a session-unique key from a monotonic
        # counter, remembered per live twig object: unlike a raw id(), a key
        # can never be reissued to a different twig after garbage collection,
        # so cached results can never alias across twig objects.
        self._twig_keys: "weakref.WeakKeyDictionary[TwigQuery, str]" = (
            weakref.WeakKeyDictionary()
        )
        self._twig_key_counter = itertools.count()
        self._twig_key_lock = threading.Lock()
        self._lock = ReadWriteLock()
        self._result_cache = ResultCache(cache_size)
        # cache_size=0 disables *all* caching, including filter sharing.
        self._filter_cache = ResultCache(0 if cache_size == 0 else 64)
        self._cache_size = cache_size
        # Persistence state: the attached artifact store (None until a store
        # is attached via from_dataset(store=...) / from_store / persist),
        # the ref the session persists under, per-artifact provenance
        # ("built" with build time vs "loaded" with deserialization time),
        # and remembered shard-partition layouts keyed by shard count.
        self._store: Optional[ArtifactStore] = None
        self._store_ref: Optional[str] = None
        self._provenance: dict[str, dict] = {}
        self._layout_lock = threading.Lock()
        self._partition_layouts: dict[int, tuple[int, dict]] = {}
        # Delta write-through failures (see apply_delta): persistence stays
        # best-effort, but every failure is counted and the first one warns.
        self._persist_failures = 0
        self._persist_failure_warned = False
        # The cost-based planner: per-query statistics, the cost model and
        # its bounded decision cache.  Scatter corpora the planner routes
        # through are memoized per shard count (they hold thread pools).
        self._planner = QueryPlanner()
        self._scatter_lock = threading.Lock()
        self._scatter_corpora: dict[int, object] = {}
        # Standing queries: registered once, notified incrementally from the
        # dirty masks of every committed delta batch (see engine.streaming).
        self._subscriptions = SubscriptionRegistry(self)

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataset(
        cls,
        dataset_id: str,
        *,
        h: int = 100,
        method: Union[str, GenerationMethod] = GenerationMethod.PARTITION,
        tau: float = 0.2,
        max_blocks: int = 500,
        max_failures: int = 500,
        document: Optional[XMLDocument] = None,
        seed: Optional[int] = None,
        cache_size: int = 128,
        store=None,
        matching: Optional[SchemaMatching] = None,
        kernels: Union[str, Kernels, None] = None,
    ) -> "Dataspace":
        """Open a session on one of the paper's Table II datasets (``"D1"``…``"D10"``).

        Dataset sessions share the workload layer's caches (matching, mapping
        set, source document), accept query ids (``"Q1"``…``"Q10"``) and
        expand the paper's label abbreviations (``UP``, ``BPID``, …) when
        parsing query strings.

        ``store`` attaches a persistent artifact store (a
        :class:`~repro.store.BlockStore` or
        :class:`~repro.store.ArtifactStore`): when it holds a session
        persisted under the same ``(dataset, h, method, seed)``
        configuration, the matching, mapping set, compiled columns and
        document are *loaded* instead of derived — skipping the matcher run
        entirely — and any corruption or configuration mismatch degrades to
        the normal cold build.  On a miss the store stays attached, so a
        later :meth:`persist` (and every :meth:`apply_delta` write-through)
        targets it.  ``matching`` supplies a pre-computed schema matching,
        short-circuiting the eager dataset load the same way.
        """
        key = dataset_id.strip().upper()
        if store is not None and document is None and key in DATASET_SPECS:
            session = cls._from_dataset_store(
                store,
                key,
                h=h,
                method=method,
                tau=tau,
                max_blocks=max_blocks,
                max_failures=max_failures,
                seed=seed,
                cache_size=cache_size,
                kernels=kernels,
            )
            if session is not None:
                return session
        if matching is not None:
            session = cls(
                matching.source,
                matching.target,
                h=h,
                method=method,
                tau=tau,
                max_blocks=max_blocks,
                max_failures=max_failures,
                document=document,
                seed=seed,
                name=key,
                cache_size=cache_size,
                kernels=kernels,
            )
            session._dataset_id = key
            session._matching = matching
        else:
            started = time.perf_counter()
            dataset = load_dataset(dataset_id, seed=seed)
            elapsed = (time.perf_counter() - started) * 1000.0
            session = cls(
                dataset.source_schema,
                dataset.target_schema,
                h=h,
                method=method,
                tau=tau,
                max_blocks=max_blocks,
                max_failures=max_failures,
                document=document,
                seed=seed,
                name=dataset.dataset_id,
                cache_size=cache_size,
                kernels=kernels,
            )
            session._dataset_id = dataset.dataset_id
            session._matching = dataset.matching
            session._provenance["matching"] = {"source": "built", "ms": round(elapsed, 3)}
        if store is not None:
            session._store = ArtifactStore.wrap(store)
            session._store_ref = cls._dataset_ref(key, h=h, method=method, seed=seed)
        return session

    @staticmethod
    def _dataset_ref(
        dataset_id: str, *, h: int, method: Union[str, GenerationMethod], seed: Optional[int]
    ) -> str:
        """The store ref a dataset session persists under (config-qualified)."""
        normalized = GenerationMethod(method).value
        return f"dataspace/{dataset_id}?h={h}&method={normalized}&seed={seed}"

    @classmethod
    def _from_dataset_store(
        cls,
        store,
        dataset_id: str,
        *,
        h: int,
        method: Union[str, GenerationMethod],
        tau: float,
        max_blocks: int,
        max_failures: int,
        seed: Optional[int],
        cache_size: int,
        kernels: Union[str, Kernels, None] = None,
    ) -> Optional["Dataspace"]:
        """Try reopening a dataset session from ``store``; ``None`` on a miss.

        An absent ref or a configuration mismatch (stale signature) is a
        silent miss — that is the normal cold-start path.  A *corrupted*
        store — checksum failure, truncated or malformed payload, i.e. any
        :class:`StoreError` raised mid-load — also degrades to the cold
        build, but emits a :class:`~repro.exceptions.StoreFallbackWarning`
        naming the ref and the
        failure so operators can see their persisted artifacts are being
        ignored rather than served.  Any other exception type is a bug, not
        a store miss, and propagates.
        """
        ref = cls._dataset_ref(dataset_id, h=h, method=method, seed=seed)
        try:
            artifact_store = ArtifactStore.wrap(store)
            bundle = artifact_store.load_session(
                ref,
                expect={
                    "dataset_id": dataset_id,
                    "h": h,
                    "method": GenerationMethod(method).value,
                    "seed": seed,
                },
            )
        except StoreError as exc:
            warnings.warn(
                f"artifact store failed loading session {ref!r} "
                f"({exc}); falling back to a cold build",
                StoreFallbackWarning,
                stacklevel=3,
            )
            return None
        if bundle is None:
            return None
        session = cls(
            bundle.source_schema,
            bundle.target_schema,
            h=h,
            method=method,
            tau=tau,
            max_blocks=max_blocks,
            max_failures=max_failures,
            document=bundle.document,
            seed=seed,
            name=dataset_id,
            cache_size=cache_size,
            kernels=kernels,
        )
        session._dataset_id = dataset_id
        session._adopt_bundle(artifact_store, bundle)
        return session

    @classmethod
    def from_store(
        cls, store, ref: str, *, kernels: Union[str, Kernels, None] = None
    ) -> "Dataspace":
        """Reopen a session persisted under ``ref`` — whatever its pedigree.

        Unlike the ``store=`` fast path of :meth:`from_dataset` (which falls
        back to a cold build), this constructor has nothing to fall back to,
        so a missing ref or corrupt artifact raises :class:`StoreError`.
        The persisted configuration (``h``, ``method``, ``tau``, block-tree
        budgets, pinned-artifact flags) is restored verbatim.  ``kernels``
        selects the reopened session's kernel backend; stored columns are
        backend-neutral, so a session persisted under one backend reopens
        under any other with byte-identical answers.
        """
        artifact_store = ArtifactStore.wrap(store)
        bundle = artifact_store.load_session(ref)
        if bundle is None:
            raise StoreError(f"no session persisted under ref {ref!r}")
        config = bundle.config
        session = cls(
            bundle.source_schema,
            bundle.target_schema,
            h=int(config.get("h", 100)),
            method=config.get("method", GenerationMethod.PARTITION),
            tau=float(config.get("tau", 0.2)),
            max_blocks=int(config.get("max_blocks", 500)),
            max_failures=int(config.get("max_failures", 500)),
            document=bundle.document,
            seed=config.get("seed"),
            name=config.get("name"),
            cache_size=int(config.get("cache_size", 128)),
            kernels=kernels,
        )
        session._dataset_id = config.get("dataset_id")
        session._pinned_matching = bool(config.get("pinned_matching"))
        session._pinned_mapping_set = bool(config.get("pinned_mapping_set"))
        session._adopt_bundle(artifact_store, bundle)
        return session

    def _adopt_bundle(self, store: ArtifactStore, bundle: SessionBundle) -> None:
        """Install a loaded :class:`~repro.store.SessionBundle` into this session."""
        signature = bundle.signature
        self._matching = bundle.matching
        self._mapping_set = bundle.mapping_set
        self._generation = int(signature.get("generation", 0))
        self._document_version = int(signature.get("document_version", 0))
        self._delta_epoch = int(signature.get("delta_epoch", 0))
        self._provenance = {
            name: {"source": "loaded", "ms": round(ms, 3)}
            for name, ms in bundle.load_ms.items()
        }
        self._store = store
        self._store_ref = bundle.ref
        for num_shards, layout in bundle.partitions.items():
            self._partition_layouts[num_shards] = (self._document_version, layout)
        self._restore_results(bundle.results)
        # Planner statistics persist alongside the artifacts: a reopened
        # session starts serving with its learned plan choices intact.
        self._planner.adopt_payload(bundle.statistics)

    def _restore_results(self, rows: list[dict]) -> None:
        """Repopulate the result cache from persisted entries (best effort)."""
        for row in rows:
            try:
                key_fields = row["key"]
                twig = self._as_twig(key_fields["query"])
                answers = [
                    PTQAnswer(
                        mapping_id=mapping_id,
                        probability=probability,
                        matches=frozenset(
                            tuple((q, n) for q, n in match) for match in matches
                        ),
                    )
                    for mapping_id, probability, matches in row["answers"]
                ]
                key = CacheKey(
                    query=canonical_text(twig),
                    plan=key_fields["plan"],
                    k=key_fields["k"],
                    tau=key_fields["tau"],
                    generation=self._generation,
                    document_version=self._document_version,
                    delta_epoch=self._delta_epoch,
                )
                self._result_cache.put(
                    key, PTQResult(twig, answers, document=self._document)
                )
            except Exception:
                # One malformed entry never poisons the reopen: the result
                # is simply recomputed on first use.
                continue

    @classmethod
    def from_matching(
        cls,
        matching: SchemaMatching,
        *,
        h: int = 100,
        method: Union[str, GenerationMethod] = GenerationMethod.PARTITION,
        tau: float = 0.2,
        max_blocks: int = 500,
        max_failures: int = 500,
        document: Optional[XMLDocument] = None,
        document_nodes: Optional[int] = None,
        seed: Optional[int] = None,
        name: Optional[str] = None,
        cache_size: int = 128,
        kernels: Union[str, Kernels, None] = None,
    ) -> "Dataspace":
        """Open a session over a pre-computed schema matching.

        The matching is pinned: reconfiguring ``matcher_config`` on such a
        session raises :class:`DataspaceError` because the session cannot
        rebuild what it did not derive.
        """
        session = cls(
            matching.source,
            matching.target,
            h=h,
            method=method,
            tau=tau,
            max_blocks=max_blocks,
            max_failures=max_failures,
            document=document,
            document_nodes=document_nodes,
            seed=seed,
            name=name or matching.name,
            cache_size=cache_size,
            kernels=kernels,
        )
        session._matching = matching
        session._pinned_matching = True
        return session

    @classmethod
    def from_mapping_set(
        cls,
        mapping_set: MappingSet,
        *,
        tau: float = 0.2,
        max_blocks: int = 500,
        max_failures: int = 500,
        document: Optional[XMLDocument] = None,
        document_nodes: Optional[int] = None,
        name: Optional[str] = None,
        cache_size: int = 128,
        kernels: Union[str, Kernels, None] = None,
    ) -> "Dataspace":
        """Open a session over a pre-computed mapping set.

        Both the matching and the mapping set are pinned; ``h``, ``method``
        and ``matcher_config`` cannot be reconfigured on such a session.
        """
        session = cls.from_matching(
            mapping_set.matching,
            h=len(mapping_set),
            tau=tau,
            max_blocks=max_blocks,
            max_failures=max_failures,
            document=document,
            document_nodes=document_nodes,
            name=name,
            cache_size=cache_size,
            kernels=kernels,
        )
        session._mapping_set = mapping_set
        session._pinned_mapping_set = True
        return session

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def h(self) -> int:
        """Size of the possible-mapping set."""
        return self._h

    @property
    def method(self) -> str:
        """Mapping-generation method (``"partition"`` or ``"murty"``)."""
        return self._method

    @property
    def tau(self) -> float:
        """Block-tree confidence threshold τ."""
        return self._tau

    @property
    def matcher_config(self) -> Optional[MatcherConfig]:
        """Matcher override, or ``None`` for the session default."""
        return self._matcher_config

    @property
    def kernels(self) -> Kernels:
        """The kernel backend the session's compiled core runs on.

        Fixed at construction (``Dataspace(kernels=...)``); the default is
        resolved once per process from ``REPRO_KERNELS`` / numpy
        availability — see :func:`repro.engine.kernels.resolve_kernels`.
        """
        return self._kernels

    @property
    def dataset_id(self) -> Optional[str]:
        """Table II dataset id for dataset sessions, else ``None``."""
        return self._dataset_id

    @property
    def generation(self) -> int:
        """Mapping-set generation; bumped whenever the mapping set is invalidated."""
        with self._lock.read_locked():
            return self._generation

    @property
    def document_version(self) -> int:
        """Source-document version; bumped by :meth:`set_document`."""
        with self._lock.read_locked():
            return self._document_version

    @property
    def delta_epoch(self) -> int:
        """Fine-grained delta counter; bumped by :meth:`apply_delta`.

        Monotonic for the session's lifetime (it does *not* reset when the
        generation bumps), so a ``(generation, delta_epoch)`` pair uniquely
        identifies one mapping-set state of the session.
        """
        with self._lock.read_locked():
            return self._delta_epoch

    def configure(
        self,
        *,
        h: Optional[int] = None,
        method: Optional[Union[str, GenerationMethod]] = None,
        matcher_config=_UNSET,
        tau: Optional[float] = None,
        max_blocks: Optional[int] = None,
        max_failures: Optional[int] = None,
    ) -> "Dataspace":
        """Reconfigure the session, invalidating only the affected artifacts.

        Returns ``self`` so calls chain fluently.  See the module docstring
        for the invalidation table.  Safe to call while other threads are
        querying: the whole reconfiguration happens under the write lock, so
        readers observe either the old or the new generation, never a mix.

        Raises
        ------
        DataspaceError
            When changing a parameter that a pinned artifact depends on
            (e.g. ``h`` on a session built with :meth:`from_mapping_set`).
        """
        with self._lock.write_locked():
            if matcher_config is not _UNSET and matcher_config != self._matcher_config:
                if self._pinned_matching:
                    raise DataspaceError(
                        "cannot change matcher_config: this session was built from a "
                        "pre-computed matching or mapping set"
                    )
                self._matcher_config = matcher_config
                self._invalidate_matching()
            if h is not None and h != self._h:
                if h < 1:
                    raise DataspaceError(f"h must be at least 1, got {h}")
                self._require_unpinned_mapping_set("h")
                self._h = h
                self._invalidate_mappings()
            if method is not None:
                normalized = GenerationMethod(method).value
                if normalized != self._method:
                    self._require_unpinned_mapping_set("method")
                    self._method = normalized
                    self._invalidate_mappings()
            tree_params_changed = False
            new_tau = self._tau if tau is None else tau
            new_max_blocks = self._max_blocks if max_blocks is None else max_blocks
            new_max_failures = self._max_failures if max_failures is None else max_failures
            if (new_tau, new_max_blocks, new_max_failures) != (
                self._tau,
                self._max_blocks,
                self._max_failures,
            ):
                BlockTreeConfig(
                    tau=new_tau, max_blocks=new_max_blocks, max_failures=new_max_failures
                )
                self._tau, self._max_blocks, self._max_failures = (
                    new_tau,
                    new_max_blocks,
                    new_max_failures,
                )
                tree_params_changed = True
            if tree_params_changed:
                self._block_tree = None
        return self

    def _require_unpinned_mapping_set(self, parameter: str) -> None:
        if self._pinned_mapping_set:
            raise DataspaceError(
                f"cannot change {parameter}: this session was built from a "
                "pre-computed mapping set"
            )

    def _invalidate_matching(self) -> None:
        self._matching = None
        self._invalidate_mappings()

    def _invalidate_mappings(self) -> None:
        self._mapping_set = None
        self._block_tree = None
        self._generation += 1

    def invalidate(self) -> "Dataspace":
        """Drop every rebuildable cached artifact and bump the generation.

        Pinned artifacts (from :meth:`from_matching` / :meth:`from_mapping_set`)
        are kept; prepared queries survive but refresh their filter caches,
        and cached results keyed on the old generation become unreachable.
        """
        with self._lock.write_locked():
            if not self._pinned_matching:
                self._matching = None
            if not self._pinned_mapping_set:
                self._mapping_set = None
            self._block_tree = None
            self._generation += 1
        return self

    def apply_delta(self, delta: MappingDelta) -> DeltaReport:
        """Evolve the mapping set incrementally instead of rebuilding it.

        Applies a :class:`~repro.engine.delta.MappingDelta` — correspondence
        adds/removes, mass-preserving probability reweights, top-h membership
        replacements — as one atomic write: the patched
        :class:`~repro.mapping.mapping_set.MappingSet` (structure-sharing,
        with an incrementally recompiled
        :class:`~repro.engine.compiled.CompiledMappingSet`) is swapped in
        under the write lock and the session's ``delta_epoch`` is bumped.
        The *generation* is **not** bumped: result-cache entries whose
        relevant mappings and required target elements do not intersect the
        delta's dirty masks keep serving across the epoch boundary (see
        :meth:`~repro.engine.cache.ResultCache.retain`), and a sharded
        corpus over this session reuses its document partition and skips
        re-evaluating clean shards.

        In-flight queries are unaffected — they evaluate against the
        immutable snapshot they captured before the swap.  The block tree is
        dropped and rebuilt lazily (only the explicit ``blocktree`` plan
        needs it).

        Returns a :class:`~repro.engine.delta.DeltaReport` describing the
        touched mappings and the reuse achieved by the incremental
        recompilation.

        Raises
        ------
        MappingError
            When the delta is invalid for the current set (see
            :func:`~repro.engine.delta.apply_mapping_delta`).

        >>> # ds.apply_delta(MappingDelta.build(reweight={0: 0.2, 1: 0.3}))
        """
        return self._commit_batch(DeltaBatch.of(delta), as_batch=False)

    def apply_delta_batch(
        self, batch: Union[DeltaBatch, Iterable[MappingDelta]]
    ) -> DeltaBatchReport:
        """Apply a whole :class:`~repro.engine.streaming.DeltaBatch` as one epoch.

        Every member delta is validated against the intermediate state its
        predecessors left (exactly as if applied one by one via
        :meth:`apply_delta`), but the session commits a *single*
        ``delta_epoch`` bump with one incremental recompile of the net
        difference — an edit a later delta of the batch reverts never
        touches a posting list, and readers, cache retention and standing
        queries observe one transition instead of ``len(batch)``.

        Returns a :class:`~repro.engine.streaming.DeltaBatchReport` (a
        :class:`~repro.engine.delta.DeltaReport` plus the coalesced-delta
        count).

        Raises
        ------
        MappingError
            On an empty batch, or when any member delta is invalid for the
            state it applies to; the session is left untouched either way.
        """
        normalized = batch if isinstance(batch, DeltaBatch) else DeltaBatch.build(batch)
        report = self._commit_batch(normalized, as_batch=True)
        assert isinstance(report, DeltaBatchReport)
        return report

    def _commit_batch(self, batch: DeltaBatch, *, as_batch: bool) -> DeltaReport:
        """Shared commit path of :meth:`apply_delta` / :meth:`apply_delta_batch`.

        ``as_batch`` only selects the report type: the single-delta path is
        the batch path — a batch of one delta is bit-identical to the old
        direct ``apply_mapping_delta`` call by construction (see
        :func:`repro.engine.streaming.apply_delta_batch`).
        """
        started = time.perf_counter()
        with self._lock.write_locked():
            mapping_set = self._build_mapping_set()
            patched, effect = apply_delta_batch(mapping_set, batch)
            self._mapping_set = patched
            self._block_tree = None
            self._delta_epoch += 1
            epoch = self._delta_epoch
            generation = self._generation
            self._result_cache.record_delta(
                epoch, effect.probability_mask, effect.dirty_target_mask
            )
            self._filter_cache.record_delta(
                epoch, effect.probability_mask, effect.dirty_target_mask
            )
            self._subscriptions.on_commit(
                epoch,
                generation,
                self._document_version,
                effect,
                self._snapshot_if_built(False),
            )
        persist_failed = False
        persist_error: Optional[str] = None
        if self._store is not None and self._document is not None:
            # Write the patched artifacts through to the attached store so a
            # restart reopens at this exact epoch.  Best effort by design —
            # a store failure must never fail the delta itself — but never
            # silent: the failure is recorded on the report, counted in the
            # session's stats, and the first occurrence warns.
            try:
                self.persist()
            except Exception as exc:
                persist_failed = True
                persist_error = f"{type(exc).__name__}: {exc}"
                self._persist_failures += 1
                if not self._persist_failure_warned:
                    self._persist_failure_warned = True
                    warnings.warn(
                        f"delta write-through to store ref {self._store_ref!r} "
                        f"failed ({persist_error}); the in-memory session is "
                        "current but the store is stale",
                        PersistFailedWarning,
                        stacklevel=2,
                    )
        # Standing queries advance after the write lock is released: the
        # registry re-executes structural subscribers against the committed
        # snapshot, which must not happen under the session write lock.
        self._subscriptions.drain()
        fields = dict(
            delta_epoch=epoch,
            generation=generation,
            num_mappings=len(patched),
            touched_mappings=effect.dirty_mask.bit_count(),
            structural_mappings=effect.structural_mask.bit_count(),
            reweighted_mappings=effect.reweight_edits,
            replaced_mappings=effect.replace_edits,
            touched_targets=len(effect.dirty_targets),
            posting_lists_touched=effect.posting_lists_touched,
            posting_lists_total=effect.posting_lists_total,
            compiled_incrementally=effect.compiled_incrementally,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            persist_failed=persist_failed,
            persist_error=persist_error,
        )
        if as_batch:
            return DeltaBatchReport(num_deltas=effect.num_deltas, **fields)
        return DeltaReport(**fields)

    def _check_document(self, document: XMLDocument) -> None:
        if document.schema is not self.source_schema:
            raise DataspaceError(
                "the document does not conform to this session's source schema"
            )

    def set_document(self, document: XMLDocument) -> "Dataspace":
        """Swap the source document the session evaluates queries over."""
        self._check_document(document)
        with self._lock.write_locked():
            self._document = document
            self._document_version += 1
        return self

    # ------------------------------------------------------------------ #
    # Lazily built artifacts
    # ------------------------------------------------------------------ #
    # Locking discipline: the public properties try a read-locked fast path
    # first, then upgrade (release/reacquire) to the write lock and build via
    # the _build_* helpers, which assume the write lock is held and call each
    # other directly — never back through the locking properties.

    def _record_built(self, artifact: str, started: float) -> None:
        """Record cold-derivation provenance for one artifact (see explain())."""
        self._provenance[artifact] = {
            "source": "built",
            "ms": round((time.perf_counter() - started) * 1000.0, 3),
        }

    def _build_matching(self) -> SchemaMatching:
        if self._matching is None:
            started = time.perf_counter()
            if self._matcher_config is None and self._dataset_id is not None:
                self._matching = load_dataset(self._dataset_id, seed=self._seed).matching
            else:
                config = self._matcher_config or MatcherConfig(seed=self._seed)
                matcher = SchemaMatcher(config)
                self._matching = matcher.match(
                    self.source_schema, self.target_schema, name=self.name
                )
            self._record_built("matching", started)
        return self._matching

    def _build_mapping_set(self) -> MappingSet:
        if self._mapping_set is None:
            started = time.perf_counter()
            if self._dataset_id is not None and self._matcher_config is None:
                # Share the workload layer's cache with benchmarks and tests.
                self._mapping_set = build_mapping_set(
                    self._dataset_id, self._h, seed=self._seed, method=self._method
                )
            else:
                self._mapping_set = generate_top_h_mappings(
                    self._build_matching(), self._h, method=self._method
                )
            self._record_built("mapping_set", started)
        return self._mapping_set

    def _build_block_tree(self) -> BlockTree:
        if self._block_tree is None:
            started = time.perf_counter()
            config = BlockTreeConfig(
                tau=self._tau, max_blocks=self._max_blocks, max_failures=self._max_failures
            )
            self._block_tree = build_block_tree(self._build_mapping_set(), config)
            self._record_built("block_tree", started)
        return self._block_tree

    def _build_document(self) -> XMLDocument:
        if self._document is None:
            started = time.perf_counter()
            if self._dataset_id is not None:
                self._document = load_source_document(
                    self._dataset_id, seed=self._seed, target_nodes=self._document_nodes
                )
            else:
                self._document = generate_document(
                    self.source_schema, target_nodes=self._document_nodes, seed=self._seed
                )
            self._record_built("document", started)
        return self._document

    @property
    def matching(self) -> SchemaMatching:
        """The schema matching (built and memoized on first access)."""
        with self._lock.read_locked():
            if self._matching is not None:
                return self._matching
        with self._lock.write_locked():
            return self._build_matching()

    @property
    def mapping_set(self) -> MappingSet:
        """The top-h possible mappings (built and memoized on first access)."""
        with self._lock.read_locked():
            if self._mapping_set is not None:
                return self._mapping_set
        with self._lock.write_locked():
            return self._build_mapping_set()

    @property
    def block_tree(self) -> BlockTree:
        """The block tree over the mapping set (built and memoized on first access)."""
        with self._lock.read_locked():
            if self._block_tree is not None:
                return self._block_tree
        with self._lock.write_locked():
            return self._build_block_tree()

    @property
    def document(self) -> XMLDocument:
        """The source document (loaded or generated on first access)."""
        with self._lock.read_locked():
            if self._document is not None:
                return self._document
        with self._lock.write_locked():
            return self._build_document()

    @property
    def compiled(self) -> "CompiledMappingSet":
        """The compiled bitset view of the mapping set (built and memoized on first use).

        The artifact is cached on the (immutable) mapping set itself, so it
        rides the session's existing generation machinery: any invalidation
        that replaces the mapping set also retires its compiled view, and a
        snapshot's ``mapping_set.compile()`` always matches that snapshot's
        generation.
        """
        mapping_set = self.mapping_set
        if not mapping_set.is_compiled:
            started = time.perf_counter()
            compiled = mapping_set.compile(self._kernels)
            self._record_built("compiled", started)
            return compiled
        return mapping_set.compile(self._kernels)

    # ------------------------------------------------------------------ #
    # Snapshots and shared caches
    # ------------------------------------------------------------------ #
    def _snapshot_if_built(self, need_tree: bool) -> Optional[EngineSnapshot]:
        """Assemble a snapshot from already-built artifacts, else ``None``."""
        if self._mapping_set is None or self._document is None:
            return None
        if need_tree and self._block_tree is None:
            return None
        return EngineSnapshot(
            generation=self._generation,
            document_version=self._document_version,
            delta_epoch=self._delta_epoch,
            tau=self._tau,
            mapping_set=self._mapping_set,
            document=self._document,
            block_tree=self._block_tree,
        )

    def snapshot(self, *, need_tree: bool = True) -> EngineSnapshot:
        """Capture a consistent :class:`EngineSnapshot` of the session.

        Builds any missing artifact first (under the write lock), then
        returns generation, document and mapping set — plus the block tree
        unless ``need_tree=False`` and it is not already built — as one
        atomic unit.  Execution paths evaluate against a snapshot, never
        against the live session, which is what makes concurrent
        ``configure()`` calls safe.
        """
        with self._lock.read_locked():
            snap = self._snapshot_if_built(need_tree)
            if snap is not None:
                return snap
        with self._lock.write_locked():
            self._build_mapping_set()
            self._build_document()
            if need_tree:
                self._build_block_tree()
            snap = self._snapshot_if_built(need_tree)
            assert snap is not None  # all artifacts were just built
            return snap

    @property
    def result_cache(self) -> ResultCache:
        """The session's LRU cache of evaluated :class:`PTQResult` objects."""
        return self._result_cache

    def cache_stats(self) -> dict:
        """Hit/miss statistics of the result and filter caches.

        When a persistent artifact store is attached, its counters (hits,
        misses, writes, block occupancy) appear under ``"store"``, together
        with ``persist_failures`` — the number of :meth:`apply_delta`
        write-throughs that failed; the key is absent on store-less
        sessions, so existing consumers see exactly the shape they always
        did.
        """
        stats = {
            "result_cache": self._result_cache.stats().to_dict(),
            "filter_cache": self._filter_cache.stats().to_dict(),
        }
        if self._store is not None:
            store_stats = dict(self._store.stats())
            store_stats["persist_failures"] = self._persist_failures
            stats["store"] = store_stats
        return stats

    def artifact_provenance(self) -> dict:
        """Per-artifact provenance: ``loaded`` (store hit) vs ``built`` (cold).

        Each entry is ``{"source": "loaded" | "built", "ms": float}`` where
        ``ms`` is the deserialization time for loaded artifacts and the
        derivation time for built ones.  Only artifacts whose construction
        this session observed are reported (a compiled view produced outside
        the session property appears as ``built`` without a time).
        """
        with self._lock.read_locked():
            provenance = {name: dict(info) for name, info in self._provenance.items()}
            if (
                self._mapping_set is not None
                and self._mapping_set.is_compiled
                and "compiled" not in provenance
            ):
                provenance["compiled"] = {"source": "built"}
        return provenance

    def clear_caches(self) -> "Dataspace":
        """Drop all cached results and shared filter prefixes."""
        self._result_cache.clear()
        self._filter_cache.clear()
        return self

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> Optional[ArtifactStore]:
        """The attached persistent artifact store, or ``None``."""
        return self._store

    def _store_config(self) -> dict:
        """The configuration persisted alongside the artifacts.

        Compared on reopen: a reopen requesting a different configuration
        treats the stored session as a stale signature and rebuilds cold.
        """
        return {
            "name": self.name,
            "dataset_id": self._dataset_id,
            "h": self._h,
            "method": self._method,
            "tau": self._tau,
            "max_blocks": self._max_blocks,
            "max_failures": self._max_failures,
            "seed": self._seed,
            "cache_size": self._cache_size,
            "pinned_matching": self._pinned_matching,
            "pinned_mapping_set": self._pinned_mapping_set,
        }

    def _default_store_ref(self) -> str:
        if self._dataset_id is not None:
            return self._dataset_ref(
                self._dataset_id, h=self._h, method=self._method, seed=self._seed
            )
        return f"dataspace/{self.name}?h={self._h}&method={self._method}&seed={self._seed}"

    def _result_entries(self, snap: EngineSnapshot) -> list[tuple]:
        """Result-cache entries belonging to the snapshot's exact signature.

        Only plain session-scoped entries of named queries qualify: shard
        and corpus partials are cheap to re-derive, and identity-keyed twig
        entries (``<twig:N>``) cannot be re-associated after a reopen.
        """
        entries = []
        for key, value in self._result_cache.items():
            if not isinstance(key, CacheKey) or not isinstance(value, PTQResult):
                continue
            if key.scope != "session" or key.query.startswith("<twig:"):
                continue
            if (
                key.generation != snap.generation
                or key.document_version != snap.document_version
                or key.delta_epoch != snap.delta_epoch
            ):
                continue
            entries.append((key, value))
        return entries

    def persist(self, store=None, *, ref: Optional[str] = None) -> dict:
        """Write every session artifact through to a persistent store.

        Persists the schemas, matching, mapping set, compiled bitset
        columns, source document, remembered shard-partition layouts and the
        current result-cache warmth as content-addressed blocks under one
        manifest, keyed by the session's ``(generation, delta_epoch,
        document_version)`` signature.  Unchanged artifacts dedupe to their
        existing blocks, so repeated persists are cheap.

        ``store`` (a :class:`~repro.store.BlockStore` or
        :class:`~repro.store.ArtifactStore`) defaults to the attached store;
        the first successful persist attaches the store for the
        :meth:`apply_delta` write-through.  Returns the save report
        (``ref``, manifest key, artifact counts, elapsed time).

        Raises
        ------
        DataspaceError
            When no store is given and none is attached.
        """
        artifact_store = ArtifactStore.wrap(store) if store is not None else self._store
        if artifact_store is None:
            raise DataspaceError(
                "no artifact store: pass one to persist(store) or open the "
                "session with store=..."
            )
        snap = self.snapshot(need_tree=False)
        compiled = snap.mapping_set.compile(self._kernels)
        with self._layout_lock:
            partitions = {
                num_shards: layout
                for num_shards, (version, layout) in self._partition_layouts.items()
                if version == snap.document_version
            }
        signature = {
            "generation": snap.generation,
            "delta_epoch": snap.delta_epoch,
            "document_version": snap.document_version,
        }
        report = artifact_store.save_session(
            ref=ref or self._store_ref or self._default_store_ref(),
            config=self._store_config(),
            signature=signature,
            source_schema=self.source_schema,
            target_schema=self.target_schema,
            matching=snap.mapping_set.matching,
            mapping_set=snap.mapping_set,
            document=snap.document,
            compiled=compiled,
            partitions=partitions,
            results=self._result_entries(snap),
            statistics=self._planner.statistics_payload(signature),
        )
        self._store = artifact_store
        self._store_ref = report["ref"]
        return report

    def restore_partition(self, snapshot: EngineSnapshot, num_shards: int):
        """Rebuild a remembered shard-partition layout for ``snapshot``, or ``None``.

        Consulted by :class:`~repro.corpus.ShardedCorpus` before cutting a
        fresh partition; layouts come from an earlier
        :meth:`remember_partition` in this process or from a reopened store.
        A layout recorded against a different document version — or one that
        no longer applies — is discarded and ``None`` returned.
        """
        with self._layout_lock:
            entry = self._partition_layouts.get(num_shards)
        if entry is None:
            return None
        version, layout = entry
        if version != snapshot.document_version:
            return None
        try:
            return partition_from_layout(snapshot.document, layout)
        except Exception:
            with self._layout_lock:
                self._partition_layouts.pop(num_shards, None)
            return None

    def remember_partition(self, partition) -> None:
        """Remember a freshly cut partition's layout for reuse and persistence."""
        layout = partition_layout(partition)
        with self._lock.read_locked():
            version = self._document_version
        with self._layout_lock:
            self._partition_layouts[partition.num_shards] = (version, layout)

    def relevant_for(
        self, embeddings: list[Embedding], snapshot: Optional[EngineSnapshot] = None
    ) -> list[Mapping]:
        """Relevant mappings for ``embeddings``, via the shared filter cache.

        Queries whose embeddings require the same target-element sets have —
        by construction of :func:`~repro.query.ptq.filter_mappings` — the
        same relevant-mapping list, so the filter prefix is cached per
        ``(generation, required-target signature)`` and shared across every
        query and caller that hits those schema elements.

        The prefix is also retained *across delta epochs*: on a miss at the
        current epoch, an earlier epoch's entry for the same signature is
        promoted when no intervening delta structurally touched the
        signature's target elements — relevance depends only on coverage at
        those elements, so the relevant-mapping *id list* is provably
        unchanged.  The promoted list is re-anchored to the current mapping
        set (same ids, current :class:`Mapping` objects), so reweighted
        probabilities are always fresh.
        """
        snap = snapshot if snapshot is not None else self.snapshot(need_tree=False)
        signature = frozenset(frozenset(embedding.values()) for embedding in embeddings)
        key = _FilterKey(
            generation=snap.generation, signature=signature, delta_epoch=snap.delta_epoch
        )
        relevant = self._filter_cache.get(key)
        if relevant is None:
            required_mask = 0
            for values in signature:
                for target_id in values:
                    required_mask |= 1 << target_id
            mapping_set = snap.mapping_set
            relevant = self._filter_cache.retain(
                key,
                0,
                required_mask,
                probability_sensitive=False,
                transform=lambda rows: [mapping_set[m.mapping_id] for m in rows],
            )
        if relevant is None:
            relevant = self._filter_cache.put(
                key, filter_mappings(snap.mapping_set, embeddings)
            )
        return relevant

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _as_twig(self, query: Union[str, TwigQuery]) -> TwigQuery:
        if isinstance(query, TwigQuery):
            return query
        text = str(query).strip()
        if self._dataset_id is not None:
            if text.upper() in QUERY_STRINGS:
                return load_query(text)
            return parse_twig(text, aliases=QUERY_ALIASES)
        return parse_twig(text)

    def prepare(self, query: Union[str, TwigQuery]) -> PreparedQuery:
        """Compile ``query`` into a (cached) :class:`PreparedQuery`.

        Accepts a :class:`TwigQuery`, a twig pattern string, or — on dataset
        sessions — one of the paper's query ids (``"Q1"``…``"Q10"``).
        Query texts are keyed by their *canonical* rendering (see
        :mod:`repro.engine.planner.normalize`), so equivalent spellings —
        whitespace, predicate order, label aliases — share one prepared
        query, its resolve/filter caches and its planner statistics;
        distinct twig objects are never conflated, even when their text
        coincides.  The per-session prepared-query cache is a bounded LRU,
        so serving arbitrary ad-hoc query texts cannot grow session memory
        without limit.
        """
        if isinstance(query, TwigQuery):
            # A caller-supplied twig is keyed by identity: its structure may
            # differ from what the session would parse from the same text
            # (aliases, hand-built trees).  The key comes from a per-session
            # counter (see __init__), not id(), so it stays unique for the
            # session's whole lifetime.
            twig = query
            with self._twig_key_lock:
                key = self._twig_keys.get(twig)
                if key is None:
                    key = f"<twig:{next(self._twig_key_counter)}>"
                    self._twig_keys[twig] = key
        else:
            twig = self._as_twig(query)
            key = canonical_text(twig)
        prepared = self._prepared.get(key)
        if prepared is None:
            # First-writer-wins put: racing preparers all end up sharing the
            # one instance that actually landed in the cache.
            prepared = self._prepared.put(key, PreparedQuery(self, twig, cache_key=key))
        return prepared

    def query(self, query: Union[str, TwigQuery]) -> QueryBuilder:
        """Start a fluent query: ``ds.query("...").top_k(10).execute()``."""
        return QueryBuilder(self.prepare(query))

    def subscribe(
        self,
        query: Union[str, TwigQuery],
        *,
        k: Optional[int] = None,
        callback: Callable[[SubscriptionUpdate], None],
    ) -> Subscription:
        """Register ``query`` as a standing query; updates flow to ``callback``.

        The query is executed once and an ``initial``
        :class:`~repro.engine.streaming.SubscriptionUpdate` carrying the
        full current result is delivered before this returns; every
        subsequent :meth:`apply_delta` / :meth:`apply_delta_batch` commit
        delivers an incremental diff (or nothing, when the batch provably
        cannot have changed the result).  See
        :class:`~repro.engine.streaming.SubscriptionRegistry` for the
        classification rules and the delivery contract; cancel via the
        returned handle.
        """
        return self._subscriptions.subscribe(query, k=k, callback=callback)

    @property
    def subscriptions(self) -> SubscriptionRegistry:
        """The session's standing-query registry (see :meth:`subscribe`)."""
        return self._subscriptions

    def shard(self, num_shards: int, *, max_workers: Optional[int] = None):
        """Open a :class:`~repro.corpus.ShardedCorpus` over this session.

        The session's document is partitioned into ``num_shards`` subtree
        shards and queries are answered scatter-gather, with results
        byte-identical to the unsharded ``compiled`` plan.  The corpus holds
        a reference to this session (not a copy): reconfiguring the session
        transparently rebuilds the shard state at the next query.
        """
        from repro.corpus import ShardedCorpus

        return ShardedCorpus.from_dataspace(self, num_shards, max_workers=max_workers)

    def execute(
        self,
        query: Union[str, TwigQuery],
        *,
        k: Optional[int] = None,
        plan: PlanSpec = None,
        use_cache: bool = True,
    ) -> PTQResult:
        """Prepare (or reuse) and evaluate ``query`` in one call."""
        return self.prepare(query).execute(k=k, plan=plan, use_cache=use_cache)

    def explain(
        self,
        query: Union[str, TwigQuery],
        *,
        k: Optional[int] = None,
        plan: PlanSpec = None,
        use_cache: bool = True,
        analyze: bool = False,
    ):
        """Evaluate ``query`` and report plan choice, inputs and timings.

        ``analyze=True`` adds the planner's estimated cardinalities and
        latency next to this execution's measured actuals.
        """
        return self.prepare(query).explain(
            k=k, plan=plan, use_cache=use_cache, analyze=analyze
        )

    def batch(
        self,
        queries: Iterable[Union[str, TwigQuery]],
        *,
        k: Optional[int] = None,
        plan: PlanSpec = None,
    ) -> list[PTQResult]:
        """Evaluate many queries against one consistent session state.

        Sequential convenience alias of :meth:`query_batch`; all queries run
        against one snapshot, sharing prepared-query and filter-prefix work.
        """
        return self.query_batch(queries, k=k, plan=plan)

    def query_batch(
        self,
        queries: Iterable[Union[str, TwigQuery]],
        *,
        k: Optional[int] = None,
        plan: PlanSpec = None,
        max_workers: Optional[int] = None,
        executor: Optional["Executor"] = None,
        use_cache: bool = True,
    ) -> list[PTQResult]:
        """Evaluate many queries as one batch, sharing prefix work.

        All queries are prepared up front and evaluated against a *single*
        snapshot, so the session's artifacts are built once and every result
        belongs to the same generation.  The resolve and ``filter_mappings``
        prefix is shared: duplicate queries collapse onto one
        :class:`PreparedQuery`, and distinct queries hitting the same target
        elements share one filter pass through the session filter cache.
        Duplicate queries are evaluated once and the result object reused.

        Parameters
        ----------
        queries:
            Query strings, ids or :class:`TwigQuery` objects.
        k, plan:
            Per-batch top-k restriction and plan override.
        max_workers:
            Fan evaluation out over a private thread pool of this size;
            ``None`` (default) evaluates sequentially in the calling thread.
        executor:
            Fan out over a caller-owned executor instead (takes precedence
            over ``max_workers``); used by the service layer to share one
            pool across batches.
        use_cache:
            Consult/populate the session result cache (default ``True``).
        """
        prepared = [self.prepare(query) for query in queries]
        if not prepared:
            return []
        need_tree = plan is not None and plan_for(plan).uses_block_tree
        snap = self.snapshot(need_tree=need_tree)
        # Dedupe: the same prepared query is evaluated once per batch.
        unique: dict[int, PreparedQuery] = {}
        for item in prepared:
            unique.setdefault(id(item), item)
        items = list(unique.values())
        # Warm the shared resolve + filter prefix before fanning out, so
        # concurrent workers hit the filter cache instead of racing on it.
        for item in items:
            item.relevant_mappings(snapshot=snap)

        def run_one(item: PreparedQuery) -> PTQResult:
            return item.execute(k=k, plan=plan, snapshot=snap, use_cache=use_cache)

        results: dict[int, PTQResult]
        if executor is not None and len(items) > 1:
            futures = [(id(item), executor.submit(run_one, item)) for item in items]
            results = {key: future.result() for key, future in futures}
        elif max_workers is not None and max_workers > 1 and len(items) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=min(max_workers, len(items))) as pool:
                futures = [(id(item), pool.submit(run_one, item)) for item in items]
                results = {key: future.result() for key, future in futures}
        else:
            results = {id(item): run_one(item) for item in items}
        return [results[id(item)] for item in prepared]

    def _default_plan(self) -> Tuple[QueryPlan, str]:
        return plan_for("compiled"), "compiled bitset core (session default)"

    def select_plan(self, plan: PlanSpec = None) -> Tuple[QueryPlan, str]:
        """Pick the evaluation plan: ``(plan, reason)``.

        A caller-supplied ``plan`` (name or instance) is honoured verbatim;
        otherwise the session runs the ``compiled`` plan — it shares work
        across mappings wherever they agree on a rewrite (a strict
        generalisation of the block tree's c-block sharing) and needs no
        block tree at all, so automatic selection never triggers a tree
        build.  All plans return identical answers, so the choice is purely
        a performance strategy.  Query-aware selection (measured statistics
        through the cost model) goes through :meth:`select_plan_for` with a
        prepared query.
        """
        if plan is not None:
            return plan_for(plan), "forced by caller"
        return self._default_plan()

    def select_plan_for(
        self,
        plan: PlanSpec,
        snapshot: EngineSnapshot,
        *,
        prepared: Optional[PreparedQuery] = None,
        k: Optional[int] = None,
    ) -> Tuple[QueryPlan, str]:
        """Like :meth:`select_plan`, but cost-based when a prepared query is given.

        With ``prepared``, the session consults the planner's accumulated
        statistics for that query and lets the cost model pick among the
        in-process plans (the scatter route is decided earlier, in
        :meth:`PreparedQuery.execute <repro.engine.prepared.PreparedQuery.execute>`).
        Without statistics the decision degrades to the fixed default, so a
        cold session behaves exactly as before the planner existed.
        """
        if plan is not None:
            return plan_for(plan), "forced by caller"
        if prepared is not None:
            decision = self._planner.decide(
                prepared.cache_key,
                state=(snapshot.generation, snapshot.delta_epoch),
                k=k,
                allow_scatter=False,
            )
            return plan_for(decision.plan_name), decision.reason
        return self._default_plan()

    # ------------------------------------------------------------------ #
    # Cost-based planning
    # ------------------------------------------------------------------ #
    @property
    def planner(self) -> QueryPlanner:
        """The session's cost-based planner (statistics + decisions)."""
        return self._planner

    def plan_decision(
        self,
        prepared: PreparedQuery,
        *,
        k: Optional[int] = None,
        allow_scatter: bool = False,
        state: Optional[tuple[int, int]] = None,
        collect_statistics: bool = True,
    ) -> PlanDecision:
        """The cost model's full decision for ``prepared`` at the current state.

        ``state`` lets a caller that already holds a snapshot pass its
        ``(generation, delta_epoch)`` instead of paying a second read-lock
        acquisition on the hot execute path; that path also passes
        ``collect_statistics=False`` to skip the serialized statistics
        snapshot only ``explain()`` output reads.
        """
        if state is None:
            with self._lock.read_locked():
                state = (self._generation, self._delta_epoch)
        return self._planner.decide(
            prepared.cache_key,
            state=state,
            k=k,
            allow_scatter=allow_scatter,
            collect_statistics=collect_statistics,
        )

    def _scatter_corpus(self, num_shards: int):
        """The memoized scatter-gather corpus the planner routes through."""
        with self._scatter_lock:
            corpus = self._scatter_corpora.get(num_shards)
        if corpus is None:
            corpus = self.shard(num_shards)
            with self._scatter_lock:
                existing = self._scatter_corpora.setdefault(num_shards, corpus)
                corpus = existing
        return corpus

    def _scatter_execute(
        self,
        prepared: PreparedQuery,
        decision: PlanDecision,
        *,
        k: Optional[int],
        use_cache: bool,
    ) -> PTQResult:
        """Run ``prepared`` through the scatter-gather executor (byte-identical).

        The corpus is addressed by the prepared query's canonical text —
        idempotent under normalization, so the corpus resolves it back to
        the *same* prepared query and its statistics.
        """
        corpus = self._scatter_corpus(decision.num_shards)
        return corpus.execute(prepared.cache_key, k=k, use_cache=use_cache)

    def calibrate(
        self,
        query: Union[str, TwigQuery],
        *,
        k: Optional[int] = None,
        plans: Optional[Iterable[Union[str, QueryPlan]]] = None,
        shard_counts: Iterable[int] = (),
    ) -> dict:
        """Measure every candidate strategy once to warm the cost model.

        Runs ``query`` uncached under each in-process plan (default: all
        registered plans) and, optionally, through scatter-gather at each of
        ``shard_counts`` — feeding the planner real latencies so subsequent
        un-forced executions pick the measured-fastest strategy.  Returns
        ``{strategy: latency_ms}``.  All strategies are byte-identical by
        contract, so calibration never changes any answer, only timings.
        """
        prepared = self.prepare(query)
        plan_names = [
            plan_for(candidate).name
            for candidate in (plans if plans is not None else available_plans())
        ]
        report: dict[str, float] = {}
        for name in plan_names:
            started = time.perf_counter()
            prepared.execute(k=k, plan=name, use_cache=False)
            report[name] = (time.perf_counter() - started) * 1000.0
        # Text-prepared queries scatter by canonical text (the corpus resolves
        # it back to the same prepared query); hand-built twig objects carry
        # an identity token instead of parseable text, so they go through the
        # corpus by object — it resolves through this session's own prepare().
        scatter_query: Union[str, TwigQuery] = (
            prepared.cache_key if prepared._scatter_eligible() else prepared.query
        )
        for num_shards in shard_counts:
            corpus = self._scatter_corpus(num_shards)
            started = time.perf_counter()
            corpus.execute(scatter_query, k=k, use_cache=False)
            report[f"scatter:{num_shards}"] = (time.perf_counter() - started) * 1000.0
        return report

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Summary of the session: configuration, build state, statistics.

        Only reports statistics of artifacts that are already built — calling
        this never triggers a build.
        """
        with self._lock.read_locked():
            info: dict = {
                "name": self.name,
                "dataset": self._dataset_id,
                "source": self.source_schema.name,
                "|S|": len(self.source_schema),
                "target": self.target_schema.name,
                "|T|": len(self.target_schema),
                "h": self._h,
                "method": self._method,
                "tau": self._tau,
                "generation": self._generation,
                "document_version": self._document_version,
                "delta_epoch": self._delta_epoch,
                "prepared_queries": len(self._prepared),
                "matching_built": self._matching is not None,
                "mapping_set_built": self._mapping_set is not None,
                "compiled_built": self._mapping_set is not None
                and self._mapping_set.is_compiled,
                "block_tree_built": self._block_tree is not None,
                "document_loaded": self._document is not None,
            }
            if self._matching is not None:
                info["capacity"] = self._matching.capacity
            if self._mapping_set is not None:
                info["o_ratio"] = round(self._mapping_set.o_ratio(), 4)
            if self._block_tree is not None:
                info["num_blocks"] = self._block_tree.num_blocks
            if self._document is not None:
                info["document_nodes"] = len(self._document)
        info["planner"] = self._planner.report()
        info["subscriptions"] = self._subscriptions.stats()
        info.update(self.cache_stats())
        return info

    def __repr__(self) -> str:
        return (
            f"Dataspace({self.name!r}, h={self._h}, tau={self._tau}, "
            f"generation={self._generation})"
        )
