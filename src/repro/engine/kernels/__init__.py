"""Kernel backends for the compiled core (see :mod:`repro.engine.kernels.base`).

Two implementations ship:

* :class:`PythonKernels` — arbitrary-width Python-int bitmask loops; always
  available and byte-identical to the engine's original evaluation code;
* :class:`NumpyKernels` — ``uint64`` word matrices with vectorised popcount
  and contiguous ``float64`` probability columns; requires numpy.

Selection (:func:`resolve_kernels`) is automatic-with-overrides:

1. an explicit :class:`~repro.engine.kernels.base.Kernels` instance or name
   (``Dataspace(kernels=...)``, ``MappingSet.compile(kernels=...)``) wins;
2. else the ``REPRO_KERNELS`` environment variable (``"python"``,
   ``"numpy"`` or ``"auto"``) decides;
3. else ``"auto"``: numpy when importable, the Python backend otherwise.

Asking for ``"numpy"`` explicitly when numpy is not importable raises
:class:`~repro.exceptions.KernelError` — a forced backend must never
silently degrade; ``"auto"`` is the spelling that may.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.engine.kernels.base import Kernels
from repro.engine.kernels.python_backend import PythonKernels
from repro.exceptions import KernelError

__all__ = [
    "Kernels",
    "PythonKernels",
    "resolve_kernels",
    "available_backends",
    "default_backend_name",
]

#: Environment variable consulted when no explicit backend is passed.
KERNELS_ENV_VAR = "REPRO_KERNELS"

_PYTHON = PythonKernels()
#: Lazily constructed NumpyKernels singleton; ``False`` = probed and absent.
_numpy_backend: Union[Kernels, None, bool] = None


def _load_numpy_backend() -> Optional[Kernels]:
    """Build (once) the numpy backend, or ``None`` when numpy is missing."""
    global _numpy_backend
    if _numpy_backend is None:
        try:
            from repro.engine.kernels.numpy_backend import NumpyKernels
        except ImportError:
            _numpy_backend = False
        else:
            _numpy_backend = NumpyKernels()
    return _numpy_backend if isinstance(_numpy_backend, Kernels) else None


def available_backends() -> tuple[str, ...]:
    """Names of the kernel backends importable in this process."""
    names = [_PYTHON.name]
    if _load_numpy_backend() is not None:
        names.append("numpy")
    return tuple(names)


def default_backend_name() -> str:
    """The backend ``resolve_kernels(None)`` would pick right now."""
    return resolve_kernels(None).name


def resolve_kernels(spec: Union[Kernels, str, None] = None) -> Kernels:
    """Resolve a backend spec into a :class:`Kernels` singleton.

    ``spec`` may be a backend instance (returned as-is), a name
    (``"python"`` / ``"numpy"`` / ``"auto"``, case-insensitive) or ``None``
    (consult ``REPRO_KERNELS``, default ``"auto"``).

    Raises
    ------
    KernelError
        On an unknown backend name, or when ``"numpy"`` is requested
        explicitly (argument or environment) but numpy is not importable.
    """
    if isinstance(spec, Kernels):
        return spec
    if spec is None:
        spec = os.environ.get(KERNELS_ENV_VAR, "").strip() or "auto"
    name = str(spec).strip().lower()
    if name == "auto":
        return _load_numpy_backend() or _PYTHON
    if name == _PYTHON.name:
        return _PYTHON
    if name == "numpy":
        backend = _load_numpy_backend()
        if backend is None:
            raise KernelError(
                "the numpy kernel backend was requested explicitly "
                f"(kernels={name!r} or {KERNELS_ENV_VAR}={name!r}) but numpy is "
                "not importable; install numpy or select 'python'/'auto'"
            )
        return backend
    raise KernelError(
        f"unknown kernel backend {spec!r}; known backends: python, numpy, auto"
    )
