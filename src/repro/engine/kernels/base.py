"""The :class:`Kernels` protocol: the compiled core's numeric substrate.

:class:`~repro.engine.compiled.CompiledMappingSet` keeps its columns —
posting lists, coverage masks, source partitions, the probability column —
in a *backend-neutral* form (Python-int bitmasks and float tuples): that is
what the delta patcher edits and what the persistent store serialises, so a
session persisted under one backend always reopens under the other.  What a
backend owns is the *hot loops over* those columns: coverage-mask
intersection, the union-of-coverage filter step, partition refinement by
rewrite vector, and probability accumulation over the float column.

A :class:`Kernels` implementation therefore has two halves:

* :meth:`Kernels.bind` lowers a compiled artifact into whatever columnar
  state the backend evaluates on (the pure-Python backend binds the artifact
  itself; the numpy backend packs the masks into ``uint64`` word matrices
  and the probabilities into one contiguous ``float64`` array);
* the operation methods take that bound state plus Python-int masks at the
  boundary and return Python ints / floats — every caller above the kernel
  (block tree, corpus scatter-gather, cache retention) keeps consuming
  plain ints, and results are byte-identical across backends by contract
  (pinned by the differential suite and the golden snapshots).

Scalar single-mask algebra (AND/OR/popcount of one Python int) is
intentionally *not* overridden per backend: for the mask widths the engine
sees, CPython's big-int ops beat a per-call array conversion, so both
backends share the int implementations and vectorisation is reserved for
the batched operations where it actually pays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.compiled import CompiledMappingSet, RewriteGroup

__all__ = ["Kernels"]


class Kernels(ABC):
    """One backend for the compiled core's bitset / probability hot loops.

    Implementations are stateless singletons (see
    :func:`repro.engine.kernels.resolve_kernels`); all per-artifact state
    lives in the object returned by :meth:`bind`, which the compiled
    artifact caches and passes back into every operation.
    """

    #: Registry name of the backend (``"python"`` / ``"numpy"``).
    name: str = "abstract"
    #: Whether the backend's batched loops run outside the GIL (vectorised
    #: C kernels); surfaced by ``explain()`` and the service stats.
    releases_gil: bool = False

    # ------------------------------------------------------------------ #
    # Column binding
    # ------------------------------------------------------------------ #
    @abstractmethod
    def bind(self, compiled: "CompiledMappingSet") -> Any:
        """Lower ``compiled``'s neutral columns into backend evaluation state."""

    # ------------------------------------------------------------------ #
    # Scalar mask algebra (shared: Python ints are the boundary currency)
    # ------------------------------------------------------------------ #
    def mask_and(self, a: int, b: int) -> int:
        """Intersection of two mapping-id bitmasks."""
        return a & b

    def mask_or(self, a: int, b: int) -> int:
        """Union of two mapping-id bitmasks."""
        return a | b

    def popcount(self, mask: int) -> int:
        """Number of mappings encoded in ``mask``."""
        return mask.bit_count()

    def popcounts(self, masks: Iterable[int]) -> list[int]:
        """Popcount of every mask (statistics paths)."""
        return [mask.bit_count() for mask in masks]

    def intersect_masks(self, masks: Iterable[int], identity: int) -> int:
        """AND-fold a sequence of posting-list / coverage masks.

        ``identity`` is the starting mask (usually ``all_mask``); the fold
        short-circuits at zero.
        """
        result = identity
        for mask in masks:
            result &= mask
            if not result:
                break
        return result

    # ------------------------------------------------------------------ #
    # Batched columnar operations (the backend-differentiated hot loops)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def coverage_mask(self, state: Any, target_ids: Sequence[int]) -> int:
        """Mappings covering *every* given target element (AND of coverage rows)."""

    @abstractmethod
    def union_coverage(self, state: Any, target_sets: Sequence[Sequence[int]]) -> int:
        """Union over ``target_sets`` of their coverage intersections.

        This is the ``filter_mappings`` step over pre-resolved embeddings:
        one coverage AND per target set, OR-ed across sets.
        """

    @abstractmethod
    def refine_groups(
        self, state: Any, required: Sequence[int], candidates: int
    ) -> list["RewriteGroup"]:
        """Partition ``candidates`` by rewrite of the ``required`` targets.

        ``required`` must be sorted ascending; groups are emitted in the
        deterministic order the pure-Python refinement produces (groups in
        discovery order, sources ascending within each refinement step), so
        both backends return identical lists.
        """

    @abstractmethod
    def gather_probabilities(self, state: Any, mask: int) -> list[float]:
        """Probability-column entries of ``mask``'s members, ascending id."""

    @abstractmethod
    def probability_mass(self, state: Any, mask: int) -> float:
        """Sum of the probability column over ``mask``'s members.

        Both backends accumulate in ascending mapping-id order with plain
        sequential IEEE-754 addition, so the float result is bit-identical
        across backends.
        """

    @abstractmethod
    def max_probability(self, state: Any) -> float:
        """Largest entry of the probability column (top-k session bounds)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
