"""The numpy kernel backend: ``uint64`` word matrices, vectorised hot loops.

Importing this module requires numpy; :func:`repro.engine.kernels.resolve_kernels`
guards the import and falls back to the pure-Python backend when numpy is
absent, so the engine never hard-depends on it.

:meth:`NumpyKernels.bind` packs the compiled artifact's neutral columns into
columnar arrays once per artifact:

* every coverage mask becomes a row of a ``(targets, words)`` ``uint64``
  matrix (``words = ceil(num_mappings / 64)``, little-endian word order, so
  a row and the Python int it came from describe the same bit string);
* every target element's source partition becomes a ``(sources, words)``
  matrix with the sources in ascending order — the same order the Python
  refinement walks;
* the probability column becomes one contiguous ``float64`` array.

The batched loops then run as whole-matrix ufunc calls — coverage tests are
``bitwise_and.reduce`` over rows, partition refinement intersects *all
groups against all sources of a target in one broadcast AND*, and
probability accumulation gathers from the float column and accumulates with
``cumsum`` — C loops that release the GIL while they run.  Popcounts use
``np.bitwise_count`` where the installed numpy has it (>= 2.0) and an 8-bit
lookup table built with ``np.unpackbits`` otherwise.

Byte-identity with the Python backend is by construction, not luck: masks
convert to and from word rows losslessly, refinement emits groups in the
identical deterministic order, and ``cumsum`` accumulates float64 values
sequentially left-to-right — the same IEEE-754 addition chain as the Python
``for`` loop — so even the float results match bit for bit (the
differential suite asserts exactly this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.kernels.base import Kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.compiled import CompiledMappingSet, RewriteGroup

__all__ = ["NumpyKernels"]

#: ``uint64`` in explicit little-endian word order: word ``w`` of a row holds
#: bits ``64*w .. 64*w+63`` of the mask, matching ``int.to_bytes(..., "little")``.
_WORD = np.dtype("<u8")

#: Popcount of every byte value — the classic 8-bit LUT, built with
#: ``unpackbits`` so the fallback needs nothing beyond numpy itself.
_POPCOUNT8 = np.unpackbits(
    np.arange(256, dtype=np.uint8).reshape(256, 1), axis=1
).sum(axis=1, dtype=np.int64)

#: ``np.bitwise_count`` arrived in numpy 2.0; older installs use the LUT.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


class _NumpyState:
    """Columnar evaluation state bound to one compiled artifact."""

    __slots__ = (
        "num_mappings",
        "words",
        "nbytes",
        "all_words",
        "covered_index",
        "covered_rows",
        "partitions",
        "probabilities",
    )

    def __init__(self, compiled: "CompiledMappingSet") -> None:
        n = compiled.num_mappings
        self.num_mappings = n
        self.words = max(1, (n + 63) // 64)
        self.nbytes = self.words * 8
        self.all_words = self._to_words(compiled.all_mask)
        covered = compiled._covered_masks
        self.covered_index = {
            target_id: row for row, target_id in enumerate(covered)
        }
        if covered:
            self.covered_rows = np.frombuffer(
                b"".join(mask.to_bytes(self.nbytes, "little") for mask in covered.values()),
                dtype=_WORD,
            ).reshape(len(covered), self.words)
        else:
            self.covered_rows = np.zeros((0, self.words), dtype=_WORD)
        # Partition rows keep the neutral column's ascending-source order, so
        # refinement emits sub-groups in exactly the Python backend's order.
        self.partitions: dict[int, tuple[tuple[int, ...], np.ndarray]] = {}
        for target_id, pairs in compiled._target_sources.items():
            sources = tuple(source_id for source_id, _ in pairs)
            rows = np.frombuffer(
                b"".join(mask.to_bytes(self.nbytes, "little") for _, mask in pairs),
                dtype=_WORD,
            ).reshape(len(pairs), self.words)
            self.partitions[target_id] = (sources, rows)
        self.probabilities = np.asarray(compiled.probabilities, dtype=np.float64)

    def _to_words(self, mask: int) -> np.ndarray:
        """Lower a Python-int mask into one little-endian ``uint64`` row."""
        return np.frombuffer(mask.to_bytes(self.nbytes, "little"), dtype=_WORD)

    def _to_mask(self, row: np.ndarray) -> int:
        """Lift a word row back into the boundary's Python-int form."""
        return int.from_bytes(np.ascontiguousarray(row, dtype=_WORD).tobytes(), "little")

    def _member_indices(self, mask: int) -> np.ndarray:
        """Ascending mapping ids of ``mask``'s set bits, as an index array."""
        bits = np.unpackbits(
            np.frombuffer(mask.to_bytes(self.nbytes, "little"), dtype=np.uint8),
            bitorder="little",
        )
        return np.flatnonzero(bits[: self.num_mappings])


class NumpyKernels(Kernels):
    """Vectorised ``uint64``/``float64`` kernels (see module docstring)."""

    name = "numpy"
    releases_gil = True

    def bind(self, compiled: "CompiledMappingSet") -> _NumpyState:
        """Pack the artifact's neutral columns into columnar arrays."""
        return _NumpyState(compiled)

    def popcounts(self, masks) -> list[int]:
        """Vectorised popcount of many masks at once (statistics paths)."""
        masks = list(masks)
        if not masks:
            return []
        nbytes = max(1, (max(mask.bit_length() for mask in masks) + 7) // 8)
        table = np.frombuffer(
            b"".join(mask.to_bytes(nbytes, "little") for mask in masks), dtype=np.uint8
        ).reshape(len(masks), nbytes)
        if _HAS_BITWISE_COUNT:
            counts = np.bitwise_count(table).sum(axis=1, dtype=np.int64)
        else:  # pragma: no cover - exercised only on numpy < 2.0
            counts = _POPCOUNT8[table].sum(axis=1)
        return counts.tolist()

    def coverage_mask(self, state: _NumpyState, target_ids: Sequence[int]) -> int:
        """AND the coverage rows of ``target_ids`` in one reduce."""
        index = state.covered_index
        rows = []
        for target_id in target_ids:
            row = index.get(target_id)
            if row is None:
                return 0
            rows.append(row)
        if not rows:
            return state._to_mask(state.all_words)
        return state._to_mask(
            np.bitwise_and.reduce(state.covered_rows[rows], axis=0)
        )

    def union_coverage(
        self, state: _NumpyState, target_sets: Sequence[Sequence[int]]
    ) -> int:
        """Per-set coverage reduces OR-ed into one accumulator row."""
        accumulator = np.zeros(state.words, dtype=_WORD)
        index = state.covered_index
        for target_ids in target_sets:
            rows = []
            covered = True
            for target_id in target_ids:
                row = index.get(target_id)
                if row is None:
                    covered = False
                    break
                rows.append(row)
            if not covered:
                continue
            if rows:
                accumulator |= np.bitwise_and.reduce(state.covered_rows[rows], axis=0)
            else:
                accumulator |= state.all_words
        return state._to_mask(accumulator)

    def refine_groups(
        self, state: _NumpyState, required: Sequence[int], candidates: int
    ) -> list["RewriteGroup"]:
        """Refine all current groups against a target's whole partition at once.

        Per required target, one broadcast AND intersects every live group
        row with every source row — ``(groups, sources, words)`` in a single
        ufunc call — and the non-empty cells become the next generation of
        groups, in (group discovery, ascending source) order.
        """
        if not candidates:
            return []
        groups: list[tuple[np.ndarray, dict[int, int]]] = [
            (np.asarray(state._to_words(candidates)), {})
        ]
        for target_id in required:
            partition = state.partitions.get(target_id)
            if partition is None:
                return []
            sources, rows = partition
            stacked = np.stack([group_row for group_row, _ in groups])
            intersections = stacked[:, None, :] & rows[None, :, :]
            alive = intersections.any(axis=2)
            refined: list[tuple[np.ndarray, dict[int, int]]] = []
            for group_index, (_, assignment) in enumerate(groups):
                for source_index in np.flatnonzero(alive[group_index]):
                    extended = dict(assignment)
                    extended[target_id] = sources[source_index]
                    refined.append((intersections[group_index, source_index], extended))
            groups = refined
            if not groups:
                return []
        return [(state._to_mask(row), assignment) for row, assignment in groups]

    def gather_probabilities(self, state: _NumpyState, mask: int) -> list[float]:
        """Gather the float column at the mask's member indices."""
        return state.probabilities[state._member_indices(mask)].tolist()

    def probability_mass(self, state: _NumpyState, mask: int) -> float:
        """Sequential (``cumsum``) accumulation over the gathered members.

        ``cumsum`` adds left to right in C — the identical IEEE-754 chain
        the Python backend's ``for`` loop performs — so the result is
        bit-identical, not merely close.
        """
        selected = state.probabilities[state._member_indices(mask)]
        if selected.size == 0:
            return 0.0
        return float(selected.cumsum()[-1])

    def max_probability(self, state: _NumpyState) -> float:
        """Largest probability-column entry."""
        return float(state.probabilities.max())
