"""The pure-Python kernel backend: big-int bitmask loops, always available.

This backend *is* the compiled core's original evaluation code, verbatim:
coverage tests AND Python ints out of the artifact's dicts, refinement walks
the source partitions in sorted order, and probability accumulation is a
sequential loop over the float tuple.  It binds the compiled artifact itself
as its state (the neutral columns already are its evaluation format), so it
costs nothing beyond what the engine always paid — and it defines the
byte-exact reference behaviour the numpy backend is pinned against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.engine.kernels.base import Kernels
from repro.mapping.mapping_set import iter_mapping_ids

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.compiled import CompiledMappingSet, RewriteGroup

__all__ = ["PythonKernels"]


class PythonKernels(Kernels):
    """Arbitrary-width Python-int bitmask kernels (the reference backend)."""

    name = "python"
    releases_gil = False

    def bind(self, compiled: "CompiledMappingSet") -> "CompiledMappingSet":
        """The neutral int-dict columns are this backend's native state."""
        return compiled

    def coverage_mask(
        self, state: "CompiledMappingSet", target_ids: Sequence[int]
    ) -> int:
        """AND the coverage masks of ``target_ids``, short-circuiting at zero."""
        covered = state._covered_masks
        mask = state.all_mask
        for target_id in target_ids:
            mask &= covered.get(target_id, 0)
            if not mask:
                break
        return mask

    def union_coverage(
        self, state: "CompiledMappingSet", target_sets: Sequence[Sequence[int]]
    ) -> int:
        """OR the per-set coverage intersections, short-circuiting when saturated."""
        mask = 0
        all_mask = state.all_mask
        for target_ids in target_sets:
            mask |= self.coverage_mask(state, target_ids)
            if mask == all_mask:
                break
        return mask

    def refine_groups(
        self, state: "CompiledMappingSet", required: Sequence[int], candidates: int
    ) -> list["RewriteGroup"]:
        """One-target-at-a-time refinement over the sorted source partitions."""
        if not candidates:
            return []
        target_sources = state._target_sources
        groups: list["RewriteGroup"] = [(candidates, {})]
        for target_id in required:
            refined: list["RewriteGroup"] = []
            for group_mask, assignment in groups:
                for source_id, source_mask in target_sources.get(target_id, ()):
                    shared = group_mask & source_mask
                    if shared:
                        extended = dict(assignment)
                        extended[target_id] = source_id
                        refined.append((shared, extended))
            groups = refined
        return groups

    def gather_probabilities(self, state: "CompiledMappingSet", mask: int) -> list[float]:
        """Index the probability tuple by the mask's set bits, ascending."""
        probabilities = state.probabilities
        return [probabilities[mapping_id] for mapping_id in iter_mapping_ids(mask)]

    def probability_mass(self, state: "CompiledMappingSet", mask: int) -> float:
        """Sequential left-to-right sum over the mask's members."""
        probabilities = state.probabilities
        total = 0.0
        for mapping_id in iter_mapping_ids(mask):
            total += probabilities[mapping_id]
        return total

    def max_probability(self, state: "CompiledMappingSet") -> float:
        """Largest probability-column entry."""
        return max(state.probabilities)
