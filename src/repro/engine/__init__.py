"""The engine facade: stateful dataspace sessions over the paper's pipeline.

This package is the library's primary public API.  A
:class:`~repro.engine.dataspace.Dataspace` session owns the pipeline
artifacts (schema matching → top-h mapping set → block tree → source
document), builds them lazily, memoizes them, and invalidates exactly the
affected suffix when configuration changes.  Queries go through a fluent
builder that compiles twig strings into reusable
:class:`~repro.engine.prepared.PreparedQuery` objects and picks an
evaluation :class:`~repro.engine.plans.QueryPlan` automatically — by
default the ``compiled`` plan, which runs on the mapping set's bitset view
(:mod:`repro.engine.compiled`) and evaluates each distinct query rewrite
exactly once; Algorithm 3 (``basic``) and Algorithm 4 (``blocktree``)
remain available as forced overrides::

    from repro.engine import Dataspace

    ds = Dataspace.from_dataset("D7", h=100)
    result = ds.query("Order/DeliverTo/Contact/EMail").top_k(10).execute()
    print(ds.query("Q7").explain().format())

The seed free functions (:func:`repro.evaluate_ptq_basic`,
:func:`repro.evaluate_ptq_blocktree`, :func:`repro.evaluate_topk_ptq`)
remain available as thin wrappers over the plan layer.
"""

from repro.engine.cache import CacheKey, CacheStats, ResultCache
from repro.engine.compiled import CompiledMappingSet, compile_mapping_set
from repro.engine.dataspace import Dataspace, EngineSnapshot
from repro.engine.delta import (
    DeltaReport,
    MappingDelta,
    apply_mapping_delta,
)
from repro.engine.locking import ReadWriteLock
from repro.engine.planner import (
    CostModel,
    PlanDecision,
    PlanEstimate,
    QueryPlanner,
    StatisticsCollector,
    canonical_text,
    default_service_workers,
    normalize_query_text,
    recommend_scatter_workers,
)
from repro.engine.plans import (
    BasicPlan,
    BlockTreePlan,
    CompiledPlan,
    ExplainReport,
    QueryPlan,
    available_plans,
    plan_for,
    register_plan,
)
from repro.engine.prepared import PreparedQuery, QueryBuilder
from repro.engine.streaming import (
    BatchEffect,
    DeltaBatch,
    DeltaBatchReport,
    Subscription,
    SubscriptionRegistry,
    SubscriptionUpdate,
    apply_delta_batch,
    apply_update,
)

__all__ = [
    "Dataspace",
    "EngineSnapshot",
    "MappingDelta",
    "DeltaReport",
    "apply_mapping_delta",
    "DeltaBatch",
    "DeltaBatchReport",
    "BatchEffect",
    "apply_delta_batch",
    "SubscriptionUpdate",
    "Subscription",
    "SubscriptionRegistry",
    "apply_update",
    "CacheKey",
    "CacheStats",
    "ResultCache",
    "ReadWriteLock",
    "PreparedQuery",
    "QueryBuilder",
    "QueryPlan",
    "BasicPlan",
    "BlockTreePlan",
    "CompiledPlan",
    "CompiledMappingSet",
    "compile_mapping_set",
    "ExplainReport",
    "plan_for",
    "register_plan",
    "available_plans",
    "QueryPlanner",
    "CostModel",
    "PlanDecision",
    "PlanEstimate",
    "StatisticsCollector",
    "canonical_text",
    "normalize_query_text",
    "recommend_scatter_workers",
    "default_service_workers",
]
