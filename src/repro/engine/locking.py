"""A writer-preferring read-write lock for the engine's session state.

Sessions are read-mostly: many threads execute queries (reads of the memoized
artifacts) while ``configure()`` / ``invalidate()`` writes are rare.  A plain
mutex would serialise the readers' snapshot step; :class:`ReadWriteLock` lets
any number of readers proceed together while giving waiting writers
preference, so a steady query stream cannot starve a reconfiguration.

The lock is intentionally non-reentrant — the engine's locking discipline is
to acquire it once at the public boundary (``snapshot``, ``configure``, the
artifact properties) and do all nested work through unlocked internal
helpers.  Lock *upgrades* are expressed as release-then-reacquire with a
double-check, never by holding both modes at once.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Multiple-reader / single-writer lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._waiting_writers = 0

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then join the readers."""
        with self._cond:
            while self._writer_active or self._waiting_writers:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Leave the reader group, waking writers when the group drains."""
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock is exclusively ours."""
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Release exclusive ownership and wake everyone waiting."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` — shared (reader) critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` — exclusive (writer) critical section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
