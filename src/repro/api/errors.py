"""Wire-level error taxonomy: stable codes ⇄ exception classes, both ways.

The serving stack needs two guarantees the bare exception hierarchy cannot
give on its own:

* **Every failure a caller can observe has a stable code.**  The engine's
  exceptions (:mod:`repro.exceptions`) carry their code on the class; this
  module adds the errors that only exist at the serving boundary — admission
  shed, payload limits, framing violations, request deadlines — and builds
  the complete registry.
* **Codes map back to classes.**  A remote client that receives an error
  payload re-raises the *same* exception type the engine would have raised
  in process, so ``except repro.TwigParseError:`` works identically against
  a :class:`~repro.net.client.ReproClient` and a local
  :class:`~repro.engine.Dataspace`.

:func:`wire_error` and :func:`error_from_wire` are the two directions of
that mapping; :data:`CODE_TO_ERROR` is the registry (exported for the
protocol documentation and the conformance tests).
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ReproError

__all__ = [
    "BadRequestError",
    "ProtocolError",
    "PayloadTooLargeError",
    "OverloadedError",
    "ShuttingDownError",
    "RequestTimeoutError",
    "CODE_TO_ERROR",
    "error_code",
    "error_for_code",
    "wire_error",
    "error_from_wire",
]


class BadRequestError(ReproError):
    """A structurally invalid request: unknown operation, missing or
    ill-typed fields, or an unsupported protocol version."""

    code = "bad-request"


class ProtocolError(ReproError):
    """A violation of the binary framing or HTTP envelope itself (bad magic,
    bad opcode, truncated header, malformed JSON payload).

    Protocol errors are not recoverable within a connection: the server
    reports the error and closes, since the stream position can no longer
    be trusted."""

    code = "protocol"


class PayloadTooLargeError(ProtocolError):
    """A frame or HTTP body exceeded the server's configured payload cap."""

    code = "payload-too-large"


class OverloadedError(ReproError):
    """The server shed this request: in-flight and queued work are at their
    admission-control caps.

    ``retry_after`` is the server's backoff hint in seconds.  Shedding is
    *typed and immediate* by design — an overloaded server answers with this
    error instead of letting requests time out in an unbounded queue."""

    code = "overloaded"

    def __init__(self, message: str, *, retry_after: float = 0.1) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ShuttingDownError(OverloadedError):
    """The server is draining: in-flight requests finish, new ones are
    refused.  ``retry_after`` hints when a replacement worker may be up."""

    code = "shutting-down"


class RequestTimeoutError(ReproError):
    """The request exceeded the server's per-request deadline.

    The response is sent as soon as the deadline passes; the underlying
    evaluation cannot be interrupted mid-kernel, so its (discarded) work may
    continue briefly in the executor."""

    code = "timeout"


def _walk(cls: type) -> list[type]:
    found = [cls]
    for sub in cls.__subclasses__():
        found.extend(_walk(sub))
    return found


def _build_registry() -> dict[str, type[ReproError]]:
    registry: dict[str, type[ReproError]] = {}
    for cls in _walk(ReproError):
        code = cls.__dict__.get("code")
        if code is None:
            continue  # class inherits its parent's code; parent owns it
        if code in registry:  # pragma: no cover - guarded by the test suite
            raise RuntimeError(
                f"duplicate error code {code!r}: {registry[code].__name__} "
                f"and {cls.__name__}"
            )
        registry[code] = cls
    return registry


#: Stable code -> exception class, covering the whole taxonomy: the engine's
#: errors (``repro.exceptions``) plus the serving-boundary errors above.
CODE_TO_ERROR: dict[str, type[ReproError]] = _build_registry()


def error_code(error: BaseException) -> str:
    """The stable code of ``error`` (``"internal"`` for foreign exceptions)."""
    if isinstance(error, ReproError):
        return error.code
    return ReproError.code


def error_for_code(code: str) -> type[ReproError]:
    """The exception class registered under ``code``.

    Unknown codes (a newer server talking to an older client) degrade to
    :class:`ReproError` rather than failing, so forward compatibility never
    turns a typed error into a crash.
    """
    return CODE_TO_ERROR.get(code, ReproError)


def wire_error(error: BaseException) -> dict:
    """Serialize any exception into the protocol's error payload.

    The payload is JSON-serialisable and deterministic for a given error:
    ``{"code", "type", "message"}`` plus ``"retry_after"`` for admission
    shed.  Foreign (non-:class:`ReproError`) exceptions map to the base
    ``"internal"`` code with their class name preserved in ``type``.
    """
    payload = {
        "code": error_code(error),
        "type": type(error).__name__,
        "message": str(error),
    }
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = round(float(retry_after), 6)
    return payload


def error_from_wire(payload: dict) -> ReproError:
    """Reconstruct the typed exception a wire error payload describes.

    The inverse of :func:`wire_error`: the registered class for the payload's
    code is instantiated with the transmitted message (and ``retry_after``
    where the class carries one), so remote failures re-raise as the same
    types in-process code would see.
    """
    code = str(payload.get("code", ReproError.code))
    message = str(payload.get("message", ""))
    cls = error_for_code(code)
    if issubclass(cls, OverloadedError):
        error: ReproError = cls(
            message, retry_after=float(payload.get("retry_after", 0.1))
        )
    else:
        error = cls(message)
    return error
