"""The versioned, transport-neutral wire schema: typed requests and responses.

Every operation the system serves — ``query``, ``batch``, ``apply-delta``,
``explain``, ``calibrate``, ``stats``, ``ping`` — is described by one frozen
request dataclass and one frozen response dataclass, with a canonical JSON
codec.  The same types are used by every surface: the asyncio server decodes
requests and encodes responses with them, the sync client does the reverse,
and the in-process :class:`~repro.api.handler.ApiHandler` maps them onto the
engine — which is what makes "server responses are byte-identical to
in-process execution" a checkable property rather than a hope.

The envelope is ``{"v": PROTOCOL_VERSION, "op": <operation>, "body": {...}}``
for requests and responses alike; errors travel as the ``"error"`` operation
with the :mod:`repro.api.errors` payload as body.  Version negotiation is
deliberately blunt: a mismatched ``v`` is a
:class:`~repro.api.errors.BadRequestError` — the schema is versioned so it
*can* evolve, not so two versions interoperate silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Optional, Type, Union

from repro.api.errors import BadRequestError, ProtocolError, error_from_wire, wire_error
from repro.api.serialize import canonical_json

__all__ = [
    "PROTOCOL_VERSION",
    "Request",
    "QueryRequest",
    "BatchRequest",
    "DeltaRequest",
    "DeltaBatchRequest",
    "SubscribeRequest",
    "ExplainRequest",
    "CalibrateRequest",
    "StatsRequest",
    "PingRequest",
    "Response",
    "QueryResponse",
    "BatchResponse",
    "DeltaResponse",
    "DeltaBatchResponse",
    "ExplainResponse",
    "CalibrateResponse",
    "StatsResponse",
    "PingResponse",
    "ErrorResponse",
    "encode_message",
    "decode_request",
    "decode_response",
]

#: Wire schema version; bumped on any incompatible envelope or body change.
PROTOCOL_VERSION = 1


def _check_envelope(payload: Any) -> tuple[str, dict]:
    if not isinstance(payload, dict):
        raise BadRequestError("message envelope must be a JSON object")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise BadRequestError(
            f"unsupported protocol version {version!r} "
            f"(this build speaks v{PROTOCOL_VERSION})"
        )
    op = payload.get("op")
    if not isinstance(op, str):
        raise BadRequestError("message envelope is missing its 'op' field")
    body = payload.get("body", {})
    if not isinstance(body, dict):
        raise BadRequestError(f"body of {op!r} must be a JSON object")
    return op, body


@dataclass(frozen=True)
class _Message:
    """Shared codec machinery of requests and responses."""

    #: Operation name in the envelope; set by each concrete subclass.
    op: ClassVar[str] = ""

    def to_json(self) -> dict:
        """The full envelope payload: ``{"v", "op", "body"}``."""
        body = {}
        for item in fields(self):
            value = getattr(self, item.name)
            body[item.name] = list(value) if isinstance(value, tuple) else value
        return {"v": PROTOCOL_VERSION, "op": type(self).op, "body": body}

    @classmethod
    def _from_body(cls, body: dict):
        names = {item.name for item in fields(cls)}
        unknown = set(body) - names
        if unknown:
            raise BadRequestError(
                f"unknown field(s) for {cls.op!r}: {', '.join(sorted(unknown))}"
            )
        kwargs = {}
        for item in fields(cls):
            if item.name in body:
                value = body[item.name]
                kwargs[item.name] = tuple(value) if isinstance(value, list) else value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise BadRequestError(f"malformed {cls.op!r} body: {exc}") from exc


# --------------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Request(_Message):
    """Base class of every request message."""


@dataclass(frozen=True)
class QueryRequest(Request):
    """Evaluate one probabilistic twig query.

    ``query`` is a query id (``Q1``..``Q10``) or twig pattern; ``k`` restricts
    to top-k; ``plan`` forces an evaluation plan; ``stream`` asks the binary
    protocol to emit answers as individual frames as the top-k merge produces
    them (ignored by the HTTP transport, which always sends one body).
    """

    op: ClassVar[str] = "query"
    query: str = ""
    k: Optional[int] = None
    plan: Optional[str] = None
    use_cache: bool = True
    stream: bool = False


@dataclass(frozen=True)
class BatchRequest(Request):
    """Evaluate many queries as one batch sharing prefix work and snapshot."""

    op: ClassVar[str] = "batch"
    queries: tuple[str, ...] = ()
    k: Optional[int] = None
    plan: Optional[str] = None
    use_cache: bool = True


@dataclass(frozen=True)
class DeltaRequest(Request):
    """Apply a mapping delta to the served session (writer side).

    ``delta`` is the canonical payload of
    :meth:`repro.engine.delta.MappingDelta.to_payload`.
    """

    op: ClassVar[str] = "apply-delta"
    delta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DeltaBatchRequest(Request):
    """Apply a coalesced batch of mapping deltas in one commit (writer side).

    ``deltas`` is a sequence of canonical
    :meth:`repro.engine.delta.MappingDelta.to_payload` payloads, applied in
    order as one :class:`~repro.engine.streaming.DeltaBatch`: one patched
    compile, one ``delta_epoch`` bump, one round of subscription
    notifications.
    """

    op: ClassVar[str] = "apply-delta-batch"
    deltas: tuple = ()


@dataclass(frozen=True)
class SubscribeRequest(Request):
    """Register a standing query and stream its updates (binary protocol only).

    The server answers with the subscription's initial
    :class:`~repro.engine.streaming.SubscriptionUpdate` payload and then
    streams one frame per non-empty update until the client ends the stream.
    The HTTP transport rejects this operation — a request/response cycle
    cannot carry an open-ended update stream.
    """

    op: ClassVar[str] = "subscribe"
    query: str = ""
    k: Optional[int] = None


@dataclass(frozen=True)
class ExplainRequest(Request):
    """Report how a query would be (and was) evaluated."""

    op: ClassVar[str] = "explain"
    query: str = ""
    k: Optional[int] = None
    plan: Optional[str] = None
    analyze: bool = False


@dataclass(frozen=True)
class CalibrateRequest(Request):
    """Measure every candidate strategy once to warm the server's planner."""

    op: ClassVar[str] = "calibrate"
    query: str = ""
    k: Optional[int] = None
    plans: Optional[tuple[str, ...]] = None
    shard_counts: tuple[int, ...] = ()


@dataclass(frozen=True)
class StatsRequest(Request):
    """Fetch service, session, admission and connection statistics."""

    op: ClassVar[str] = "stats"


@dataclass(frozen=True)
class PingRequest(Request):
    """Liveness probe; answered without touching the engine or the queue."""

    op: ClassVar[str] = "ping"


# --------------------------------------------------------------------------- #
# Responses
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Response(_Message):
    """Base class of every response message."""


@dataclass(frozen=True)
class QueryResponse(Response):
    """One evaluated query: the request's query text (echoed) and the
    canonical result payload (:func:`repro.api.serialize.result_to_json`).

    Deliberately free of timings or other volatile fields, so equal results
    encode to equal bytes and the differential suite can compare server
    responses against in-process execution byte for byte."""

    op: ClassVar[str] = "query"
    query: str = ""
    result: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BatchResponse(Response):
    """Results of a batch, positionally aligned with the request's queries."""

    op: ClassVar[str] = "batch"
    queries: tuple[str, ...] = ()
    results: tuple[dict, ...] = ()


@dataclass(frozen=True)
class DeltaResponse(Response):
    """The applied delta's report
    (:func:`repro.api.serialize.delta_report_to_json`)."""

    op: ClassVar[str] = "apply-delta"
    report: dict = field(default_factory=dict)


@dataclass(frozen=True)
class DeltaBatchResponse(Response):
    """The applied batch's report
    (:func:`repro.api.serialize.delta_batch_report_to_json`)."""

    op: ClassVar[str] = "apply-delta-batch"
    report: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ExplainResponse(Response):
    """The explain report payload
    (:func:`repro.api.serialize.explain_to_json`)."""

    op: ClassVar[str] = "explain"
    report: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CalibrateResponse(Response):
    """Measured per-strategy latencies, as ``{strategy: latency_ms}``."""

    op: ClassVar[str] = "calibrate"
    timings: dict = field(default_factory=dict)


@dataclass(frozen=True)
class StatsResponse(Response):
    """Service counters, latency percentiles, cache/session statistics, and
    the server's admission-control and connection counters."""

    op: ClassVar[str] = "stats"
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PingResponse(Response):
    """Liveness acknowledgement."""

    op: ClassVar[str] = "ping"


@dataclass(frozen=True)
class ErrorResponse(Response):
    """A typed failure: the :func:`repro.api.errors.wire_error` payload.

    ``to_error()`` reconstructs the exception; clients raise it so remote
    failures surface as the same types in-process callers see."""

    op: ClassVar[str] = "error"
    error: dict = field(default_factory=dict)

    @classmethod
    def from_exception(cls, error: BaseException) -> "ErrorResponse":
        """Wrap any exception into its wire representation."""
        return cls(error=wire_error(error))

    def to_error(self):
        """The typed :class:`~repro.exceptions.ReproError` this payload names."""
        return error_from_wire(self.error)


_REQUEST_TYPES: dict[str, Type[Request]] = {
    cls.op: cls
    for cls in (
        QueryRequest,
        BatchRequest,
        DeltaRequest,
        DeltaBatchRequest,
        SubscribeRequest,
        ExplainRequest,
        CalibrateRequest,
        StatsRequest,
        PingRequest,
    )
}

_RESPONSE_TYPES: dict[str, Type[Response]] = {
    cls.op: cls
    for cls in (
        QueryResponse,
        BatchResponse,
        DeltaResponse,
        DeltaBatchResponse,
        ExplainResponse,
        CalibrateResponse,
        StatsResponse,
        PingResponse,
        ErrorResponse,
    )
}


def encode_message(message: Union[Request, Response]) -> bytes:
    """Encode a request or response to canonical envelope bytes."""
    return canonical_json(message.to_json())


def _decode_payload(data: bytes) -> Any:
    import json

    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"message payload is not valid JSON: {exc}") from exc


def decode_request(data: bytes) -> Request:
    """Decode envelope bytes into the matching typed request.

    Raises :class:`~repro.api.errors.ProtocolError` on non-JSON payloads and
    :class:`~repro.api.errors.BadRequestError` on a bad envelope, unknown
    operation, or ill-formed body.
    """
    op, body = _check_envelope(_decode_payload(data))
    cls = _REQUEST_TYPES.get(op)
    if cls is None:
        raise BadRequestError(
            f"unknown operation {op!r}; expected one of "
            f"{', '.join(sorted(_REQUEST_TYPES))}"
        )
    return cls._from_body(body)


def decode_response(data: bytes) -> Response:
    """Decode envelope bytes into the matching typed response
    (:class:`ErrorResponse` included — the caller decides whether to raise)."""
    op, body = _check_envelope(_decode_payload(data))
    cls = _RESPONSE_TYPES.get(op)
    if cls is None:
        raise BadRequestError(
            f"unknown response operation {op!r}; expected one of "
            f"{', '.join(sorted(_RESPONSE_TYPES))}"
        )
    return cls._from_body(body)
