"""Transport-neutral dispatch of typed requests onto the engine.

:class:`ApiHandler` is the single place where a wire request becomes engine
work.  The asyncio server (:mod:`repro.net.server`) calls it from executor
threads; tests call it directly to pin the in-process reference responses
that server responses must match byte for byte.  Keeping dispatch out of the
server means the differential property — *same request, same bytes, with or
without the network* — is a statement about one shared code path, not about
two implementations agreeing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.api.errors import BadRequestError
from repro.api.messages import (
    BatchRequest,
    BatchResponse,
    CalibrateRequest,
    CalibrateResponse,
    DeltaBatchRequest,
    DeltaBatchResponse,
    DeltaRequest,
    DeltaResponse,
    ExplainRequest,
    ExplainResponse,
    PingRequest,
    PingResponse,
    QueryRequest,
    QueryResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SubscribeRequest,
)
from repro.api.serialize import (
    delta_batch_report_to_json,
    delta_report_to_json,
    explain_to_json,
    result_to_json,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service import QueryService

__all__ = ["ApiHandler"]


class ApiHandler:
    """Map typed API requests onto a :class:`~repro.service.QueryService`.

    The handler is stateless beyond the service it wraps, and thread-safe to
    the exact extent the service is — which is what lets the server dispatch
    concurrent requests to it from a thread pool without coordination.

    ``extra_stats`` (an optional zero-argument callable returning a dict) is
    merged into :class:`~repro.api.messages.StatsResponse` payloads under the
    ``"server"`` key; the network server uses it to surface admission-control
    and connection counters through the same operation.
    """

    def __init__(self, service: "QueryService", *, extra_stats=None) -> None:
        self._service = service
        self._extra_stats = extra_stats

    @property
    def service(self) -> "QueryService":
        """The query service requests are dispatched to."""
        return self._service

    def handle(self, request: Request) -> Response:
        """Execute ``request`` and return its typed response.

        Engine errors propagate as their :class:`~repro.exceptions.ReproError`
        subclasses — the transport layer (or direct caller) decides whether
        to raise them or encode them as
        :class:`~repro.api.messages.ErrorResponse`.
        """
        if isinstance(request, QueryRequest):
            return self.query(request)
        if isinstance(request, BatchRequest):
            return self.batch(request)
        if isinstance(request, DeltaRequest):
            return self.apply_delta(request)
        if isinstance(request, DeltaBatchRequest):
            return self.apply_delta_batch(request)
        if isinstance(request, SubscribeRequest):
            raise BadRequestError(
                "'subscribe' is a streaming operation; it is only served by "
                "the binary protocol's subscription stream"
            )
        if isinstance(request, ExplainRequest):
            return self.explain(request)
        if isinstance(request, CalibrateRequest):
            return self.calibrate(request)
        if isinstance(request, StatsRequest):
            return self.stats(request)
        if isinstance(request, PingRequest):
            return PingResponse()
        raise BadRequestError(f"unhandled request type {type(request).__name__}")

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def _execute(
        self, query: str, *, k: Optional[int], plan: Optional[str], use_cache: bool
    ):
        if not query:
            raise BadRequestError("'query' must be a non-empty string")
        if use_cache:
            return self._service.execute(query, k=k, plan=plan)
        # A per-request cache bypass steps around the service (whose cache
        # policy is fixed at construction) straight onto the session/corpus;
        # results are byte-identical either way, only timing stats differ.
        corpus = self._service.corpus
        if corpus is not None:
            return corpus.execute(query, k=k, use_cache=False)
        return self._service.dataspace.execute(query, k=k, plan=plan, use_cache=False)

    def query(self, request: QueryRequest) -> QueryResponse:
        """Evaluate one query; the result payload is canonical JSON."""
        result = self._execute(
            request.query, k=request.k, plan=request.plan, use_cache=request.use_cache
        )
        return QueryResponse(query=request.query, result=result_to_json(result))

    def batch(self, request: BatchRequest) -> BatchResponse:
        """Evaluate a batch with shared prefix work and one snapshot."""
        queries = list(request.queries)
        if not queries:
            raise BadRequestError("'queries' must list at least one query")
        if request.use_cache:
            results = self._service.execute_many(queries, k=request.k, plan=request.plan)
        else:
            corpus = self._service.corpus
            if corpus is not None:
                results = corpus.execute_batch(queries, k=request.k, use_cache=False)
            else:
                results = self._service.dataspace.query_batch(
                    queries, k=request.k, plan=request.plan, use_cache=False
                )
        return BatchResponse(
            queries=tuple(queries),
            results=tuple(result_to_json(result) for result in results),
        )

    def apply_delta(self, request: DeltaRequest) -> DeltaResponse:
        """Apply a mapping delta; returns the canonical delta report."""
        from repro.engine.delta import MappingDelta

        if not request.delta:
            raise BadRequestError("'delta' must be a non-empty delta payload")
        delta = MappingDelta.from_payload(request.delta)
        report = self._service.apply_delta(delta)
        return DeltaResponse(report=delta_report_to_json(report))

    def apply_delta_batch(self, request: DeltaBatchRequest) -> DeltaBatchResponse:
        """Apply a coalesced delta batch; returns the canonical batch report."""
        from repro.engine.delta import MappingDelta
        from repro.engine.streaming import DeltaBatch

        if not request.deltas:
            raise BadRequestError("'deltas' must list at least one delta payload")
        try:
            batch = DeltaBatch.build(
                MappingDelta.from_payload(item) for item in request.deltas
            )
        except (TypeError, AttributeError) as exc:
            raise BadRequestError(f"malformed delta payload: {exc}") from exc
        report = self._service.apply_delta_batch(batch)
        return DeltaBatchResponse(report=delta_batch_report_to_json(report))

    def explain(self, request: ExplainRequest) -> ExplainResponse:
        """Explain (optionally analyze) one query against the session."""
        if not request.query:
            raise BadRequestError("'query' must be a non-empty string")
        report = self._service.dataspace.explain(
            request.query, k=request.k, plan=request.plan, analyze=request.analyze
        )
        return ExplainResponse(report=explain_to_json(report))

    def calibrate(self, request: CalibrateRequest) -> CalibrateResponse:
        """Measure candidate strategies to warm the session's cost model."""
        if not request.query:
            raise BadRequestError("'query' must be a non-empty string")
        timings = self._service.dataspace.calibrate(
            request.query,
            k=request.k,
            plans=list(request.plans) if request.plans is not None else None,
            shard_counts=list(request.shard_counts),
        )
        return CalibrateResponse(
            timings={name: round(float(ms), 3) for name, ms in timings.items()}
        )

    def stats(self, request: StatsRequest) -> StatsResponse:
        """Service counters plus (when attached) the server's own counters."""
        stats: dict = dict(self._service.stats())
        if self._extra_stats is not None:
            stats["server"] = self._extra_stats()
        return StatsResponse(stats=stats)


def _coerce_service(
    target: Union["QueryService", object], *, use_cache: bool = True
) -> tuple["QueryService", bool]:
    """Wrap a Dataspace/ShardedCorpus in a service; pass services through.

    Returns ``(service, owned)`` — ``owned`` tells the caller whether it is
    responsible for closing the service it received.
    """
    from repro.service import QueryService

    if isinstance(target, QueryService):
        return target, False
    return QueryService(target, use_cache=use_cache), True
