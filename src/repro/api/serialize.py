"""Canonical serialization for every result shape the system serves.

One codec per result type, used *everywhere* a result crosses a process
boundary: the CLI's ``--json`` output, the network server's response bodies,
the golden snapshot fixtures, and the sync client's decoded views.  Before
this module each of those surfaces built its own ad-hoc dicts, which is how
three subtly different JSON spellings of a PTQ answer came to exist; now
there is exactly one.

Canonical means **byte-stable**: serializing equal results always produces
equal bytes (through :func:`canonical_json`, compact + sorted keys), and
answer probabilities are encoded with ``float.hex()`` — exact,
platform-independent representations — so "byte-identical across the wire"
is a meaningful, testable property.  The golden D1–D10 fixtures and the
server differential suite both pin it.

The ``from_json`` side decodes payloads into light, typed views
(:class:`QueryAnswer` / :class:`QueryResult`) or reconstructed engine
dataclasses (:class:`~repro.engine.plans.ExplainReport`,
:class:`~repro.engine.delta.DeltaReport`,
:class:`~repro.corpus.engine.CorpusExecution`), so remote callers work with
the same shapes in-process callers do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.api.errors import BadRequestError
from repro.store.artifacts import canonical_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.engine import CorpusExecution
    from repro.engine.delta import DeltaReport
    from repro.engine.plans import ExplainReport
    from repro.engine.streaming import DeltaBatchReport, SubscriptionUpdate
    from repro.query.results import PTQAnswer, PTQResult

__all__ = [
    "canonical_json",
    "QueryAnswer",
    "QueryResult",
    "SubscriptionEvent",
    "answer_to_json",
    "result_to_json",
    "result_from_json",
    "value_distribution_to_json",
    "explain_to_json",
    "explain_from_json",
    "delta_report_to_json",
    "delta_report_from_json",
    "delta_batch_report_to_json",
    "delta_batch_report_from_json",
    "subscription_update_to_json",
    "subscription_update_from_json",
    "execution_to_json",
    "execution_from_json",
]


def canonical_json(payload) -> bytes:
    """Canonical JSON bytes of ``payload``: compact, key-sorted, NaN-free.

    Equal logical payloads always produce equal bytes — the property the
    differential suite's byte-identity assertions and the artifact store's
    content addressing both build on.
    """
    return canonical_bytes(payload)


# --------------------------------------------------------------------------- #
# PTQ results
# --------------------------------------------------------------------------- #
def answer_to_json(answer: "PTQAnswer") -> dict:
    """Canonical payload of one PTQ answer.

    ``probability`` is ``float.hex()``-encoded (exact); ``matches`` are the
    canonical ``(query node, document node)`` pair lists, sorted.
    """
    return {
        "mapping_id": answer.mapping_id,
        "probability": float(answer.probability).hex(),
        "matches": sorted([list(pair) for pair in match] for match in answer.matches),
    }


def result_to_json(result: "PTQResult") -> dict:
    """Canonical payload of a full PTQ result (answers sorted by mapping id).

    This is the one serialization of a result: the CLI's ``--json``, the
    network server, and the golden snapshot fixtures all emit exactly this
    shape, so they can be compared byte for byte.
    """
    answers = [
        answer_to_json(answer)
        for answer in sorted(result, key=lambda a: a.mapping_id)
    ]
    return {"num_answers": len(answers), "answers": answers}


def value_distribution_to_json(result: "PTQResult") -> list[dict]:
    """The output node's value distribution, most probable first.

    Requires the result's source document (in-process only; the wire result
    carries matches, not document values)."""
    distribution = sorted(
        result.value_distribution().items(), key=lambda kv: (-kv[1], str(kv[0]))
    )
    return [
        {"value": value, "probability": probability}
        for value, probability in distribution
    ]


@dataclass(frozen=True)
class QueryAnswer:
    """Typed client-side view of one PTQ answer decoded from the wire.

    The same information as :class:`repro.query.results.PTQAnswer` — mapping
    id, exact probability, canonical matches — without requiring the engine's
    mapping set in the client process.
    """

    mapping_id: int
    probability_hex: str
    matches: tuple[tuple[tuple[int, int], ...], ...]

    @property
    def probability(self) -> float:
        """The exact probability decoded from its hex encoding."""
        return float.fromhex(self.probability_hex)

    @property
    def num_matches(self) -> int:
        """Number of matches this mapping produced."""
        return len(self.matches)

    @property
    def is_empty(self) -> bool:
        """``True`` when the mapping produced no match at all."""
        return not self.matches

    @classmethod
    def from_json(cls, payload: dict) -> "QueryAnswer":
        """Decode one canonical answer payload."""
        try:
            return cls(
                mapping_id=int(payload["mapping_id"]),
                probability_hex=str(payload["probability"]),
                matches=tuple(
                    tuple((int(pair[0]), int(pair[1])) for pair in match)
                    for match in payload["matches"]
                ),
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise BadRequestError(f"malformed answer payload: {exc}") from exc

    def to_json(self) -> dict:
        """Re-encode the canonical payload this view was decoded from."""
        return {
            "mapping_id": self.mapping_id,
            "probability": self.probability_hex,
            "matches": sorted([list(pair) for pair in match] for match in self.matches),
        }


@dataclass(frozen=True)
class QueryResult:
    """Typed client-side view of a full PTQ result decoded from the wire.

    ``query`` is the request's query text (echoed by the server); ``answers``
    are in canonical (mapping id) order.  Iteration and ``len()`` mirror
    :class:`~repro.query.results.PTQResult`.
    """

    query: str
    answers: tuple[QueryAnswer, ...]

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self):
        return iter(self.answers)

    def total_probability(self) -> float:
        """Sum of the probabilities of the returned answers."""
        return sum(answer.probability for answer in self.answers)

    def non_empty(self) -> list[QueryAnswer]:
        """Answers whose mapping produced at least one match."""
        return [answer for answer in self.answers if not answer.is_empty]

    @classmethod
    def from_json(cls, payload: dict, *, query: str = "") -> "QueryResult":
        """Decode a canonical result payload (as produced by
        :func:`result_to_json`)."""
        try:
            answers = tuple(
                QueryAnswer.from_json(item) for item in payload["answers"]
            )
        except (KeyError, TypeError) as exc:
            raise BadRequestError(f"malformed result payload: {exc}") from exc
        return cls(query=query, answers=answers)

    def to_json(self) -> dict:
        """Re-encode the canonical payload this view was decoded from."""
        return {
            "num_answers": len(self.answers),
            "answers": [answer.to_json() for answer in self.answers],
        }


def result_from_json(payload: dict, *, query: str = "") -> QueryResult:
    """Decode a canonical result payload into a :class:`QueryResult` view."""
    return QueryResult.from_json(payload, query=query)


# --------------------------------------------------------------------------- #
# Explain reports
# --------------------------------------------------------------------------- #
def explain_to_json(report: "ExplainReport") -> dict:
    """Canonical payload of an explain report (delegates to ``to_dict``)."""
    return report.to_dict()


def explain_from_json(payload: dict) -> "ExplainReport":
    """Reconstruct an :class:`~repro.engine.plans.ExplainReport` from its
    canonical payload, so remote callers can use ``format()`` and the typed
    fields exactly as in-process callers do."""
    from repro.engine.plans import ExplainReport

    try:
        return ExplainReport(
            query=payload["query"],
            plan=payload["plan"],
            reason=payload["reason"],
            num_mappings=payload["num_mappings"],
            num_embeddings=payload["num_embeddings"],
            num_relevant=payload["num_relevant"],
            relevant_mapping_ids=tuple(payload["relevant_mapping_ids"]),
            k=payload["k"],
            num_selected=payload["num_selected"],
            num_blocks=payload["num_blocks"],
            anchored_paths=tuple(payload["anchored_paths"]),
            timings_ms=dict(payload["timings_ms"]),
            num_answers=payload["num_answers"],
            num_non_empty=payload["num_non_empty"],
            cache=payload.get("cache"),
            cache_stats=payload.get("cache_stats"),
            compiled_stats=payload.get("compiled_stats"),
            artifacts=payload.get("artifacts"),
            planner=payload.get("planner"),
            analyze=payload.get("analyze"),
        )
    except (KeyError, TypeError) as exc:
        raise BadRequestError(f"malformed explain payload: {exc}") from exc


# --------------------------------------------------------------------------- #
# Delta reports
# --------------------------------------------------------------------------- #
def delta_report_to_json(report: "DeltaReport") -> dict:
    """Canonical payload of a delta report (delegates to ``to_dict``)."""
    return report.to_dict()


def delta_report_from_json(payload: dict) -> "DeltaReport":
    """Reconstruct a :class:`~repro.engine.delta.DeltaReport` from its
    canonical payload (the derived ``posting_lists_reused`` field is
    recomputed, not read)."""
    from repro.engine.delta import DeltaReport

    try:
        return DeltaReport(
            delta_epoch=payload["delta_epoch"],
            generation=payload["generation"],
            num_mappings=payload["num_mappings"],
            touched_mappings=payload["touched_mappings"],
            structural_mappings=payload["structural_mappings"],
            reweighted_mappings=payload["reweighted_mappings"],
            replaced_mappings=payload["replaced_mappings"],
            touched_targets=payload["touched_targets"],
            posting_lists_touched=payload["posting_lists_touched"],
            posting_lists_total=payload["posting_lists_total"],
            compiled_incrementally=payload["compiled_incrementally"],
            elapsed_ms=payload["elapsed_ms"],
            persist_failed=payload.get("persist_failed", False),
            persist_error=payload.get("persist_error"),
        )
    except (KeyError, TypeError) as exc:
        raise BadRequestError(f"malformed delta report payload: {exc}") from exc


def delta_batch_report_to_json(report: "DeltaBatchReport") -> dict:
    """Canonical payload of a coalesced batch report (delegates to
    ``to_dict``, which extends the delta-report payload with
    ``num_deltas``)."""
    return report.to_dict()


def delta_batch_report_from_json(payload: dict) -> "DeltaBatchReport":
    """Reconstruct a :class:`~repro.engine.streaming.DeltaBatchReport` from
    its canonical payload."""
    from repro.engine.streaming import DeltaBatchReport

    try:
        return DeltaBatchReport(
            num_deltas=payload["num_deltas"],
            delta_epoch=payload["delta_epoch"],
            generation=payload["generation"],
            num_mappings=payload["num_mappings"],
            touched_mappings=payload["touched_mappings"],
            structural_mappings=payload["structural_mappings"],
            reweighted_mappings=payload["reweighted_mappings"],
            replaced_mappings=payload["replaced_mappings"],
            touched_targets=payload["touched_targets"],
            posting_lists_touched=payload["posting_lists_touched"],
            posting_lists_total=payload["posting_lists_total"],
            compiled_incrementally=payload["compiled_incrementally"],
            elapsed_ms=payload["elapsed_ms"],
            persist_failed=payload.get("persist_failed", False),
            persist_error=payload.get("persist_error"),
        )
    except (KeyError, TypeError) as exc:
        raise BadRequestError(f"malformed batch report payload: {exc}") from exc


# --------------------------------------------------------------------------- #
# Subscription updates
# --------------------------------------------------------------------------- #
def subscription_update_to_json(update: "SubscriptionUpdate") -> dict:
    """Canonical payload of one standing-query notification.

    ``added`` entries are full canonical answers (:func:`answer_to_json`,
    with ``float.hex()`` probabilities); ``rescored`` pairs carry the new
    probability in the same exact encoding; ``removed`` is the sorted list
    of dropped mapping ids.  Equal updates encode to equal bytes, so the
    golden fixtures and the differential replay suite can compare
    notification streams byte for byte.
    """
    return {
        "subscription_id": update.subscription_id,
        "query": update.query,
        "k": update.k,
        "kind": update.kind,
        "generation": update.generation,
        "delta_epoch": update.delta_epoch,
        "added": [answer_to_json(answer) for answer in update.added],
        "removed": list(update.removed),
        "rescored": [
            {"mapping_id": mapping_id, "probability": float(probability).hex()}
            for mapping_id, probability in update.rescored
        ],
    }


@dataclass(frozen=True)
class SubscriptionEvent:
    """Typed client-side view of one standing-query notification.

    Decoded from the :func:`subscription_update_to_json` payload; the client
    folds events into its local result view with :meth:`apply`, which
    mirrors :func:`repro.engine.streaming.apply_update` exactly — the replay
    contract (initial rows plus every event equals from-scratch execution)
    holds across the wire because both sides use ``float.hex()`` round-trips.
    """

    subscription_id: int
    query: str
    k: Optional[int]
    kind: str
    generation: int
    delta_epoch: int
    added: tuple[QueryAnswer, ...]
    removed: tuple[int, ...]
    rescored: tuple[tuple[int, str], ...]

    @property
    def is_initial(self) -> bool:
        """``True`` for the baseline event that opens every subscription."""
        return self.kind == "initial"

    def is_empty_diff(self) -> bool:
        """``True`` when the event carries no row changes at all."""
        return not (self.added or self.removed or self.rescored)

    @classmethod
    def from_json(cls, payload: dict) -> "SubscriptionEvent":
        """Decode one canonical notification payload."""
        try:
            return cls(
                subscription_id=int(payload["subscription_id"]),
                query=str(payload["query"]),
                k=payload["k"],
                kind=str(payload["kind"]),
                generation=int(payload["generation"]),
                delta_epoch=int(payload["delta_epoch"]),
                added=tuple(
                    QueryAnswer.from_json(item) for item in payload["added"]
                ),
                removed=tuple(int(item) for item in payload["removed"]),
                rescored=tuple(
                    (int(item["mapping_id"]), str(item["probability"]))
                    for item in payload["rescored"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequestError(f"malformed subscription payload: {exc}") from exc

    def to_json(self) -> dict:
        """Re-encode the canonical payload this view was decoded from."""
        return {
            "subscription_id": self.subscription_id,
            "query": self.query,
            "k": self.k,
            "kind": self.kind,
            "generation": self.generation,
            "delta_epoch": self.delta_epoch,
            "added": [answer.to_json() for answer in self.added],
            "removed": list(self.removed),
            "rescored": [
                {"mapping_id": mapping_id, "probability": probability}
                for mapping_id, probability in self.rescored
            ],
        }

    def apply(self, rows: list[QueryAnswer]) -> list[QueryAnswer]:
        """Fold this event into a client-side result view.

        Returns the updated rows sorted by descending probability then
        mapping id — the same order the engine's
        :func:`~repro.engine.streaming.apply_update` produces, so a client
        replaying the event stream holds exactly the rows a from-scratch
        re-execution would return.
        """
        by_id = {answer.mapping_id: answer for answer in rows}
        for mapping_id in self.removed:
            by_id.pop(mapping_id, None)
        for mapping_id, probability_hex in self.rescored:
            current = by_id.get(mapping_id)
            if current is not None:
                by_id[mapping_id] = QueryAnswer(
                    mapping_id=mapping_id,
                    probability_hex=probability_hex,
                    matches=current.matches,
                )
        for answer in self.added:
            by_id[answer.mapping_id] = answer
        return sorted(
            by_id.values(), key=lambda a: (-a.probability, a.mapping_id)
        )


def subscription_update_from_json(payload: dict) -> SubscriptionEvent:
    """Decode a canonical notification payload into a
    :class:`SubscriptionEvent` view."""
    return SubscriptionEvent.from_json(payload)


# --------------------------------------------------------------------------- #
# Corpus executions
# --------------------------------------------------------------------------- #
def execution_to_json(execution: "CorpusExecution") -> dict:
    """Canonical payload of a scatter-gather execution account.

    Extends :meth:`~repro.corpus.engine.CorpusExecution.to_dict` with the
    full canonical matches of every globally ranked answer (``to_dict``
    summarises them by count), so the payload round-trips through
    :func:`execution_from_json` without loss.
    """
    payload = execution.to_dict()
    payload["answers"] = [
        {
            "dataset": answer.dataset,
            "mapping_id": answer.mapping_id,
            "probability": float(answer.probability).hex(),
            "matches": sorted(
                [list(pair) for pair in match] for match in answer.matches
            ),
        }
        for answer in execution.answers
    ]
    return payload


def execution_from_json(payload: dict) -> "CorpusExecution":
    """Reconstruct a :class:`~repro.corpus.engine.CorpusExecution` from its
    canonical payload.

    The wire view carries the execution account and the globally ranked
    answers; the per-dataset ``results`` mapping (full in-process
    :class:`~repro.query.results.PTQResult` objects) is not transmitted and
    comes back empty.
    """
    from repro.corpus.engine import CorpusAnswer, CorpusExecution, ShardReport

    try:
        shard_reports = tuple(
            ShardReport(
                shard_id=row["shard_id"],
                dataset=row["dataset"],
                status=row["status"],
                num_nodes=row["num_nodes"],
                num_subtrees=row["num_subtrees"],
                groups=row["groups"],
                pruned=row["pruned"],
                deferred=row["deferred"],
                matches=row["matches"],
                elapsed_ms=row["elapsed_ms"],
            )
            for row in payload["shards"]
        )
        answers = tuple(
            CorpusAnswer(
                dataset=row["dataset"],
                mapping_id=int(row["mapping_id"]),
                probability=float.fromhex(row["probability"]),
                matches=frozenset(
                    tuple((int(pair[0]), int(pair[1])) for pair in match)
                    for match in row["matches"]
                ),
            )
            for row in payload["answers"]
        )
        return CorpusExecution(
            query=payload["query"],
            k=payload["k"],
            num_shards=payload["num_shards"],
            fan_out=payload["fan_out"],
            skipped_bound=payload["skipped_bound"],
            skipped_empty=payload["skipped_empty"],
            skipped_local=payload["skipped_local"],
            spine_rewrites=payload["spine_rewrites"],
            merged_answers=payload["merged_answers"],
            duplicate_matches=payload["duplicate_matches"],
            cache=payload["cache"],
            generations=tuple(tuple(item) for item in payload["generations"]),
            elapsed_ms=payload["elapsed_ms"],
            shard_reports=shard_reports,
            results={},
            answers=answers,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise BadRequestError(f"malformed execution payload: {exc}") from exc
