"""The transport-neutral typed API: wire schema, codecs, and error taxonomy.

This package defines *what* the system says, independently of *how* it is
carried: frozen request/response dataclasses with canonical JSON codecs
(:mod:`~repro.api.messages`), one serializer per public result shape
(:mod:`~repro.api.serialize`), the bidirectional stable-code ⇄ exception
mapping (:mod:`~repro.api.errors`), and the dispatcher that turns requests
into engine work (:mod:`~repro.api.handler`).  The asyncio server, the sync
client, the CLI's ``--json`` output and the golden snapshot suite all consume
these same definitions — that single source is what makes byte-identity
across surfaces a testable invariant.
"""

from repro.api.errors import (
    CODE_TO_ERROR,
    BadRequestError,
    OverloadedError,
    PayloadTooLargeError,
    ProtocolError,
    RequestTimeoutError,
    ShuttingDownError,
    error_code,
    error_for_code,
    error_from_wire,
    wire_error,
)
from repro.api.handler import ApiHandler
from repro.api.messages import (
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    CalibrateRequest,
    CalibrateResponse,
    DeltaBatchRequest,
    DeltaBatchResponse,
    DeltaRequest,
    DeltaResponse,
    ErrorResponse,
    ExplainRequest,
    ExplainResponse,
    PingRequest,
    PingResponse,
    QueryRequest,
    QueryResponse,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    SubscribeRequest,
    decode_request,
    decode_response,
    encode_message,
)
from repro.api.serialize import (
    QueryAnswer,
    QueryResult,
    SubscriptionEvent,
    answer_to_json,
    canonical_json,
    delta_batch_report_from_json,
    delta_batch_report_to_json,
    delta_report_from_json,
    delta_report_to_json,
    execution_from_json,
    execution_to_json,
    explain_from_json,
    explain_to_json,
    result_from_json,
    result_to_json,
    subscription_update_from_json,
    subscription_update_to_json,
    value_distribution_to_json,
)

__all__ = [
    # errors
    "BadRequestError",
    "ProtocolError",
    "PayloadTooLargeError",
    "OverloadedError",
    "ShuttingDownError",
    "RequestTimeoutError",
    "CODE_TO_ERROR",
    "error_code",
    "error_for_code",
    "wire_error",
    "error_from_wire",
    # messages
    "PROTOCOL_VERSION",
    "Request",
    "QueryRequest",
    "BatchRequest",
    "DeltaRequest",
    "DeltaBatchRequest",
    "SubscribeRequest",
    "ExplainRequest",
    "CalibrateRequest",
    "StatsRequest",
    "PingRequest",
    "Response",
    "QueryResponse",
    "BatchResponse",
    "DeltaResponse",
    "DeltaBatchResponse",
    "ExplainResponse",
    "CalibrateResponse",
    "StatsResponse",
    "PingResponse",
    "ErrorResponse",
    "encode_message",
    "decode_request",
    "decode_response",
    # handler
    "ApiHandler",
    # serialization
    "canonical_json",
    "QueryAnswer",
    "QueryResult",
    "SubscriptionEvent",
    "answer_to_json",
    "result_to_json",
    "result_from_json",
    "value_distribution_to_json",
    "explain_to_json",
    "explain_from_json",
    "delta_report_to_json",
    "delta_report_from_json",
    "delta_batch_report_to_json",
    "delta_batch_report_from_json",
    "subscription_update_to_json",
    "subscription_update_from_json",
    "execution_to_json",
    "execution_from_json",
]
