"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one base class at an integration boundary.  The subclasses
partition the failure modes along the package structure: schema construction,
document construction, matching, mapping generation, block-tree construction
and query processing.

Every class carries a **stable error code** (:attr:`ReproError.code`): a
short kebab-case string that identifies the failure mode independently of
the Python class name.  Codes are part of the wire protocol — the server
(:mod:`repro.net`) transmits them and the client reconstructs the matching
class from them (see :mod:`repro.api.errors`) — so they must never be
renamed or reused once released.

The module also defines the library's structured warning types.  They
subclass :class:`RuntimeWarning` (so existing ``filterwarnings`` /
``pytest.warns(RuntimeWarning)`` configurations keep matching) but carry the
same stable ``code`` attribute as the exceptions, giving operators a
greppable identifier for every degraded-mode path.
"""

from __future__ import annotations

from typing import ClassVar

__all__ = [
    "ReproError",
    "SchemaError",
    "SchemaParseError",
    "DocumentError",
    "DocumentConformanceError",
    "MatchingError",
    "MappingError",
    "AssignmentError",
    "BlockTreeError",
    "QueryError",
    "TwigParseError",
    "RewriteError",
    "DatasetError",
    "DataspaceError",
    "CorpusError",
    "StoreError",
    "KernelError",
    "ReproWarning",
    "StoreFallbackWarning",
    "PersistFailedWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``code`` is the stable wire identifier of the failure mode (see the
    module docstring); subclasses override it, and the base value
    ``"internal"`` is what an unclassified failure maps to at the network
    boundary.
    """

    code: ClassVar[str] = "internal"


class SchemaError(ReproError):
    """Raised when a schema is structurally invalid (cycles, duplicate ids...)."""

    code = "schema"


class SchemaParseError(SchemaError):
    """Raised when textual schema notation or XSD-like input cannot be parsed."""

    code = "schema-parse"


class DocumentError(ReproError):
    """Raised when an XML document is structurally invalid."""

    code = "document"


class DocumentConformanceError(DocumentError):
    """Raised when a document does not conform to the schema it claims to follow."""

    code = "document-conformance"


class MatchingError(ReproError):
    """Raised for invalid schema matchings (unknown elements, bad scores...)."""

    code = "matching"


class MappingError(ReproError):
    """Raised for invalid possible mappings or mapping sets."""

    code = "mapping"


class AssignmentError(MappingError):
    """Raised when the assignment substrate (Hungarian/Murty) receives bad input."""

    code = "assignment"


class BlockTreeError(ReproError):
    """Raised for invalid block-tree configurations or construction failures."""

    code = "blocktree"


class QueryError(ReproError):
    """Raised for invalid twig queries or query-evaluation failures."""

    code = "query"


class TwigParseError(QueryError):
    """Raised when a twig-pattern string cannot be parsed."""

    code = "twig-parse"


class RewriteError(QueryError):
    """Raised when a target query cannot be rewritten under a mapping."""

    code = "rewrite"


class DatasetError(ReproError):
    """Raised when a workload dataset identifier or configuration is invalid."""

    code = "dataset"


class DataspaceError(ReproError):
    """Raised when an engine session (:class:`repro.engine.Dataspace`) is misused."""

    code = "dataspace"


class CorpusError(ReproError):
    """Raised when a sharded corpus (:class:`repro.corpus.ShardedCorpus`) is misused."""

    code = "corpus"


class StoreError(ReproError):
    """Raised by the persistent artifact store (:mod:`repro.store`).

    Covers checksum mismatches on content-addressed blocks, missing blocks
    referenced by a manifest, and malformed artifact payloads.  The engine
    integration treats any :class:`StoreError` during a load as a cache miss
    and falls back to a cold rebuild (with a warning naming the ref) — a
    corrupt store never breaks the query path.  Any *other* exception type
    escaping a load is re-raised: it signals a programming error, not store
    rot."""

    code = "store"


class KernelError(ReproError):
    """Raised for unknown or unavailable kernel backends (:mod:`repro.engine.kernels`)."""

    code = "kernel"


# --------------------------------------------------------------------------- #
# Structured warnings
# --------------------------------------------------------------------------- #
class ReproWarning(RuntimeWarning):
    """Base class for the library's degraded-mode warnings.

    Subclasses :class:`RuntimeWarning` for backward compatibility with
    existing warning filters, and carries the same stable ``code`` attribute
    as :class:`ReproError` so operators can grep and alert on specific
    degradation paths.
    """

    code: ClassVar[str] = "warning"


class StoreFallbackWarning(ReproWarning):
    """A corrupted artifact store was ignored and a cold build ran instead.

    Emitted by :meth:`repro.engine.Dataspace.from_dataset` when a
    :class:`StoreError` interrupts a warm reopen: the session still comes up
    (cold), but the persisted artifacts are being bypassed."""

    code = "store-fallback"


class PersistFailedWarning(ReproWarning):
    """A delta's write-through to the attached store failed.

    The in-memory session is current but the store is stale; the failure is
    also recorded on the :class:`~repro.engine.delta.DeltaReport` and in the
    session's stats."""

    code = "persist-failed"
