"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one base class at an integration boundary.  The subclasses
partition the failure modes along the package structure: schema construction,
document construction, matching, mapping generation, block-tree construction
and query processing.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "SchemaParseError",
    "DocumentError",
    "DocumentConformanceError",
    "MatchingError",
    "MappingError",
    "AssignmentError",
    "BlockTreeError",
    "QueryError",
    "TwigParseError",
    "RewriteError",
    "DatasetError",
    "DataspaceError",
    "CorpusError",
    "StoreError",
    "KernelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Raised when a schema is structurally invalid (cycles, duplicate ids...)."""


class SchemaParseError(SchemaError):
    """Raised when textual schema notation or XSD-like input cannot be parsed."""


class DocumentError(ReproError):
    """Raised when an XML document is structurally invalid."""


class DocumentConformanceError(DocumentError):
    """Raised when a document does not conform to the schema it claims to follow."""


class MatchingError(ReproError):
    """Raised for invalid schema matchings (unknown elements, bad scores...)."""


class MappingError(ReproError):
    """Raised for invalid possible mappings or mapping sets."""


class AssignmentError(MappingError):
    """Raised when the assignment substrate (Hungarian/Murty) receives bad input."""


class BlockTreeError(ReproError):
    """Raised for invalid block-tree configurations or construction failures."""


class QueryError(ReproError):
    """Raised for invalid twig queries or query-evaluation failures."""


class TwigParseError(QueryError):
    """Raised when a twig-pattern string cannot be parsed."""


class RewriteError(QueryError):
    """Raised when a target query cannot be rewritten under a mapping."""


class DatasetError(ReproError):
    """Raised when a workload dataset identifier or configuration is invalid."""


class DataspaceError(ReproError):
    """Raised when an engine session (:class:`repro.engine.Dataspace`) is misused."""


class CorpusError(ReproError):
    """Raised when a sharded corpus (:class:`repro.corpus.ShardedCorpus`) is misused."""


class StoreError(ReproError):
    """Raised by the persistent artifact store (:mod:`repro.store`).

    Covers checksum mismatches on content-addressed blocks, missing blocks
    referenced by a manifest, and malformed artifact payloads.  The engine
    integration treats any :class:`StoreError` during a load as a cache miss
    and falls back to a cold rebuild (with a warning naming the ref) — a
    corrupt store never breaks the query path.  Any *other* exception type
    escaping a load is re-raised: it signals a programming error, not store
    rot."""


class KernelError(ReproError):
    """Raised for unknown or unavailable kernel backends (:mod:`repro.engine.kernels`)."""
