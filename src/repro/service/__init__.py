"""The concurrent query service layer.

The engine's :class:`~repro.engine.dataspace.Dataspace` is thread-safe, but it
is still a passive session: every caller drives it one query at a time.  This
package adds the serving machinery that the ROADMAP's production story needs:

* :class:`~repro.engine.cache.ResultCache` — a bounded, thread-safe LRU over
  evaluated :class:`~repro.query.results.PTQResult` objects, keyed by
  ``(query, plan, k, tau, generation, document version)`` so reconfigured
  sessions can never serve stale answers;
* :class:`~repro.service.service.QueryService` — a thread-pooled front-end
  over one session with ``submit`` / ``submit_many`` futures, single-flight
  de-duplication of identical in-flight queries, and shared-prefix batch
  execution (``execute_many``);
* :mod:`~repro.service.driver` — a workload replay driver that mixes queries
  over the paper's D1–D10 datasets at configurable concurrency and reports
  throughput and p50/p95/p99 latency.

Typical usage::

    from repro.engine import Dataspace
    from repro.service import QueryService

    ds = Dataspace.from_dataset("D7", h=100)
    with QueryService(ds, max_workers=8) as service:
        futures = service.submit_many(["Q1", "Q2", "Q7"])
        results = [future.result() for future in futures]
        print(service.stats())
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.service.driver import (
    ReplayOp,
    ReplayReport,
    build_mixed_workload,
    build_workload,
    replay_workload,
    swap_reweight_delta,
    workload_queries,
)
from repro.service.service import QueryService

__all__ = [
    "CacheStats",
    "ResultCache",
    "QueryService",
    "ReplayOp",
    "ReplayReport",
    "build_workload",
    "build_mixed_workload",
    "swap_reweight_delta",
    "replay_workload",
    "workload_queries",
]
