"""The concurrent query service: a thread-pooled front-end over one session.

:class:`QueryService` turns a (thread-safe) engine session into a serving
component: callers submit queries and receive futures, identical in-flight
queries are de-duplicated onto one evaluation (*single-flight*), batches
share their resolve/filter prefix and snapshot through
:meth:`~repro.engine.dataspace.Dataspace.query_batch`, and every request is
timed so the service can report throughput and latency percentiles alongside
the session's cache statistics.

The service adds no caching of its own — the session's generation-keyed
result cache is the single source of truth, which is what guarantees that a
``configure()`` racing with in-flight queries can never surface a stale
answer through the service either.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from repro.exceptions import DataspaceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus import ShardedCorpus
    from repro.engine.dataspace import Dataspace
    from repro.engine.prepared import PlanSpec
    from repro.query.results import PTQResult
    from repro.query.twig import TwigQuery

__all__ = ["QueryService", "percentile", "percentile_summary"]

QueryLike = Union[str, "TwigQuery"]

#: Ring-buffer size for per-request latency samples: percentiles reflect the
#: most recent window, and a long-lived service cannot grow without bound
#: (same rationale as the engine's bounded prepared-query cache).
_LATENCY_SAMPLE_CAPACITY = 4096


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of ``values`` (``fraction`` in [0, 1]).

    Raises
    ------
    ValueError
        On an empty sequence or a fraction outside [0, 1].
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def percentile_summary(values: Sequence[float], ndigits: int = 3) -> dict[str, float]:
    """The p50/p95/p99 summary reported by services and replay drivers.

    Raises
    ------
    ValueError
        On an empty sequence (callers guard and report "no samples").
    """
    return {
        "p50": round(percentile(values, 0.50), ndigits),
        "p95": round(percentile(values, 0.95), ndigits),
        "p99": round(percentile(values, 0.99), ndigits),
    }


class QueryService:
    """A concurrent query front-end over one :class:`Dataspace` session.

    Parameters
    ----------
    dataspace:
        The session to serve — or a single-session
        :class:`~repro.corpus.ShardedCorpus`, in which case every request is
        routed through the corpus' scatter-gather executor (batches fan
        queries over the pool and each query's shards evaluate inline in its
        worker).  Either may be shared with other services and with direct
        callers (both are thread-safe).
    max_workers:
        Size of the service's thread pool (used by :meth:`submit`,
        :meth:`submit_many` and :meth:`execute_many`).  ``None`` (default)
        sizes the pool for the session's kernel backend via
        :func:`repro.engine.planner.default_service_workers` — the numpy
        kernels release the GIL, so the pool scales with the machine's
        cores; the pure-Python kernels keep the historical fixed 8.
    use_cache:
        Whether served queries consult the session's result cache
        (default ``True``).  Corpus-backed services cache under
        corpus-scoped :class:`~repro.engine.cache.CacheKey` entries, keyed
        per shard for partials, so sharded and unsharded answers never
        collide.

    The service is a context manager; leaving the ``with`` block shuts the
    pool down.  Statistics (request counts, latency percentiles, cache
    counters) are available through :meth:`stats` at any time.
    """

    def __init__(
        self,
        dataspace: Union["Dataspace", "ShardedCorpus"],
        *,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise DataspaceError(f"max_workers must be at least 1, got {max_workers}")
        from repro.corpus import ShardedCorpus as _ShardedCorpus
        from repro.engine.planner import default_service_workers

        self._corpus: Optional["ShardedCorpus"]
        if isinstance(dataspace, _ShardedCorpus):
            if not dataspace.is_homogeneous:
                raise DataspaceError(
                    "QueryService fronts a single-session corpus; use "
                    "ShardedCorpus.gather()/top_k() directly for multi-dataset corpora"
                )
            self._corpus = dataspace
            self._dataspace = dataspace.sessions[0]
        else:
            self._corpus = None
            self._dataspace = dataspace
        if max_workers is None:
            max_workers = default_service_workers(self._dataspace.kernels)
        self._use_cache = use_cache
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"ptq-{dataspace.name}"
        )
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._inflight: dict = {}
        self._submitted = 0
        self._completed = 0
        self._deduped = 0
        self._errors = 0
        self._latencies_ms: "deque[float]" = deque(maxlen=_LATENCY_SAMPLE_CAPACITY)
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def dataspace(self) -> "Dataspace":
        """The session this service fronts (the corpus' session when sharded)."""
        return self._dataspace

    @property
    def corpus(self) -> Optional["ShardedCorpus"]:
        """The sharded corpus being served, or ``None`` for a plain session."""
        return self._corpus

    def _check_plan(self, plan: "PlanSpec") -> None:
        if self._corpus is not None and plan is not None:
            raise DataspaceError(
                "a corpus-backed service always runs the scatter-gather executor; "
                "plan overrides apply only to session-backed services"
            )

    def _flight_scope(self) -> tuple:
        """Configuration scope of single-flight keys (corpus- or session-wide).

        Includes the fine-grained ``delta_epoch`` (directly for sessions, via
        the corpus generation signature for corpora), so a submit issued
        after an :meth:`apply_delta` committed never joins a pre-delta
        flight.
        """
        if self._corpus is not None:
            return ("corpus", self._corpus.num_shards, self._corpus.generation_signature())
        return (
            "session",
            self._dataspace.generation,
            self._dataspace.document_version,
            self._dataspace.delta_epoch,
        )

    @property
    def max_workers(self) -> int:
        """Thread-pool size."""
        return self._max_workers

    def executor_config(self) -> dict:
        """The service's chosen executor configuration (for benchmarks/ops)."""
        config: dict = {
            "max_workers": self._max_workers,
            "backend": self._dataspace.kernels.name,
        }
        if self._corpus is not None:
            config["corpus"] = self._corpus.executor_config()
        return config

    def close(self, *, wait: bool = True) -> None:
        """Shut the pool down; queued work finishes when ``wait`` is true.

        ``_closed`` flips under the service lock *before* the pool shuts
        down, and :meth:`submit` checks it in the same critical section that
        reserves pool work — so a submit either lands before the shutdown or
        fails cleanly with :class:`DataspaceError`, never with the pool's
        RuntimeError.
        """
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DataspaceError("the query service has been closed")

    # ------------------------------------------------------------------ #
    # Writer side
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta):
        """Apply a mapping delta to the served session, atomically.

        Writer-side companion of the read paths: the update commits under
        the session's existing write lock, so in-flight queries (which
        evaluate against immutable snapshots) are unaffected, and every
        request submitted afterwards sees the new ``delta_epoch`` — the
        single-flight key includes it, so post-delta submits never join a
        pre-delta flight.  Cached results the delta provably did not touch
        keep serving (see :meth:`repro.engine.cache.ResultCache.retain`).

        Returns the session's :class:`~repro.engine.delta.DeltaReport`.

        >>> # with QueryService(ds) as service:
        >>> #     service.apply_delta(MappingDelta.build(reweight={0: 0.2, 1: 0.3}))
        """
        if self._corpus is not None:
            return self._corpus.apply_delta(delta)
        return self._dataspace.apply_delta(delta)

    def apply_delta_batch(self, batch):
        """Apply a whole delta batch as one atomic epoch bump.

        Batch companion of :meth:`apply_delta`: every member delta is
        validated in sequence but the session commits one ``delta_epoch``
        bump with one incremental recompile of the net difference, and
        standing queries are notified once for the whole batch.  Accepts a
        :class:`~repro.engine.streaming.DeltaBatch` or any iterable of
        deltas; returns the session's
        :class:`~repro.engine.streaming.DeltaBatchReport`.
        """
        if self._corpus is not None:
            return self._corpus.apply_delta_batch(batch)
        return self._dataspace.apply_delta_batch(batch)

    # ------------------------------------------------------------------ #
    # Standing queries
    # ------------------------------------------------------------------ #
    def subscribe(self, query: QueryLike, *, k: Optional[int] = None, callback):
        """Register ``query`` as a standing query on the served session.

        Delegates to :meth:`Dataspace.subscribe
        <repro.engine.dataspace.Dataspace.subscribe>`: the query executes
        once, ``callback`` receives the ``initial``
        :class:`~repro.engine.streaming.SubscriptionUpdate` before this
        returns, and every delta batch applied through this service (or
        directly on the session) delivers incremental diffs.  Returns the
        :class:`~repro.engine.streaming.Subscription` handle.  Callbacks run
        on the committing thread and must not block; for corpus-backed
        services the subscription registers on the underlying session, so
        batches applied via :meth:`apply_delta_batch` notify it either way.
        """
        return self._dataspace.subscribe(query, k=k, callback=callback)

    # ------------------------------------------------------------------ #
    # Execution paths
    # ------------------------------------------------------------------ #
    def _record(self, started: float, failed: bool) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self._completed += 1
            if failed:
                self._errors += 1
            else:
                self._latencies_ms.append(elapsed_ms)

    def execute(
        self, query: QueryLike, *, k: Optional[int] = None, plan: "PlanSpec" = None
    ) -> "PTQResult":
        """Evaluate ``query`` synchronously in the calling thread (timed).

        This is the path replay drivers use: the driver owns the
        concurrency, the service contributes caching and accounting.
        """
        self._check_plan(plan)
        with self._lock:
            self._submitted += 1
        started = time.perf_counter()
        try:
            if self._corpus is not None:
                result = self._corpus.execute(query, k=k, use_cache=self._use_cache)
            else:
                result = self._dataspace.execute(
                    query, k=k, plan=plan, use_cache=self._use_cache
                )
        except Exception:
            self._record(started, failed=True)
            raise
        self._record(started, failed=False)
        return result

    def submit(
        self, query: QueryLike, *, k: Optional[int] = None, plan: "PlanSpec" = None
    ) -> "Future[PTQResult]":
        """Submit ``query`` to the pool; returns a future.

        Identical requests — same prepared query, ``k``, ``plan`` *and
        session generation/document version* — that are concurrently in
        flight share one future (single-flight), so a thundering herd on a
        cold cache evaluates once.  A submit issued after a ``configure()``
        committed never joins a pre-reconfiguration flight: the generation
        is part of the flight key.
        """
        self._check_open()
        self._check_plan(plan)
        prepared = self._dataspace.prepare(query)
        plan_name = plan if isinstance(plan, str) or plan is None else plan.name
        flight_key = (prepared.cache_key, plan_name, k, self._flight_scope())
        started = time.perf_counter()

        corpus = self._corpus

        def run() -> "PTQResult":
            if corpus is not None:
                return corpus.execute(query, k=k, use_cache=self._use_cache)
            return prepared.execute(k=k, plan=plan, use_cache=self._use_cache)

        def done(f: "Future[PTQResult]") -> None:
            with self._lock:
                self._inflight.pop(flight_key, None)
            self._record(started, failed=f.exception() is not None)

        # Check-and-reserve atomically: concurrent identical submits must
        # observe either the shared in-flight future or insert exactly one,
        # and a racing close() must be seen before the pool shuts down.
        with self._lock:
            if self._closed:
                raise DataspaceError("the query service has been closed")
            self._submitted += 1
            existing = self._inflight.get(flight_key)
            if existing is None:
                future = self._pool.submit(run)
                self._inflight[flight_key] = future
            else:
                self._deduped += 1
        # Callbacks are registered outside the lock: on an already-finished
        # future they fire inline, and _record/done re-acquire it.
        if existing is not None:
            # A deduped join is still a request that completes — record it so
            # submitted == completed converges for every caller.
            existing.add_done_callback(
                lambda f: self._record(started, failed=f.exception() is not None)
            )
            return existing
        # If the worker already finished, add_done_callback fires inline and
        # pops the reservation, so completed futures never linger.
        future.add_done_callback(done)
        return future

    def submit_many(
        self,
        queries: Iterable[QueryLike],
        *,
        k: Optional[int] = None,
        plan: "PlanSpec" = None,
    ) -> list["Future[PTQResult]"]:
        """Submit every query; duplicates share futures via single-flight."""
        return [self.submit(query, k=k, plan=plan) for query in queries]

    def execute_many(
        self,
        queries: Iterable[QueryLike],
        *,
        k: Optional[int] = None,
        plan: "PlanSpec" = None,
    ) -> list["PTQResult"]:
        """Evaluate a batch with shared prefix work, fanned over the pool.

        Delegates to :meth:`Dataspace.query_batch` with the service's
        executor: one snapshot for the whole batch, duplicate queries
        collapsed, resolve/filter shared, evaluation parallel.
        """
        self._check_plan(plan)
        queries = list(queries)
        with self._lock:
            if self._closed:
                raise DataspaceError("the query service has been closed")
            self._submitted += len(queries)
        started = time.perf_counter()
        try:
            if self._corpus is not None:
                # Route the batch across shards: one pool worker per query,
                # each query's scatter evaluated inline in its worker.
                results = self._corpus.execute_batch(
                    queries, k=k, use_cache=self._use_cache, executor=self._pool
                )
            else:
                results = self._dataspace.query_batch(
                    queries, k=k, plan=plan, executor=self._pool, use_cache=self._use_cache
                )
        except Exception as error:
            # The batch fails as a unit: account every submitted slot as
            # completed-with-error so submitted == completed always converges
            # and stats() never reports phantom in-flight work.
            with self._lock:
                self._completed += len(queries)
                self._errors += len(queries)
            # A close() racing the batch surfaces as the pool's shutdown
            # RuntimeError; translate it to the documented error type.
            if isinstance(error, RuntimeError) and "shutdown" in str(error):
                raise DataspaceError("the query service has been closed") from error
            raise
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            self._completed += len(queries)
            # One batch produces one wall-clock measurement per query slot so
            # percentiles remain per-query comparable across paths.
            if queries:
                self._latencies_ms.extend([elapsed_ms / len(queries)] * len(queries))
        return results

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def latency_percentiles(self) -> Optional[dict[str, float]]:
        """p50/p95/p99 over the most recent latency samples (ms), or ``None``.

        Samples live in a bounded ring buffer, so the percentiles describe
        the recent window (up to ``_LATENCY_SAMPLE_CAPACITY`` requests), not
        the service's whole lifetime.
        """
        with self._lock:
            samples = list(self._latencies_ms)
        if not samples:
            return None
        return percentile_summary(samples)

    def stats(self) -> dict:
        """Counters, latency percentiles and the session's cache statistics."""
        with self._lock:
            info = {
                "submitted": self._submitted,
                "completed": self._completed,
                "deduped": self._deduped,
                "errors": self._errors,
                "inflight": len(self._inflight),
                "max_workers": self._max_workers,
            }
        info["latency_ms"] = self.latency_percentiles()
        info["subscriptions"] = self._dataspace.subscriptions.stats()
        info.update(self._dataspace.cache_stats())
        return info

    def __repr__(self) -> str:
        return (
            f"QueryService({self._dataspace.name!r}, max_workers={self._max_workers}, "
            f"submitted={self._submitted})"
        )
