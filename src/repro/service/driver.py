"""Workload replay driver: mixed multi-dataset query traffic, measured.

The driver turns the paper's D1–D10 datasets into serving workloads: it
derives a deterministic query set for any dataset's target schema
(:func:`workload_queries`), interleaves datasets into a mixed operation
stream (:func:`build_workload`, or :func:`build_mixed_workload` for a
read/write mix that interleaves :meth:`~repro.engine.dataspace.Dataspace.apply_delta`
writes), and replays that stream against per-dataset
:class:`~repro.service.service.QueryService` instances at a configurable
concurrency (:func:`replay_workload`), reporting throughput, p50/p95/p99
latency and cache statistics as a :class:`ReplayReport`.

Used by ``benchmarks/test_bench_service_throughput.py`` and the
``examples/service_throughput.py`` walkthrough; everything is deterministic
(no randomness beyond the corpus' seeded generators) so replay reports are
comparable across runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.delta import MappingDelta
from repro.exceptions import ReproError
from repro.service.service import QueryService, percentile_summary

__all__ = [
    "ReplayOp",
    "ReplayReport",
    "workload_queries",
    "build_workload",
    "build_mixed_workload",
    "swap_reweight_delta",
    "replay_workload",
]

#: Default number of leaf-derived queries per dataset.
_DEFAULT_QUERIES_PER_DATASET = 6


@dataclass(frozen=True)
class ReplayOp:
    """One operation of a replay stream.

    A *read* op (``delta is None``) executes ``query`` against the dataset's
    service; a *write* op carries a
    :class:`~repro.engine.delta.MappingDelta` and is applied through
    :meth:`~repro.service.service.QueryService.apply_delta` (the ``query``
    field is then just a display label).
    """

    dataset_id: str
    query: str
    k: Optional[int] = None
    delta: Optional[MappingDelta] = None

    @property
    def is_write(self) -> bool:
        """``True`` when this op applies a mapping delta instead of reading."""
        return self.delta is not None


@dataclass(frozen=True)
class ReplayReport:
    """Measured outcome of one workload replay.

    ``latency_ms`` holds the p50/p95/p99 per-operation latencies in
    milliseconds; ``cache`` aggregates the result-cache counters of every
    session that served the replay.
    """

    num_ops: int
    concurrency: int
    warmed: bool
    elapsed_seconds: float
    throughput_qps: float
    errors: int
    reads: int = 0
    writes: int = 0
    latency_ms: dict[str, float] = field(default_factory=dict)
    per_dataset: dict[str, int] = field(default_factory=dict)
    cache: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report."""
        return {
            "num_ops": self.num_ops,
            "concurrency": self.concurrency,
            "warmed": self.warmed,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "throughput_qps": round(self.throughput_qps, 2),
            "errors": self.errors,
            "reads": self.reads,
            "writes": self.writes,
            "latency_ms": dict(self.latency_ms),
            "per_dataset": dict(self.per_dataset),
            "cache": dict(self.cache),
        }

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        datasets = "  ".join(f"{d}={n}" for d, n in sorted(self.per_dataset.items()))
        latency = "  ".join(f"{name}={ms:.2f} ms" for name, ms in self.latency_ms.items())
        mix = f" reads={self.reads} writes={self.writes}" if self.writes else ""
        lines = [
            f"ops:         {self.num_ops} ({datasets}){mix}",
            f"concurrency: {self.concurrency} (cache {'warm' if self.warmed else 'cold'})",
            f"elapsed:     {self.elapsed_seconds:.3f} s",
            f"throughput:  {self.throughput_qps:.1f} queries/s",
            f"latency:     {latency}" if latency else "latency:     (no samples)",
            f"errors:      {self.errors}",
        ]
        if self.cache:
            lines.append(
                f"cache:       hits={self.cache.get('hits', 0)} "
                f"misses={self.cache.get('misses', 0)} "
                f"evictions={self.cache.get('evictions', 0)}"
            )
        return "\n".join(lines)


def workload_queries(dataset_id: str, limit: Optional[int] = None) -> list[str]:
    """Deterministic query strings for ``dataset_id``'s target schema.

    D7 — the paper's query dataset — contributes the Table III query ids
    (``"Q1"``…``"Q10"``) first.  Every dataset then contributes twig patterns
    derived from its target schema: evenly spaced leaf elements (in schema
    pre-order) become alternating root-anchored path queries and
    descendant-axis single-label queries, so the workload mixes cheap and
    expensive shapes.  The derivation uses only the schema structure, so the
    same dataset always yields the same workload.
    """
    from repro.workloads.datasets import load_dataset
    from repro.workloads.queries import QUERY_IDS

    dataset = load_dataset(dataset_id)
    queries: list[str] = []
    if dataset.dataset_id == "D7":
        queries.extend(QUERY_IDS)
    leaves = [element for element in dataset.target_schema.iter_preorder() if element.is_leaf]
    count = min(len(leaves), _DEFAULT_QUERIES_PER_DATASET)
    if count:
        # Truly even spacing across the pre-order leaf list, first through
        # last, so deep/late leaves are sampled too.
        if count == 1:
            positions = [0]
        else:
            positions = [
                round(index * (len(leaves) - 1) / (count - 1)) for index in range(count)
            ]
        for index, position in enumerate(dict.fromkeys(positions)):
            labels = leaves[position].path.split(".")
            if index % 2:
                queries.append(f"//{labels[-1]}")
            else:
                queries.append("/".join(labels))
    unique = list(dict.fromkeys(queries))
    return unique[:limit] if limit is not None else unique


def build_workload(
    dataset_ids: Sequence[str],
    *,
    queries_per_dataset: int = _DEFAULT_QUERIES_PER_DATASET,
    repeats: int = 2,
    k: Optional[int] = None,
) -> list[ReplayOp]:
    """Interleave the datasets' query sets into one mixed operation stream.

    Operations are emitted round-robin over datasets (query 1 of every
    dataset, then query 2 of every dataset, …), ``repeats`` times over — the
    shape of traffic where a shared result cache pays off.
    """
    per_dataset = {
        dataset_id: workload_queries(dataset_id, limit=queries_per_dataset)
        for dataset_id in dataset_ids
    }
    ops: list[ReplayOp] = []
    for _ in range(max(1, repeats)):
        for index in range(queries_per_dataset):
            for dataset_id in dataset_ids:
                queries = per_dataset[dataset_id]
                if index < len(queries):
                    ops.append(ReplayOp(dataset_id, queries[index], k))
    return ops


def swap_reweight_delta(service_or_session) -> MappingDelta:
    """A deterministic, always-valid write: swap the two top probabilities.

    Builds a :class:`~repro.engine.delta.MappingDelta` that reweights
    mappings ``0`` and ``1`` to each other's *current* probabilities.  The
    swap is mass-preserving by construction, and applying the same delta
    twice is valid too (the pair's probability sum never changes), so the
    delta can be replayed blindly — including during a warm-up pass.
    """
    session = getattr(service_or_session, "dataspace", service_or_session)
    mapping_set = session.mapping_set
    if len(mapping_set) < 2:
        raise ValueError("swap_reweight_delta needs at least two mappings")
    return MappingDelta.build(
        reweight={0: mapping_set[1].probability, 1: mapping_set[0].probability}
    )


def build_mixed_workload(
    dataset_ids: Sequence[str],
    *,
    queries_per_dataset: int = _DEFAULT_QUERIES_PER_DATASET,
    repeats: int = 2,
    k: Optional[int] = None,
    deltas: Optional[dict[str, Sequence[MappingDelta]]] = None,
) -> list[ReplayOp]:
    """A read/write operation stream: queries with interleaved deltas.

    Emits the same round-robin read stream as :func:`build_workload`, but
    after each repeat pass appends one write op per dataset listed in
    ``deltas`` (cycling through that dataset's delta sequence), so each
    subsequent pass queries a mutated mapping set — the workload shape where
    delta-epoch cache retention and planner decision invalidation are
    exercised together.
    """
    deltas = deltas or {}
    cursors = {dataset_id: 0 for dataset_id in deltas}
    per_dataset = {
        dataset_id: workload_queries(dataset_id, limit=queries_per_dataset)
        for dataset_id in dataset_ids
    }
    ops: list[ReplayOp] = []
    for _ in range(max(1, repeats)):
        for index in range(queries_per_dataset):
            for dataset_id in dataset_ids:
                queries = per_dataset[dataset_id]
                if index < len(queries):
                    ops.append(ReplayOp(dataset_id, queries[index], k))
        for dataset_id in dataset_ids:
            sequence = deltas.get(dataset_id)
            if sequence:
                delta = sequence[cursors[dataset_id] % len(sequence)]
                cursors[dataset_id] += 1
                ops.append(ReplayOp(dataset_id, "<apply_delta>", delta=delta))
    return ops


def _run_ops(
    ops: Sequence[ReplayOp],
    services: dict[str, QueryService],
    concurrency: int,
    latencies: Optional[list] = None,
) -> int:
    """Execute every op at the given concurrency; returns the error count."""
    errors = 0

    def run_one(op: ReplayOp) -> Optional[float]:
        started = time.perf_counter()
        try:
            if op.delta is not None:
                services[op.dataset_id].apply_delta(op.delta)
            else:
                services[op.dataset_id].execute(op.query, k=op.k)
        except ReproError:
            return None
        return (time.perf_counter() - started) * 1000.0

    if concurrency > 1:
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            measured = list(pool.map(run_one, ops))
    else:
        measured = [run_one(op) for op in ops]
    for sample in measured:
        if sample is None:
            errors += 1
        elif latencies is not None:
            latencies.append(sample)
    return errors


def replay_workload(
    ops: Sequence[ReplayOp],
    *,
    concurrency: int = 8,
    h: int = 25,
    seed: Optional[int] = None,
    services: Optional[dict[str, QueryService]] = None,
    use_cache: bool = True,
    warm: bool = False,
) -> ReplayReport:
    """Replay ``ops`` and measure throughput and latency percentiles.

    Parameters
    ----------
    ops:
        The operation stream (see :func:`build_workload`).
    concurrency:
        Number of replay worker threads issuing operations.
    h:
        Mapping-set size for sessions the driver opens itself.
    seed:
        Seed passed to driver-opened sessions.
    services:
        Pre-built ``dataset_id -> QueryService`` map; when omitted the
        driver opens one session + service per dataset and closes them
        afterwards.
    use_cache:
        Whether driver-opened services consult the session result cache.
    warm:
        Run the whole stream once, untimed, before the measured pass — the
        measured pass then serves from a warm result cache.
    """
    from repro.engine import Dataspace

    owned: list[QueryService] = []
    if services is None:
        services = {}
        for dataset_id in sorted({op.dataset_id for op in ops}):
            session = Dataspace.from_dataset(dataset_id, h=h, seed=seed)
            service = QueryService(session, max_workers=concurrency, use_cache=use_cache)
            services[dataset_id] = service
            owned.append(service)
    try:
        if warm:
            _run_ops(ops, services, concurrency)
        latencies: list[float] = []
        started = time.perf_counter()
        errors = _run_ops(ops, services, concurrency, latencies)
        elapsed = time.perf_counter() - started

        per_dataset: dict[str, int] = {}
        for op in ops:
            per_dataset[op.dataset_id] = per_dataset.get(op.dataset_id, 0) + 1
        cache_totals = {"hits": 0, "misses": 0, "evictions": 0}
        for service in services.values():
            stats = service.dataspace.result_cache.stats()
            cache_totals["hits"] += stats.hits
            cache_totals["misses"] += stats.misses
            cache_totals["evictions"] += stats.evictions
        latency_ms = percentile_summary(latencies) if latencies else {}
        writes = sum(1 for op in ops if op.is_write)
        return ReplayReport(
            num_ops=len(ops),
            concurrency=concurrency,
            warmed=warm,
            elapsed_seconds=elapsed,
            throughput_qps=len(ops) / elapsed if elapsed > 0 else 0.0,
            errors=errors,
            reads=len(ops) - writes,
            writes=writes,
            latency_ms=latency_ms,
            per_dataset=per_dataset,
            cache=cache_totals,
        )
    finally:
        for service in owned:
            service.close()
