"""Label-casing conventions for the synthetic schema corpus.

Every element label in the corpus is derived from a tuple of *tokens*
(for example ``("buyer", "part", "ID")``).  Each e-commerce standard in the
corpus renders tokens with its own convention — CamelCase for XCBL-style
schemas, ``UPPER_SNAKE`` for OpenTrans-style schemas, and so on — which is
what makes cross-standard matching non-trivial for a name-based matcher while
still leaving enough signal (shared tokens) for realistic correspondences.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_label", "CASING_STYLES"]

#: Casing styles understood by :func:`render_label`.
CASING_STYLES = ("camel", "upper_snake", "lower_camel", "title_snake")


def _cap(token: str) -> str:
    """Capitalise ``token`` unless it is an acronym (already all upper-case)."""
    if token.isupper():
        return token
    return token[:1].upper() + token[1:]


def render_label(tokens: Sequence[str], style: str) -> str:
    """Render ``tokens`` as a single element label in the given casing style.

    Parameters
    ----------
    tokens:
        Non-empty sequence of word tokens; acronyms should be passed
        upper-case (``"ID"``, ``"PO"``) so CamelCase styles preserve them.
    style:
        One of :data:`CASING_STYLES`:

        ``camel``
            ``("unit", "price")`` → ``"UnitPrice"``
        ``upper_snake``
            ``("unit", "price")`` → ``"UNIT_PRICE"``
        ``lower_camel``
            ``("unit", "price")`` → ``"unitPrice"``
        ``title_snake``
            ``("unit", "price")`` → ``"Unit_Price"``

    Raises
    ------
    ValueError
        If ``tokens`` is empty or ``style`` is unknown.
    """
    if not tokens:
        raise ValueError("cannot render a label from an empty token sequence")
    if style == "camel":
        return "".join(_cap(token) for token in tokens)
    if style == "upper_snake":
        return "_".join(token.upper() for token in tokens)
    if style == "lower_camel":
        first = tokens[0] if tokens[0].isupper() else tokens[0].lower()
        return first + "".join(_cap(token) for token in tokens[1:])
    if style == "title_snake":
        return "_".join(_cap(token) for token in tokens)
    raise ValueError(f"unknown casing style {style!r}; expected one of {CASING_STYLES}")
