"""Schema elements: the nodes of a schema tree."""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["SchemaElement"]


class SchemaElement:
    """A single element declaration in an XML schema tree.

    An element has a *label* (its tag name), an integer *element id* that is
    unique within its schema, an optional parent and an ordered list of
    children.  The dot-separated *path* from the schema root (for example
    ``"ORDER.IP.ICN"``) identifies the element uniquely and is the hash key
    used by the block tree's hash table ``H``.

    Elements are created by :class:`repro.schema.schema.Schema`; user code
    normally obtains them from a schema rather than instantiating them
    directly.

    Parameters
    ----------
    element_id:
        Identifier unique within the owning schema (assigned by the schema).
    label:
        Tag name of the element.
    parent:
        Parent element, or ``None`` for the schema root.
    repeatable:
        Whether documents may contain several sibling instances of this
        element (used by the document generator; analogous to
        ``maxOccurs > 1`` in XSD).
    concept:
        Optional semantic concept tag used by the synthetic corpus so that
        different standards can spell the same concept differently.  It is
        *not* consulted by the matcher (which works purely from labels and
        structure) but is handy for ground-truth style analyses in tests.
    """

    __slots__ = (
        "element_id",
        "label",
        "parent",
        "children",
        "repeatable",
        "concept",
        "_path",
        "_depth",
    )

    def __init__(
        self,
        element_id: int,
        label: str,
        parent: Optional["SchemaElement"] = None,
        repeatable: bool = False,
        concept: Optional[str] = None,
    ) -> None:
        self.element_id = element_id
        self.label = label
        self.parent = parent
        self.children: list[SchemaElement] = []
        self.repeatable = repeatable
        self.concept = concept
        if parent is None:
            self._path = label
            self._depth = 0
        else:
            self._path = f"{parent.path}.{label}"
            self._depth = parent.depth + 1

    # ------------------------------------------------------------------ #
    # Basic structural properties
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        """Dot-separated label path from the schema root to this element."""
        return self._path

    @property
    def depth(self) -> int:
        """Number of edges between this element and the schema root."""
        return self._depth

    @property
    def is_leaf(self) -> bool:
        """``True`` when the element has no children."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """``True`` when the element has no parent."""
        return self.parent is None

    @property
    def fanout(self) -> int:
        """Number of direct children."""
        return len(self.children)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def iter_subtree(self) -> Iterator["SchemaElement"]:
        """Yield this element and all descendants in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["SchemaElement"]:
        """Yield all proper descendants of this element in pre-order."""
        iterator = self.iter_subtree()
        next(iterator)  # skip self
        yield from iterator

    def iter_ancestors(self) -> Iterator["SchemaElement"]:
        """Yield the proper ancestors of this element, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def subtree_size(self) -> int:
        """Number of elements in the subtree rooted at this element."""
        return sum(1 for _ in self.iter_subtree())

    def is_ancestor_of(self, other: "SchemaElement") -> bool:
        """Return ``True`` when ``other`` is a proper descendant of this element."""
        if other is self:
            return False
        return other.path.startswith(self._path + ".")

    def is_descendant_of(self, other: "SchemaElement") -> bool:
        """Return ``True`` when this element is a proper descendant of ``other``."""
        return other.is_ancestor_of(self)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return f"SchemaElement(id={self.element_id}, path={self._path!r})"

    def __hash__(self) -> int:
        return hash((id(self.parent) if self.parent is None else self._path, self.element_id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchemaElement):
            return NotImplemented
        return self.element_id == other.element_id and self._path == other._path
