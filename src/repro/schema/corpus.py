"""Deterministic synthetic schema corpus standing in for the paper's datasets.

The paper's evaluation (Table II) uses seven real e-commerce schemas.  Those
XSDs (and the COMA++ matcher outputs over them) are not available offline, so
this module generates, for each standard, a purchase-order schema tree with

* the same element count as the paper reports (|Excel| = 48, |Noris| = 66,
  |Paragon| = 69, |CIDX| = 39, |Apertum| = 166, |OpenTrans| = 247,
  |XCBL| = 1076),
* a shared conceptual core (header, parties, order lines, payment, tax,
  transport) spelled with per-standard vocabulary and casing conventions, and
* padding "extension modules" drawn from a shared library, so that two large
  schemas develop many genuine extra correspondences while small schemas stay
  sparse.

Everything is deterministic: the same standard name and seed always produce
an identical schema, element ids included.
"""

from __future__ import annotations

from functools import lru_cache

from repro._rng import make_rng
from repro.exceptions import DatasetError
from repro.schema.concepts import (
    EXTENSION_MODULES,
    master_concept_tree,
    module_field_tokens,
)
from repro.schema.naming import render_label
from repro.schema.schema import Schema

__all__ = ["SCHEMA_NAMES", "SCHEMA_SIZES", "available_schemas", "load_corpus_schema"]


#: Standard → (casing style, target element count, included concept groups).
_PROFILES: dict[str, dict] = {
    "xcbl": {
        "casing": "camel",
        "size": 1076,
        "groups": None,  # None means: include every concept group.
        "root_tokens": ("order",),
    },
    "opentrans": {
        "casing": "upper_snake",
        "size": 247,
        "groups": None,
        "root_tokens": ("order",),
    },
    "apertum": {
        "casing": "camel",
        "size": 166,
        "groups": None,
        "root_tokens": ("order",),
    },
    "cidx": {
        "casing": "camel",
        "size": 39,
        "groups": {"header", "party.buyer", "lines", "core"},
        "root_tokens": ("order",),
    },
    "excel": {
        "casing": "title_snake",
        "size": 48,
        "groups": {"header", "party.buyer", "lines", "payment", "summary", "core"},
        "root_tokens": ("purchase", "order"),
    },
    "noris": {
        "casing": "lower_camel",
        "size": 66,
        "groups": {
            "header", "party.buyer", "party.deliver", "lines", "tax", "summary", "core",
        },
        "root_tokens": ("purchase", "order"),
    },
    "paragon": {
        "casing": "camel",
        "size": 69,
        "groups": {
            "header", "party.buyer", "party.seller", "lines", "payment", "tax",
            "summary", "core",
        },
        "root_tokens": ("order",),
    },
}

#: Canonical standard names, in the order used throughout the benchmarks.
SCHEMA_NAMES: tuple[str, ...] = tuple(sorted(_PROFILES))

#: Standard → element count (mirrors the |S| / |T| columns of Table II).
SCHEMA_SIZES: dict[str, int] = {name: profile["size"] for name, profile in _PROFILES.items()}

#: Container subtrees used when a very large schema (XCBL) needs more padding
#: than one pass over the module library provides; each pass wraps the library
#: in a differently named business-document section, keeping paths unique.
_SECTION_TOKENS: tuple[tuple[str, ...], ...] = (
    ("invoice", "detail"),
    ("shipment", "notice"),
    ("price", "catalog"),
    ("order", "response"),
    ("payment", "advice"),
    ("planning", "schedule"),
    ("quote", "request"),
    ("availability", "check"),
    ("remittance", "advice"),
    ("catalog", "update"),
)


def available_schemas() -> tuple[str, ...]:
    """Return the names of the standards in the corpus."""
    return SCHEMA_NAMES


def _build_core(schema: Schema, standard: str, profile: dict) -> None:
    """Instantiate the selected part of the master concept tree into ``schema``."""
    casing = profile["casing"]
    groups = profile["groups"]
    concept_root = master_concept_tree()

    def include(concept) -> bool:
        return groups is None or concept.group in groups

    root = schema.add_root(
        render_label(profile["root_tokens"], casing), concept=concept_root.key
    )

    def build(concept, parent_element) -> None:
        for child in concept.children:
            if not include(child):
                continue
            label = render_label(child.tokens_for(standard), casing)
            element = schema.add_child(
                parent_element, label, repeatable=child.repeatable, concept=child.key
            )
            build(child, element)

    build(concept_root, root)


def _add_module(schema: Schema, parent, standard: str, casing: str,
                module_index: int, field_count: int, repeatable: bool,
                budget: int) -> int:
    """Add one extension module (capped at ``budget`` elements); return elements added."""
    if budget <= 0:
        return 0
    name_tokens, declared_fields = EXTENSION_MODULES[module_index % len(EXTENSION_MODULES)]
    field_count = min(field_count if field_count else declared_fields, max(budget - 1, 0))
    label = render_label(name_tokens, casing)
    concept_key = "ext." + ".".join(name_tokens)
    module_element = schema.add_child(parent, label, repeatable=repeatable, concept=concept_key)
    added = 1
    for field_index in range(field_count):
        tokens = module_field_tokens(module_index + field_index)
        schema.add_child(
            module_element,
            render_label(tokens, casing),
            concept=f"{concept_key}.{'.'.join(tokens)}",
        )
        added += 1
    return added


def _pad_schema(schema: Schema, standard: str, profile: dict, seed: int | None) -> None:
    """Pad ``schema`` with extension modules until it reaches the profile size."""
    casing = profile["casing"]
    target = profile["size"]
    rng = make_rng(seed, f"corpus:{standard}")
    root = schema.root
    assert root is not None

    # Candidate attach points for the first pass: the root plus a couple of
    # deep structural elements, so padding does not all hang off one node.
    attach_points = [root]
    for element in schema.iter_preorder():
        if element.concept in ("order.po_line", "order.deliver_to", "order.transport_info"):
            attach_points.append(element)

    module_cursor = 0
    section_cursor = 0
    pass_parent = root
    while len(schema) < target:
        budget = target - len(schema)
        if module_cursor > 0 and module_cursor % len(EXTENSION_MODULES) == 0:
            # One full pass over the library is exhausted: open a new
            # business-document section so module paths stay unique.
            section_tokens = _SECTION_TOKENS[section_cursor % len(_SECTION_TOKENS)]
            section_label = render_label(section_tokens, casing)
            pass_parent = schema.add_child(
                root, section_label, concept="section." + ".".join(section_tokens)
            )
            section_cursor += 1
            budget -= 1
            if budget <= 0:
                break
        if module_cursor < len(EXTENSION_MODULES):
            parent = attach_points[module_cursor % len(attach_points)]
        else:
            parent = pass_parent
        repeatable = rng.random() < 0.2
        _add_module(
            schema, parent, standard, casing,
            module_index=module_cursor, field_count=0,
            repeatable=repeatable, budget=budget,
        )
        module_cursor += 1


def load_corpus_schema(standard: str, seed: int | None = None) -> Schema:
    """Build (or fetch from cache) the synthetic schema for ``standard``.

    Parameters
    ----------
    standard:
        One of :data:`SCHEMA_NAMES` (case-insensitive); the aliases ``"ot"``
        and ``"opentrans"`` both name the OpenTrans schema.
    seed:
        Base seed controlling the padding randomisation; ``None`` uses the
        library default so all callers share one canonical corpus.

    Returns
    -------
    Schema
        A frozen schema whose element count equals the size reported for the
        standard in Table II of the paper.

    Raises
    ------
    DatasetError
        If ``standard`` is unknown.
    """
    key = standard.strip().lower()
    if key == "ot":
        key = "opentrans"
    if key not in _PROFILES:
        raise DatasetError(
            f"unknown schema standard {standard!r}; available: {', '.join(SCHEMA_NAMES)}"
        )
    return _load_corpus_schema_cached(key, seed)


@lru_cache(maxsize=32)
def _load_corpus_schema_cached(key: str, seed: int | None) -> Schema:
    profile = _PROFILES[key]
    schema = Schema(key)
    _build_core(schema, key, profile)
    if len(schema) > profile["size"]:
        raise DatasetError(
            f"profile for {key!r} selects {len(schema)} core elements, which exceeds "
            f"the target size {profile['size']}"
        )
    _pad_schema(schema, key, profile, seed)
    schema.freeze()
    schema.validate()
    return schema
