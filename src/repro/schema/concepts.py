"""The purchase-order concept ontology behind the synthetic schema corpus.

The paper evaluates on real e-commerce schemas (XCBL, OpenTrans, Apertum,
CIDX, and the COMA++ evaluation schemas Excel, Noris and Paragon).  Those
XSDs are not redistributable here, so the corpus derives every schema from a
single *concept tree* describing a purchase order: order header, business
parties with contacts and addresses, order lines, payment, tax and transport
segments.

Each concept carries a canonical token tuple plus optional per-standard
synonym token tuples.  A standard's schema is produced by selecting a profile
of concept groups, rendering tokens with the standard's casing convention
(:mod:`repro.schema.naming`), and padding with *extension modules* drawn from
a shared module library until the schema reaches the element count reported
in Table II of the paper.

The shared party subtree deliberately appears several times per schema
(buyer, seller, deliver-to, invoice party).  A name-based matcher therefore
produces near-tied correspondences between, say, the four ``ContactName``
elements of one schema and the contact names of another — exactly the kind
of ambiguity the paper's running example (Figure 1) is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = [
    "Concept",
    "master_concept_tree",
    "party_subtree",
    "EXTENSION_MODULES",
    "GROUP_NAMES",
]


@dataclass
class Concept:
    """A node of the concept tree.

    Parameters
    ----------
    key:
        Unique identifier of the concept (dot path in the concept tree).
    tokens:
        Canonical token tuple used to render the element label.
    children:
        Child concepts.
    repeatable:
        Whether document instances may repeat this element under one parent.
    group:
        Concept-group tag used by standard profiles to include or exclude
        whole functional areas (``"header"``, ``"party.buyer"``, ``"lines"``,
        ``"tax"``, ...).
    synonyms:
        Optional per-standard token tuples overriding ``tokens``
        (for example OpenTrans spelling the order line concept
        ``("order", "item")`` instead of ``("PO", "line")``).
    """

    key: str
    tokens: tuple[str, ...]
    children: list["Concept"] = field(default_factory=list)
    repeatable: bool = False
    group: str = "core"
    synonyms: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def tokens_for(self, standard: str) -> tuple[str, ...]:
        """Return the token tuple used by ``standard`` for this concept."""
        return self.synonyms.get(standard, self.tokens)

    def iter_subtree(self) -> Iterator["Concept"]:
        """Yield this concept and all descendants in pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def add(
        self,
        key: str,
        tokens: Sequence[str],
        repeatable: bool = False,
        group: Optional[str] = None,
        synonyms: Optional[dict[str, Sequence[str]]] = None,
    ) -> "Concept":
        """Append a child concept and return it (builder helper)."""
        child = Concept(
            key=f"{self.key}.{key}",
            tokens=tuple(tokens),
            repeatable=repeatable,
            group=group if group is not None else self.group,
            synonyms={k: tuple(v) for k, v in (synonyms or {}).items()},
        )
        self.children.append(child)
        return child


#: Names of the concept groups a profile can include.
GROUP_NAMES = (
    "header",
    "party.buyer",
    "party.seller",
    "party.deliver",
    "party.invoice",
    "lines",
    "payment",
    "tax",
    "transport",
    "summary",
)


def party_subtree(parent: Concept, key: str, tokens: Sequence[str], group: str,
                  synonyms: Optional[dict[str, Sequence[str]]] = None) -> Concept:
    """Attach the shared business-party subtree under ``parent``.

    The party subtree (identifier, name, contact and postal address) is the
    main source of ambiguity in the corpus because it repeats for every
    business role.
    """
    party = parent.add(key, tokens, group=group, synonyms=synonyms)
    party.add("party_id", ("party", "ID"))
    party.add("party_name", ("party", "name"))
    contact = party.add("contact", ("contact",))
    contact.add("contact_name", ("contact", "name"))
    contact.add("email", ("E", "mail"), synonyms={"opentrans": ("e", "mail")})
    contact.add("phone", ("phone",))
    contact.add("fax", ("fax",))
    address = party.add("address", ("address",))
    address.add("street", ("street",))
    address.add("city", ("city",))
    address.add("postal_code", ("postal", "code"))
    address.add("region", ("region",))
    address.add("country", ("country",))
    return party


def master_concept_tree() -> Concept:
    """Build and return the root of the master purchase-order concept tree."""
    order = Concept(key="order", tokens=("order",), group="core")

    header = order.add("header", ("order", "header"), group="header")
    header.add("order_number", ("order", "number"), group="header")
    header.add("order_date", ("order", "date"), group="header")
    header.add("currency", ("currency",), group="header")
    header.add("order_type", ("order", "type"), group="header")
    header.add("reference", ("customer", "reference"), group="header")

    party_subtree(
        order, "buyer", ("buyer",), group="party.buyer",
        synonyms={"opentrans": ("buyer", "party"), "xcbl": ("buyer", "party")},
    )
    party_subtree(
        order, "seller", ("seller",), group="party.seller",
        synonyms={"opentrans": ("supplier", "party"), "xcbl": ("seller", "party")},
    )
    party_subtree(
        order, "deliver_to", ("deliver", "to"), group="party.deliver",
        synonyms={
            "opentrans": ("delivery", "party"),
            "xcbl": ("ship", "to", "party"),
            "cidx": ("ship", "to"),
        },
    )
    party_subtree(
        order, "invoice_party", ("invoice", "party"), group="party.invoice",
        synonyms={"xcbl": ("bill", "to", "party"), "cidx": ("bill", "to")},
    )

    # The deliver-to role also has delivery specifics in most standards.
    deliver = next(c for c in order.children if c.key == "order.deliver_to")
    deliver.add("delivery_date", ("delivery", "date"), group="party.deliver")
    deliver.add("shipping_method", ("shipping", "method"), group="party.deliver")

    line = order.add(
        "po_line", ("PO", "line"), repeatable=True, group="lines",
        synonyms={
            "opentrans": ("order", "item", "line"),
            "xcbl": ("line", "item", "detail"),
            "cidx": ("order", "line", "item"),
        },
    )
    line.add("line_no", ("line", "no"), group="lines",
             synonyms={"opentrans": ("line", "item", "number")})
    line.add("buyer_part_id", ("buyer", "part", "ID"), group="lines")
    line.add("supplier_part_id", ("supplier", "part", "ID"), group="lines")
    line.add("item_description", ("item", "description"), group="lines")
    line.add("quantity", ("quantity",), group="lines")
    line.add("unit_of_measure", ("unit", "of", "measure"), group="lines")
    line.add("unit_price", ("unit", "price"), group="lines")
    line.add("line_total", ("line", "total"), group="lines")
    line.add("requested_delivery_date", ("requested", "delivery", "date"), group="lines")

    payment = order.add("payment_terms", ("payment", "terms"), group="payment")
    payment.add("terms_note", ("terms", "note"), group="payment")
    payment.add("discount_percent", ("discount", "percent"), group="payment")
    payment.add("net_days", ("net", "days"), group="payment")

    tax = order.add("tax_summary", ("tax", "summary"), group="tax")
    tax.add("tax_code", ("tax", "code"), group="tax")
    tax.add("tax_rate", ("tax", "rate"), group="tax")
    tax.add("tax_amount", ("tax", "amount"), group="tax")

    transport = order.add("transport_info", ("transport", "info"), group="transport")
    transport.add("carrier", ("carrier",), group="transport")
    transport.add("transport_mode", ("transport", "mode"), group="transport")
    transport.add("tracking_number", ("tracking", "number"), group="transport")

    summary = order.add("order_summary", ("order", "summary"), group="summary")
    summary.add("total_amount", ("total", "amount"), group="summary")
    summary.add("total_tax", ("total", "tax"), group="summary")
    summary.add("number_of_lines", ("number", "of", "lines"), group="summary")

    return order


# --------------------------------------------------------------------------- #
# Extension-module library used for padding schemas to their Table II sizes.
# --------------------------------------------------------------------------- #

#: Child-field token tuples that extension modules draw from.
_MODULE_FIELD_POOL: tuple[tuple[str, ...], ...] = (
    ("code",),
    ("description",),
    ("type",),
    ("value",),
    ("amount",),
    ("currency",),
    ("quantity",),
    ("start", "date"),
    ("end", "date"),
    ("reference", "ID"),
    ("status",),
    ("name",),
    ("note",),
    ("unit",),
    ("percentage",),
    ("document", "ID"),
    ("issue", "date"),
    ("revision",),
    ("language",),
    ("priority",),
)

#: (module name tokens, number of fields) — shared across standards so that
#: two large schemas padded from this library develop genuine extra
#: correspondences, which is what drives the high capacities of Table II's
#: XCBL/OpenTrans matchings.
EXTENSION_MODULES: tuple[tuple[tuple[str, ...], int], ...] = (
    (("shipment", "schedule"), 6),
    (("packaging", "info"), 5),
    (("hazardous", "material"), 6),
    (("customs", "info"), 7),
    (("allowance", "charge"), 6),
    (("attachment", "list"), 4),
    (("note", "list"), 3),
    (("contract", "reference"), 5),
    (("validity", "period"), 4),
    (("dimensions",), 6),
    (("quality", "info"), 5),
    (("batch", "info"), 5),
    (("serial", "numbers"), 3),
    (("warranty", "terms"), 4),
    (("price", "list"), 6),
    (("discount", "schedule"), 5),
    (("delivery", "schedule"), 7),
    (("substitution", "item"), 6),
    (("accounting", "info"), 6),
    (("cost", "center"), 4),
    (("project", "reference"), 5),
    (("approval", "info"), 5),
    (("change", "history"), 5),
    (("document", "reference"), 5),
    (("party", "tax", "info"), 5),
    (("bank", "account"), 6),
    (("payment", "card"), 5),
    (("freight", "terms"), 4),
    (("insurance", "info"), 5),
    (("inspection", "info"), 5),
    (("returns", "policy"), 4),
    (("license", "info"), 4),
    (("country", "of", "origin"), 3),
    (("commodity", "code"), 3),
    (("measurement", "list"), 5),
    (("special", "handling"), 4),
    (("temperature", "control"), 4),
    (("lot", "info"), 4),
    (("marking", "instructions"), 4),
    (("routing", "info"), 5),
)


def module_field_tokens(index: int) -> tuple[str, ...]:
    """Return the ``index``-th field token tuple, cycling over the pool."""
    return _MODULE_FIELD_POOL[index % len(_MODULE_FIELD_POOL)]
