"""Parsing and serialising schemas.

Two interchange formats are supported:

* a compact, indentation-based textual notation (two spaces per level)::

      Order
        DeliverTo
          Address
            Street
            City *

  where a trailing ``*`` marks the element as *repeatable* (documents may
  contain several instances under one parent, like ``maxOccurs="unbounded"``
  in XSD);

* a minimal XML/XSD-like notation where each element declaration is a tag and
  nesting expresses the content model::

      <Order>
        <DeliverTo>
          <Address>
            <Street/>
            <City repeatable="true"/>
          </Address>
        </DeliverTo>
      </Order>

Both formats round-trip through :func:`schema_to_text` / :func:`schema_to_xml`.
"""

from __future__ import annotations

import re

from repro.exceptions import SchemaParseError
from repro.schema.schema import Schema

__all__ = ["parse_schema", "schema_to_text", "parse_schema_xml", "schema_to_xml"]

_INDENT = "  "
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def parse_schema(text: str, name: str = "schema") -> Schema:
    """Parse the indentation-based schema notation into a :class:`Schema`.

    Parameters
    ----------
    text:
        Schema description; blank lines and lines starting with ``#`` are
        ignored.  Indentation must be multiples of two spaces and may only
        increase by one level at a time.
    name:
        Name given to the resulting schema.

    Raises
    ------
    SchemaParseError
        On malformed indentation, invalid element names, multiple roots or an
        empty description.
    """
    schema = Schema(name)
    # stack[i] is the most recently created element at depth i
    stack: list = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        stripped = raw_line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        indent = len(raw_line) - len(raw_line.lstrip(" "))
        if indent % len(_INDENT) != 0:
            raise SchemaParseError(
                f"line {line_number}: indentation must be a multiple of two spaces"
            )
        depth = indent // len(_INDENT)
        repeatable = stripped.endswith("*")
        label = stripped[:-1].strip() if repeatable else stripped
        if not _NAME_RE.match(label):
            raise SchemaParseError(f"line {line_number}: invalid element name {label!r}")
        if depth == 0:
            if schema.root is not None:
                raise SchemaParseError(
                    f"line {line_number}: multiple root elements ({label!r})"
                )
            element = schema.add_root(label, repeatable=repeatable)
            stack = [element]
        else:
            if depth > len(stack):
                raise SchemaParseError(
                    f"line {line_number}: indentation jumps by more than one level"
                )
            parent = stack[depth - 1]
            element = schema.add_child(parent, label, repeatable=repeatable)
            del stack[depth:]
            stack.append(element)
    if schema.root is None:
        raise SchemaParseError("schema description contains no elements")
    return schema.freeze()


def schema_to_text(schema: Schema) -> str:
    """Serialise ``schema`` to the indentation-based notation."""
    lines = []
    for element in schema.iter_preorder():
        suffix = " *" if element.repeatable else ""
        lines.append(f"{_INDENT * element.depth}{element.label}{suffix}")
    return "\n".join(lines) + "\n"


_TAG_RE = re.compile(
    r"<\s*(?P<close>/)?\s*(?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)"
    r"(?P<attrs>[^<>/]*)"
    r"(?P<selfclose>/)?\s*>"
)
_ATTR_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_\-]*)\s*=\s*\"([^\"]*)\"")


def parse_schema_xml(text: str, name: str = "schema") -> Schema:
    """Parse the minimal XML-like schema notation into a :class:`Schema`.

    Only element tags are interpreted; the sole recognised attribute is
    ``repeatable="true"``.  Text content between tags is ignored, making the
    parser tolerant of pretty-printing.

    Raises
    ------
    SchemaParseError
        On mismatched tags, multiple roots, or an empty document.
    """
    schema = Schema(name)
    stack: list = []
    for match in _TAG_RE.finditer(text):
        tag_name = match.group("name")
        attrs = dict(_ATTR_RE.findall(match.group("attrs") or ""))
        repeatable = attrs.get("repeatable", "false").lower() == "true"
        if match.group("close"):
            if not stack:
                raise SchemaParseError(f"unexpected closing tag </{tag_name}>")
            top = stack.pop()
            if top.label != tag_name:
                raise SchemaParseError(
                    f"closing tag </{tag_name}> does not match <{top.label}>"
                )
            continue
        if not stack:
            if schema.root is not None:
                raise SchemaParseError(f"multiple root elements ({tag_name!r})")
            element = schema.add_root(tag_name, repeatable=repeatable)
        else:
            element = schema.add_child(stack[-1], tag_name, repeatable=repeatable)
        if not match.group("selfclose"):
            stack.append(element)
    if stack:
        raise SchemaParseError(f"unclosed element <{stack[-1].label}>")
    if schema.root is None:
        raise SchemaParseError("schema document contains no elements")
    return schema.freeze()


def schema_to_xml(schema: Schema) -> str:
    """Serialise ``schema`` to the minimal XML-like notation."""
    lines: list[str] = []

    def emit(element, depth: int) -> None:
        indent = _INDENT * depth
        attr = ' repeatable="true"' if element.repeatable else ""
        if element.is_leaf:
            lines.append(f"{indent}<{element.label}{attr}/>")
        else:
            lines.append(f"{indent}<{element.label}{attr}>")
            for child in element.children:
                emit(child, depth + 1)
            lines.append(f"{indent}</{element.label}>")

    if schema.root is not None:
        emit(schema.root, 0)
    return "\n".join(lines) + "\n"
