"""XML schema substrate.

This package models the *source* and *target* schemas (``S`` and ``T`` in the
paper) as labelled ordered trees, provides a parser/serialiser for a compact
indentation-based notation, and ships a deterministic synthetic corpus that
stands in for the e-commerce schemas used in the paper's evaluation (XCBL,
OpenTrans, Apertum, CIDX, Excel, Noris, Paragon).
"""

from repro.schema.element import SchemaElement
from repro.schema.schema import Schema
from repro.schema.parser import parse_schema, parse_schema_xml, schema_to_text, schema_to_xml
from repro.schema.corpus import (
    SCHEMA_NAMES,
    available_schemas,
    load_corpus_schema,
)

__all__ = [
    "SchemaElement",
    "Schema",
    "parse_schema",
    "parse_schema_xml",
    "schema_to_text",
    "schema_to_xml",
    "SCHEMA_NAMES",
    "available_schemas",
    "load_corpus_schema",
]
