"""The :class:`Schema` tree: an XML schema as a labelled ordered tree."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.exceptions import SchemaError
from repro.schema.element import SchemaElement

__all__ = ["Schema"]


class Schema:
    """An XML schema represented as a rooted, ordered, labelled tree.

    The paper models both the source schema ``S`` and the target schema ``T``
    as element trees; correspondences, mappings and c-blocks all refer to
    elements of these trees.  A :class:`Schema` owns its
    :class:`~repro.schema.element.SchemaElement` objects, assigns them stable
    integer ids in creation order, and maintains indexes by id, by path and
    by label.

    Elements are added through :meth:`add_root` and :meth:`add_child`; once a
    schema has been handed to a matcher or a block tree it should be treated
    as immutable (call :meth:`freeze` to enforce this).

    Parameters
    ----------
    name:
        Human-readable schema name (``"XCBL"``, ``"Apertum"`` ...).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.root: Optional[SchemaElement] = None
        self._elements: list[SchemaElement] = []
        self._by_path: dict[str, SchemaElement] = {}
        self._by_label: dict[str, list[SchemaElement]] = {}
        self._frozen = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_root(self, label: str, repeatable: bool = False, concept: str | None = None) -> SchemaElement:
        """Create the root element.

        Raises
        ------
        SchemaError
            If the schema already has a root or has been frozen.
        """
        self._check_mutable()
        if self.root is not None:
            raise SchemaError(f"schema {self.name!r} already has a root element")
        element = SchemaElement(0, label, None, repeatable=repeatable, concept=concept)
        self.root = element
        self._register(element)
        return element

    def add_child(
        self,
        parent: SchemaElement,
        label: str,
        repeatable: bool = False,
        concept: str | None = None,
    ) -> SchemaElement:
        """Create a new element as the last child of ``parent``.

        Raises
        ------
        SchemaError
            If ``parent`` does not belong to this schema, the schema is
            frozen, or the resulting path would collide with an existing one.
        """
        self._check_mutable()
        if parent is not self.get(parent.element_id):
            raise SchemaError(
                f"parent element {parent!r} does not belong to schema {self.name!r}"
            )
        element = SchemaElement(
            len(self._elements), label, parent, repeatable=repeatable, concept=concept
        )
        if element.path in self._by_path:
            raise SchemaError(
                f"schema {self.name!r} already contains an element at path {element.path!r}"
            )
        parent.children.append(element)
        self._register(element)
        return element

    def freeze(self) -> "Schema":
        """Mark the schema immutable; further structural edits raise.

        Returns the schema itself so the call can be chained.
        """
        if self.root is None:
            raise SchemaError(f"cannot freeze schema {self.name!r}: it has no root")
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def _check_mutable(self) -> None:
        if self._frozen:
            raise SchemaError(f"schema {self.name!r} is frozen and cannot be modified")

    def _register(self, element: SchemaElement) -> None:
        self._elements.append(element)
        self._by_path[element.path] = element
        self._by_label.setdefault(element.label, []).append(element)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[SchemaElement]:
        return iter(self._elements)

    def __contains__(self, element: object) -> bool:
        if not isinstance(element, SchemaElement):
            return False
        return (
            0 <= element.element_id < len(self._elements)
            and self._elements[element.element_id] is element
        )

    def get(self, element_id: int) -> SchemaElement:
        """Return the element with ``element_id``.

        Raises
        ------
        SchemaError
            If no such element exists.
        """
        if 0 <= element_id < len(self._elements):
            return self._elements[element_id]
        raise SchemaError(f"schema {self.name!r} has no element with id {element_id}")

    def element_by_path(self, path: str) -> SchemaElement:
        """Return the element whose dot path equals ``path``.

        Raises
        ------
        SchemaError
            If the path does not exist in this schema.
        """
        try:
            return self._by_path[path]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no element at path {path!r}") from None

    def has_path(self, path: str) -> bool:
        """Return ``True`` when an element with the given dot path exists."""
        return path in self._by_path

    def elements_by_label(self, label: str) -> list[SchemaElement]:
        """Return all elements whose tag name equals ``label`` (possibly empty)."""
        return list(self._by_label.get(label, ()))

    def labels(self) -> set[str]:
        """Return the set of distinct labels used by the schema."""
        return set(self._by_label)

    # ------------------------------------------------------------------ #
    # Traversal and statistics
    # ------------------------------------------------------------------ #
    def iter_preorder(self) -> Iterator[SchemaElement]:
        """Yield all elements in document (pre-) order."""
        if self.root is None:
            return
        yield from self.root.iter_subtree()

    def iter_postorder(self) -> Iterator[SchemaElement]:
        """Yield all elements in post-order (children before parents)."""
        if self.root is None:
            return
        stack: list[tuple[SchemaElement, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def leaves(self) -> list[SchemaElement]:
        """Return all leaf elements in document order."""
        return [element for element in self.iter_preorder() if element.is_leaf]

    def depth(self) -> int:
        """Return the maximum element depth (root depth is 0)."""
        return max((element.depth for element in self._elements), default=0)

    def max_fanout(self) -> int:
        """Return the largest number of children of any element."""
        return max((element.fanout for element in self._elements), default=0)

    def filter_elements(self, predicate: Callable[[SchemaElement], bool]) -> list[SchemaElement]:
        """Return elements for which ``predicate`` holds, in document order."""
        return [element for element in self.iter_preorder() if predicate(element)]

    def subtree_paths(self, element: SchemaElement) -> list[str]:
        """Return the dot paths of the subtree rooted at ``element``."""
        return [node.path for node in element.iter_subtree()]

    def validate(self) -> None:
        """Check structural invariants and raise :class:`SchemaError` on violation.

        Invariants checked:

        * exactly one root, with no parent;
        * every non-root element's parent belongs to the schema and lists it
          among its children;
        * element ids are ``0..len-1`` in creation order;
        * paths are unique (guaranteed by construction but re-checked).
        """
        if self.root is None:
            raise SchemaError(f"schema {self.name!r} has no root")
        if self.root.parent is not None:
            raise SchemaError(f"schema {self.name!r}: root has a parent")
        seen_paths: set[str] = set()
        for index, element in enumerate(self._elements):
            if element.element_id != index:
                raise SchemaError(
                    f"schema {self.name!r}: element at position {index} has id {element.element_id}"
                )
            if element.path in seen_paths:
                raise SchemaError(f"schema {self.name!r}: duplicate path {element.path!r}")
            seen_paths.add(element.path)
            if element.parent is None:
                if element is not self.root:
                    raise SchemaError(
                        f"schema {self.name!r}: element {element.path!r} has no parent "
                        "but is not the root"
                    )
            else:
                if element.parent not in self:
                    raise SchemaError(
                        f"schema {self.name!r}: parent of {element.path!r} is foreign"
                    )
                if element not in element.parent.children:
                    raise SchemaError(
                        f"schema {self.name!r}: {element.path!r} missing from its parent's children"
                    )
        reachable = sum(1 for _ in self.iter_preorder())
        if reachable != len(self._elements):
            raise SchemaError(
                f"schema {self.name!r}: {len(self._elements) - reachable} elements unreachable from root"
            )

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def element_ids(self) -> Iterable[int]:
        """Return an iterable over all element ids."""
        return range(len(self._elements))

    def __repr__(self) -> str:
        return f"Schema(name={self.name!r}, elements={len(self._elements)})"
