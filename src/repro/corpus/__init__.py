"""The sharded corpus engine: partitioned documents, scatter-gather top-k.

This package scales the engine from one document per session to a
partitioned corpus (the ROADMAP's production-traffic story).  A
:class:`ShardedCorpus` partitions one or many documents into shards — by
subtree within a document (:func:`partition_document` /
:class:`ShardDocument`) and by dataset across sessions — compiles each
shard's mapping set (shared within a session, independent across datasets),
and answers PTQ / top-k queries with a scatter-gather executor: parallel
per-shard compiled evaluation, then an exact global merge.  Top-k selection uses per-shard probability upper bounds
to skip shards that cannot enter the current top-k.

Single-session corpora return results byte-identical to the unsharded
``compiled`` plan; the differential and golden suites pin this down for
shard counts 1, 2, 4 and 7.

Typical usage::

    from repro.engine import Dataspace

    ds = Dataspace.from_dataset("D7", h=100)
    corpus = ds.shard(4)                        # subtree sharding
    result = corpus.execute("Q7", k=10)         # == unsharded answers
    print(corpus.explain("Q7").format())        # fan-out / skips / merge

    from repro.corpus import ShardedCorpus
    multi = ShardedCorpus.from_datasets(["D1", "D2", "D7"], h=25)
    ranked = multi.top_k("//ContactName", k=5)  # bound-pruned global top-k
"""

from repro.corpus.engine import (
    CorpusAnswer,
    CorpusExecution,
    CorpusShard,
    ShardedCorpus,
    ShardReport,
)
from repro.corpus.sharding import (
    DocumentPartition,
    ShardDocument,
    partition_document,
    subtree_size,
)

__all__ = [
    "ShardedCorpus",
    "CorpusShard",
    "CorpusAnswer",
    "CorpusExecution",
    "ShardReport",
    "ShardDocument",
    "DocumentPartition",
    "partition_document",
    "subtree_size",
]
