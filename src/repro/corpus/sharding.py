"""Document partitioning for the sharded corpus engine.

A shard of a document is a *view*, not a copy: :class:`ShardDocument` shares
the base document's :class:`~repro.document.node.DocumentNode` objects (and
therefore their node ids and region encoding) and only narrows the
per-element candidate index that twig matching draws from.  That is what
makes scatter-gather results mergeable byte-for-byte — a match found on a
shard *is* a match of the base document, with the same canonical form.

:func:`partition_document` cuts a finalized document into ``num_shards``
views along subtree boundaries:

* a **cut frontier** of disjoint subtrees is grown from the root's children,
  repeatedly expanding the largest frontier subtree until there are enough
  cuts to balance (``cut_factor`` subtrees per shard);
* the nodes *above* the frontier — the **spine** — are replicated into every
  shard, so matches that descend through the spine into one subtree are
  complete inside the owning shard;
* frontier subtrees are assigned greedily (largest first, to the least
  loaded shard), which is deterministic and keeps shard sizes even.

The one match shape a subtree shard cannot see on its own is a *crossing*
match: a branchy query whose root binds a spine node and whose branches land
in two different frontier subtrees.  The corpus engine routes exactly those
rewrites through a spine pass over the base document (see
:mod:`repro.corpus.engine`); everything else is provably shard-local because
every matched node is a descendant-or-self of the query root's binding.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.document.document import XMLDocument
from repro.document.node import DocumentNode
from repro.exceptions import CorpusError

__all__ = ["ShardDocument", "DocumentPartition", "partition_document", "subtree_size"]

#: Target number of frontier subtrees per shard: more cuts than shards lets
#: the greedy assignment even out skewed subtree sizes.
DEFAULT_CUT_FACTOR = 4

#: Upper bound on frontier expansion, so partitioning a huge flat document
#: stays linear in the number of cuts actually needed.
MAX_CUTS = 4096


def subtree_size(node: DocumentNode) -> int:
    """Number of nodes in ``node``'s subtree, from the region encoding.

    Finalisation assigns every node one ``start`` and one ``end`` counter
    value, so a subtree spanning ``[start, end]`` holds exactly
    ``(end - start + 1) // 2`` nodes.
    """
    return (node.end - node.start + 1) // 2


class ShardDocument:
    """One shard of a partitioned document: a narrowed candidate index.

    The view quacks like an :class:`~repro.document.document.XMLDocument` as
    far as twig matching is concerned (``finalized``, ``schema``,
    ``nodes_of_element``) while sharing the base document's node objects —
    node ids, values and region encoding are the originals, so matches found
    on different shards of one document canonicalise identically and
    deduplicate under set union.
    """

    __slots__ = (
        "base",
        "shard_id",
        "schema",
        "name",
        "num_subtrees",
        "present_elements",
        "_by_element",
        "_num_nodes",
    )

    def __init__(
        self,
        base: XMLDocument,
        shard_id: int,
        spine: Sequence[DocumentNode],
        subtrees: Sequence[DocumentNode],
    ) -> None:
        self.base = base
        self.shard_id = shard_id
        self.schema = base.schema
        self.name = f"{base.name}#shard{shard_id}"
        self.num_subtrees = len(subtrees)
        members: list[DocumentNode] = list(spine)
        for top in subtrees:
            members.extend(top.iter_subtree())
        # Candidate lists in document order, exactly like the base index.
        members.sort(key=lambda node: node.start)
        by_element: dict[int, list[DocumentNode]] = {}
        for node in members:
            by_element.setdefault(node.element_id, []).append(node)
        self._by_element = by_element
        self._num_nodes = len(members)
        #: Schema elements with at least one instance in this shard; the
        #: scatter step prunes rewrites that touch an absent element.
        self.present_elements = frozenset(by_element)

    @property
    def finalized(self) -> bool:
        """Shard views exist only over finalized documents."""
        return True

    def __len__(self) -> int:
        return self._num_nodes

    def nodes_of_element(self, element_id: int) -> list[DocumentNode]:
        """The shard's instances of ``element_id`` (shared node objects)."""
        return list(self._by_element.get(element_id, ()))

    def covers_elements(self, element_ids: Iterable[int]) -> bool:
        """``True`` when every given element has an instance in this shard."""
        return all(element_id in self.present_elements for element_id in element_ids)

    def __repr__(self) -> str:
        return (
            f"ShardDocument({self.name!r}, nodes={self._num_nodes}, "
            f"subtrees={self.num_subtrees})"
        )


@dataclass(frozen=True)
class DocumentPartition:
    """A document cut into shard views plus the replicated spine."""

    document: XMLDocument
    shards: tuple[ShardDocument, ...]
    spine_node_ids: frozenset[int]
    spine_element_ids: frozenset[int]

    @property
    def num_shards(self) -> int:
        """Number of shard views."""
        return len(self.shards)

    def describe(self) -> dict:
        """JSON-serialisable partition summary (sizes, spine, balance)."""
        sizes = [len(shard) for shard in self.shards]
        return {
            "document": self.document.name,
            "num_nodes": len(self.document),
            "num_shards": len(self.shards),
            "spine_nodes": len(self.spine_node_ids),
            "shard_nodes": sizes,
            "shard_subtrees": [shard.num_subtrees for shard in self.shards],
            "largest_shard": max(sizes, default=0),
        }


def partition_document(
    document: XMLDocument,
    num_shards: int,
    *,
    cut_factor: int = DEFAULT_CUT_FACTOR,
    max_cuts: int = MAX_CUTS,
) -> DocumentPartition:
    """Cut ``document`` into ``num_shards`` balanced :class:`ShardDocument` views.

    Deterministic for a given document: the frontier expansion always splits
    the largest expandable subtree (ties broken by document order) and the
    greedy assignment always places the largest remaining subtree on the
    least loaded shard (ties broken by shard index).

    Raises
    ------
    CorpusError
        If ``num_shards`` is not positive or the document is not finalized.
    """
    if num_shards < 1:
        raise CorpusError(f"num_shards must be at least 1, got {num_shards}")
    if document.root is None or not document.finalized:
        raise CorpusError(
            f"document {document.name!r} must be finalized before partitioning"
        )

    target_cuts = min(max_cuts, max(num_shards, num_shards * cut_factor))
    spine: list[DocumentNode] = [document.root]
    # Heap of expandable frontier subtrees: largest first, document order on ties.
    heap: list[tuple[int, int, DocumentNode]] = [
        (-subtree_size(child), child.start, child) for child in document.root.children
    ]
    heapq.heapify(heap)
    atoms: list[DocumentNode] = []  # frontier subtrees we will not expand further
    while heap and len(heap) + len(atoms) < target_cuts:
        _, _, node = heapq.heappop(heap)
        if not node.children:
            atoms.append(node)
            continue
        spine.append(node)
        for child in node.children:
            heapq.heappush(heap, (-subtree_size(child), child.start, child))
    frontier = atoms + [entry[2] for entry in heap]

    # Greedy balanced assignment: largest subtree first onto the least loaded
    # shard.  Shards beyond the frontier size simply stay spine-only.
    assignments: list[list[DocumentNode]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    for node in sorted(frontier, key=lambda n: (-subtree_size(n), n.start)):
        index = min(range(num_shards), key=lambda j: (loads[j], j))
        assignments[index].append(node)
        loads[index] += subtree_size(node)

    shards = tuple(
        ShardDocument(document, shard_id, spine, assigned)
        for shard_id, assigned in enumerate(assignments)
    )
    return DocumentPartition(
        document=document,
        shards=shards,
        spine_node_ids=frozenset(node.node_id for node in spine),
        spine_element_ids=frozenset(node.element_id for node in spine),
    )
