"""The sharded corpus engine: scatter-gather PTQ evaluation over shards.

:class:`ShardedCorpus` generalises a single :class:`~repro.engine.Dataspace`
session to a partitioned corpus.  Shards arise along two axes:

* **by subtree** — one session's document is cut into ``shards_per_session``
  :class:`~repro.corpus.sharding.ShardDocument` views (spine replicated,
  frontier subtrees distributed; see :mod:`repro.corpus.sharding`);
* **by dataset** — several sessions, each over its own schema pair, mapping
  set and document, contribute their shards to one corpus.

Every shard evaluates on the compiled
:class:`~repro.engine.compiled.CompiledMappingSet` of *its own session's*
mapping set — shards of one session share that session's artifact (the
compilation depends only on the mapping set, never on a document), while
by-dataset shards compile genuinely independent sets — so per-shard
evaluation runs the same rewrite-grouped bitset algebra as the engine's
``compiled`` plan.  A query is answered scatter-gather:

1. **resolve + select** — the query is prepared once per session; for top-k,
   candidate mappings are drawn session by session in descending order of
   each session's *probability upper bound* (its best mapping probability),
   and a session whose bound cannot beat the current k-th best is skipped
   outright — its shards are never evaluated;
2. **scatter** — the selected mappings are partitioned into rewrite groups
   once per session; each remaining shard filters that plan against its own
   view (pruning rewrites touching elements absent from the shard) and
   matches each distinct rewrite once; *crossing-capable* rewrites (a
   branchy query whose root element instantiates a spine node) are instead
   evaluated once per session in a spine pass over the base document;
3. **gather** — per-mapping canonical match sets are unioned; shards share
   node ids with the base document, so duplicated matches (spine nodes are
   replicated) deduplicate exactly and the merged result is byte-identical
   to the unsharded compiled plan.

Results ride the owning sessions' generation-keyed
:class:`~repro.engine.cache.ResultCache` under corpus-scoped
:class:`~repro.engine.cache.CacheKey` entries (``scope="corpus"`` for merged
results, ``scope="shard"``/``"spine"`` for partials), so sharded and
unsharded executions can never collide in the cache and a reconfigured
session transparently retires its shard state.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.corpus.sharding import DocumentPartition, partition_document
from repro.engine.cache import CacheKey
from repro.engine.compiled import CompiledMappingSet
from repro.engine.dataspace import Dataspace, EngineSnapshot
from repro.engine.delta import MappingDelta
from repro.engine.streaming import DeltaBatch
from repro.engine.planner import recommend_scatter_workers
from repro.exceptions import CorpusError, QueryError
from repro.mapping.mapping_set import iter_mapping_ids, mapping_mask
from repro.query.ptq import _canonicalize
from repro.query.results import CanonicalMatch, PTQAnswer, PTQResult
from repro.query.twigmatch import match_twig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.prepared import PreparedQuery
    from repro.mapping.mapping import Mapping
    from repro.query.resolve import Embedding
    from repro.query.twig import TwigNode, TwigQuery

__all__ = [
    "CorpusShard",
    "CorpusAnswer",
    "ShardReport",
    "CorpusExecution",
    "ShardedCorpus",
]

#: Plan name recorded in cache keys and reports for scatter-gather runs.
SCATTER_GATHER = "scatter-gather"

#: Per-corpus floor on memoized (generation, document version) shard states;
#: the actual bound scales with the session count (see ShardedCorpus) so a
#: many-dataset corpus can hold every member's current state at once.
_MIN_STATES = 8


# --------------------------------------------------------------------------- #
# Shards and per-generation state
# --------------------------------------------------------------------------- #
class CorpusShard:
    """One shard: a document view plus its session's compiled mapping set.

    Shards of one session share that session's (memoized) compiled artifact —
    the compilation depends only on the mapping set, never on the document,
    so per-shard copies would be byte-identical duplicates.  Across sessions
    (by-dataset corpora) the artifacts are genuinely independent.
    """

    __slots__ = ("shard_id", "dataset", "document", "compiled")

    def __init__(
        self, shard_id: int, dataset: str, document, compiled: CompiledMappingSet
    ) -> None:
        self.shard_id = shard_id
        self.dataset = dataset
        self.document = document
        self.compiled = compiled

    def __repr__(self) -> str:
        return (
            f"CorpusShard(id={self.shard_id}, dataset={self.dataset!r}, "
            f"nodes={len(self.document)})"
        )


class _SessionState:
    """Immutable shard state of one session at one (generation, document version)."""

    __slots__ = ("session", "snapshot", "partition", "shards", "compiled", "max_probability")

    def __init__(
        self,
        session: Dataspace,
        snapshot: EngineSnapshot,
        partition: DocumentPartition,
        shards: tuple[CorpusShard, ...],
        compiled: CompiledMappingSet,
    ) -> None:
        self.session = session
        self.snapshot = snapshot
        self.partition = partition
        self.shards = shards
        # One compiled view per session generation, shared by selection, the
        # rewrite plan, the spine pass and every shard of this session.
        self.compiled = compiled
        #: Static probability upper bound for bound-based shard skipping.
        self.max_probability = compiled.max_probability()


class _Rewrite:
    """One rewrite group: member mask plus the induced query-node element map."""

    __slots__ = ("group_mask", "element_map", "signature", "elements", "spine_rooted")

    def __init__(
        self,
        group_mask: int,
        element_map: dict[int, int],
        signature: tuple[tuple[int, int], ...],
        elements: frozenset[int],
        spine_rooted: bool,
    ) -> None:
        self.group_mask = group_mask
        self.element_map = element_map
        self.signature = signature
        self.elements = elements
        self.spine_rooted = spine_rooted


def _rewrite_plan(
    compiled: CompiledMappingSet,
    query: "TwigQuery",
    embeddings: list["Embedding"],
    selected_mask: int,
    spine_elements: frozenset[int],
    branchy: bool,
) -> list[_Rewrite]:
    """Rewrite groups of the selected mappings, tagged for spine routing.

    A rewrite is *spine-rooted* when the query is branchy and the rewrite
    maps the query root to an element instantiated by a spine node — the one
    shape whose matches can cross shard boundaries, so the corpus evaluates
    it on the base document instead of per shard.
    """
    query_nodes: list["TwigNode"] = list(query.root.iter_subtree())
    root_id = query.root.node_id
    plan: list[_Rewrite] = []
    for embedding in embeddings:
        for group_mask, assignment in compiled.rewrite_groups(
            set(embedding.values()), selected_mask
        ):
            element_map = {
                node.node_id: assignment[embedding[node.node_id]] for node in query_nodes
            }
            plan.append(
                _Rewrite(
                    group_mask,
                    element_map,
                    tuple(sorted(element_map.items())),
                    frozenset(element_map.values()),
                    branchy and element_map[root_id] in spine_elements,
                )
            )
    return plan


def _evaluate_rewrites(
    document, query_root: "TwigNode", rewrites: Sequence[_Rewrite]
) -> tuple[dict[int, frozenset[CanonicalMatch]], int]:
    """Match each distinct rewrite once; fan canonical matches out by bitmask."""
    per_mapping: dict[int, frozenset[CanonicalMatch]] = {}
    match_cache: dict[tuple[tuple[int, int], ...], frozenset[CanonicalMatch]] = {}
    matches_found = 0
    for rewrite in rewrites:
        canonical = match_cache.get(rewrite.signature)
        if canonical is None:
            canonical = _canonicalize(
                match_twig(document, query_root, rewrite.element_map)
            )
            match_cache[rewrite.signature] = canonical
        matches_found += len(canonical)
        for mapping_id in iter_mapping_ids(rewrite.group_mask):
            existing = per_mapping.get(mapping_id)
            per_mapping[mapping_id] = (
                canonical if existing is None else existing | canonical
            )
    return per_mapping, matches_found


# --------------------------------------------------------------------------- #
# Reports
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardReport:
    """How one shard (or the spine pass) participated in a scatter-gather run.

    ``status`` is one of ``"evaluated"``, ``"cached"`` (partial served from
    the result cache), ``"retained"`` (clean shard after a mapping delta:
    the pre-delta partial provably survived and was promoted, see
    :meth:`repro.engine.cache.ResultCache.retain`), ``"spine"`` (the
    per-session spine pass), ``"skipped-bound"`` (session bound below the
    global top-k threshold), ``"skipped-empty"`` (no selected mappings for
    the session) or ``"skipped-local"`` (every rewrite touches an element
    absent from the shard).
    """

    shard_id: int
    dataset: str
    status: str
    num_nodes: int
    num_subtrees: int
    groups: int
    pruned: int
    deferred: int
    matches: int
    elapsed_ms: float

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report."""
        return {
            "shard_id": self.shard_id,
            "dataset": self.dataset,
            "status": self.status,
            "num_nodes": self.num_nodes,
            "num_subtrees": self.num_subtrees,
            "groups": self.groups,
            "pruned": self.pruned,
            "deferred": self.deferred,
            "matches": self.matches,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


@dataclass(frozen=True)
class CorpusAnswer:
    """One globally ranked answer: a mapping of one corpus dataset."""

    dataset: str
    mapping_id: int
    probability: float
    matches: frozenset[CanonicalMatch]

    def to_dict(self) -> dict:
        """JSON-serialisable view (matches summarised by count)."""
        return {
            "dataset": self.dataset,
            "mapping_id": self.mapping_id,
            "probability": self.probability,
            "num_matches": len(self.matches),
        }


@dataclass(frozen=True)
class CorpusExecution:
    """Outcome and account of one scatter-gather execution.

    This doubles as the corpus' ``explain()`` report: per-shard fan-out,
    skipped-shard counts (and why), spine-pass routing and merge statistics
    all land here alongside the merged results.
    """

    query: str
    k: Optional[int]
    num_shards: int
    fan_out: int
    skipped_bound: int
    skipped_empty: int
    skipped_local: int
    spine_rewrites: int
    merged_answers: int
    duplicate_matches: int
    cache: str
    generations: tuple[tuple[str, int, int, int], ...]
    elapsed_ms: float
    shard_reports: tuple[ShardReport, ...]
    results: dict[str, PTQResult] = field(repr=False)
    answers: tuple[CorpusAnswer, ...] = field(repr=False, default=())

    @property
    def skipped_shards(self) -> int:
        """Total shards not evaluated (bound + empty + locally prunable)."""
        return self.skipped_bound + self.skipped_empty + self.skipped_local

    @property
    def retained_shards(self) -> int:
        """Clean shards after a delta: partials promoted across the epoch."""
        return sum(1 for report in self.shard_reports if report.status == "retained")

    @property
    def cached_shards(self) -> int:
        """Shards served verbatim from the partial cache (same epoch)."""
        return sum(1 for report in self.shard_reports if report.status == "cached")

    @property
    def result(self) -> PTQResult:
        """The merged result of a single-session corpus.

        Raises
        ------
        CorpusError
            On a multi-dataset corpus (use :attr:`results` or :attr:`answers`).
        """
        if len(self.results) != 1:
            raise CorpusError(
                "this corpus spans multiple datasets; use .results or .answers"
            )
        return next(iter(self.results.values()))

    def to_dict(self) -> dict:
        """JSON-serialisable view of the execution account."""
        return {
            "query": self.query,
            "k": self.k,
            "num_shards": self.num_shards,
            "fan_out": self.fan_out,
            "skipped_shards": self.skipped_shards,
            "skipped_bound": self.skipped_bound,
            "skipped_empty": self.skipped_empty,
            "skipped_local": self.skipped_local,
            "retained_shards": self.retained_shards,
            "cached_shards": self.cached_shards,
            "spine_rewrites": self.spine_rewrites,
            "merged_answers": self.merged_answers,
            "duplicate_matches": self.duplicate_matches,
            "cache": self.cache,
            "generations": [list(item) for item in self.generations],
            "elapsed_ms": round(self.elapsed_ms, 3),
            "shards": [report.to_dict() for report in self.shard_reports],
            "answers": [answer.to_dict() for answer in self.answers],
        }

    def format(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        lines = [
            f"query:      {self.query}",
            f"plan:       {SCATTER_GATHER} over {self.num_shards} shards"
            + (f"  (top-k, k={self.k})" if self.k is not None else ""),
            f"fan-out:    {self.fan_out} evaluated, {self.skipped_shards} skipped "
            f"(bound={self.skipped_bound} empty={self.skipped_empty} "
            f"local={self.skipped_local}), {self.retained_shards} retained clean "
            f"across delta",
            f"merge:      {self.merged_answers} answers, "
            f"{self.duplicate_matches} duplicate matches deduped, "
            f"{self.spine_rewrites} spine rewrites",
            f"cache:      {self.cache}",
            f"elapsed:    {self.elapsed_ms:.2f} ms",
        ]
        for report in self.shard_reports:
            lines.append(
                f"  shard {report.shard_id:<3} [{report.dataset}] {report.status:<14} "
                f"nodes={report.num_nodes:<6} groups={report.groups:<4} "
                f"pruned={report.pruned:<3} matches={report.matches}"
            )
        return "\n".join(lines)


class _Gather:
    """Mutable per-call working state of one scatter-gather execution."""

    __slots__ = ("entry_index", "prepared", "state", "embeddings", "selected", "skipped")

    def __init__(self, entry_index: int, prepared: "PreparedQuery", state: _SessionState):
        self.entry_index = entry_index
        self.prepared = prepared
        self.state = state
        self.embeddings: list["Embedding"] = prepared.embeddings
        self.selected: list["Mapping"] = []
        self.skipped = False  # skipped by probability bound

    def relevant_mask(self) -> int:
        """Bitmask of this query's relevant mappings (memoized upstream)."""
        return mapping_mask(
            mapping.mapping_id
            for mapping in self.prepared.relevant_mappings(snapshot=self.state.snapshot)
        )


# --------------------------------------------------------------------------- #
# The corpus engine
# --------------------------------------------------------------------------- #
class ShardedCorpus:
    """Scatter-gather query engine over shards of one or many sessions.

    Construct with :meth:`from_dataspace` (or :meth:`Dataspace.shard
    <repro.engine.dataspace.Dataspace.shard>`) for subtree sharding of one
    session, or :meth:`from_datasets` for a multi-dataset corpus.  Single-
    session corpora answer :meth:`execute` with a :class:`PTQResult` that is
    byte-identical to the unsharded compiled plan; multi-dataset corpora
    answer :meth:`top_k` with globally ranked :class:`CorpusAnswer` rows.

    The corpus is thread-safe: shard state is derived from atomic session
    snapshots, memoized per (generation, document version), and rebuilt
    automatically after ``configure()`` / ``invalidate()`` /
    ``set_document()`` on an underlying session.
    """

    def __init__(
        self,
        sessions: Sequence[Dataspace],
        *,
        shards_per_session: int = 1,
        name: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if not sessions:
            raise CorpusError("a sharded corpus needs at least one session")
        if shards_per_session < 1:
            raise CorpusError(
                f"shards_per_session must be at least 1, got {shards_per_session}"
            )
        names = [session.name for session in sessions]
        if len(set(names)) != len(names):
            raise CorpusError(f"corpus sessions must have unique names, got {names}")
        self._sessions = list(sessions)
        self._shards_per_session = shards_per_session
        self.name = name or "+".join(names)
        # Pool sizing is backend-aware: the numpy kernels release the GIL in
        # their bitset sweeps, so the pool scales with the machine's cores;
        # the pure-Python kernels keep the historical GIL-bound sizing.
        self._max_workers = max_workers or recommend_scatter_workers(
            self.num_shards, self._sessions[0].kernels
        )
        self._lock = threading.Lock()
        # Every session's current state must fit simultaneously (plus slack
        # for one superseded generation), or a many-session corpus would
        # evict and re-partition on every gather.
        self._max_states = max(_MIN_STATES, 2 * len(self._sessions))
        self._states: "OrderedDict[tuple[int, int, int, int], _SessionState]" = (
            OrderedDict()
        )
        self._partitions_reused = 0
        self._partitions_restored = 0
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dataspace(
        cls,
        dataspace: Dataspace,
        num_shards: int,
        *,
        max_workers: Optional[int] = None,
    ) -> "ShardedCorpus":
        """Subtree-shard one session's document into ``num_shards`` shards."""
        return cls(
            [dataspace],
            shards_per_session=num_shards,
            name=f"{dataspace.name}x{num_shards}",
            max_workers=max_workers,
        )

    @classmethod
    def from_datasets(
        cls,
        dataset_ids: Sequence[str],
        *,
        shards_per_dataset: int = 1,
        h: int = 100,
        seed: Optional[int] = None,
        cache_size: int = 128,
        max_workers: Optional[int] = None,
        store=None,
    ) -> "ShardedCorpus":
        """Open a corpus over several Table II datasets (one session each).

        ``store`` passes a persistent artifact store through to every member
        session (each persists under its own dataset-qualified ref), so a
        populated store reopens the whole corpus without re-running any
        matcher and with each session's remembered partition layout intact.
        """
        sessions = [
            Dataspace.from_dataset(
                dataset_id, h=h, seed=seed, cache_size=cache_size, store=store
            )
            for dataset_id in dataset_ids
        ]
        return cls(sessions, shards_per_session=shards_per_dataset, max_workers=max_workers)

    # ------------------------------------------------------------------ #
    # Lifecycle and introspection
    # ------------------------------------------------------------------ #
    @property
    def sessions(self) -> list[Dataspace]:
        """The underlying engine sessions, in corpus order."""
        return list(self._sessions)

    @property
    def num_shards(self) -> int:
        """Total number of shards across all sessions."""
        return len(self._sessions) * self._shards_per_session

    @property
    def shards_per_session(self) -> int:
        """Shards each session's document is partitioned into."""
        return self._shards_per_session

    @property
    def is_homogeneous(self) -> bool:
        """``True`` for a single-session (subtree-sharded) corpus."""
        return len(self._sessions) == 1

    def generation_signature(self) -> tuple[tuple[str, int, int, int], ...]:
        """Per-session ``(name, generation, document version, delta epoch)`` rows.

        Cheap (no snapshot is taken); used by the service layer to scope
        single-flight keys to the corpus' current configuration — including
        the fine-grained delta epoch, so a submit issued after an
        ``apply_delta`` never joins a pre-delta flight.
        """
        return tuple(
            (
                session.name,
                session.generation,
                session.document_version,
                session.delta_epoch,
            )
            for session in self._sessions
        )

    def invalidate(self) -> "ShardedCorpus":
        """Invalidate every underlying session (shard state follows lazily)."""
        for session in self._sessions:
            session.invalidate()
        return self

    def apply_delta(self, delta: MappingDelta, *, dataset: Optional[str] = None):
        """Apply a mapping delta to one underlying session.

        ``dataset`` selects the session by name and may be omitted on a
        single-session corpus.  The document partition is *reused* across
        the delta (a delta never touches the document), and per-shard cached
        partials whose rewrites the delta provably did not change keep
        serving — ``explain()`` reports those shards as ``"retained"``.

        Returns the session's :class:`~repro.engine.delta.DeltaReport`.

        Raises
        ------
        CorpusError
            When ``dataset`` is omitted on a multi-dataset corpus or names
            no member session.
        """
        if dataset is None:
            if not self.is_homogeneous:
                raise CorpusError(
                    "this corpus spans multiple datasets; pass dataset=... to "
                    "apply_delta"
                )
            return self._sessions[0].apply_delta(delta)
        for session in self._sessions:
            if session.name == dataset:
                return session.apply_delta(delta)
        raise CorpusError(
            f"no corpus session named {dataset!r}; datasets: "
            f"{[session.name for session in self._sessions]}"
        )

    def apply_delta_batch(self, batch, *, dataset: Optional[str] = None):
        """Apply a whole delta batch to one underlying session, as one epoch.

        Batch companion of :meth:`apply_delta`: the selected session commits
        a single ``delta_epoch`` bump for every member delta (see
        :meth:`Dataspace.apply_delta_batch
        <repro.engine.dataspace.Dataspace.apply_delta_batch>`), the document
        partition is reused, and per-shard cached partials the batch's *net*
        difference provably did not change keep serving.  Returns the
        session's :class:`~repro.engine.streaming.DeltaBatchReport`.

        Raises
        ------
        CorpusError
            When ``dataset`` is omitted on a multi-dataset corpus or names
            no member session.
        """
        session = self._session_for_write(dataset, "apply_delta_batch")
        return session.apply_delta_batch(batch)

    def _session_for_write(self, dataset: Optional[str], operation: str) -> Dataspace:
        """Resolve the session a write targets (homogeneous default, by name)."""
        if dataset is None:
            if not self.is_homogeneous:
                raise CorpusError(
                    "this corpus spans multiple datasets; pass dataset=... to "
                    f"{operation}"
                )
            return self._sessions[0]
        for session in self._sessions:
            if session.name == dataset:
                return session
        raise CorpusError(
            f"no corpus session named {dataset!r}; datasets: "
            f"{[session.name for session in self._sessions]}"
        )

    def dirty_shards(
        self, batch, *, dataset: Optional[str] = None
    ) -> dict[int, frozenset[int]]:
        """Shard-level dirty routing: which shards can a batch touch, and where.

        Maps shard id → the batch's edited *source* elements present in that
        shard's document view, for the session the batch targets; shards
        absent from the map provably cannot observe the batch structurally
        (an edited correspondence influences a shard only through source
        nodes the shard actually holds — the same containment the scatter
        path uses to prune rewrites).  Reweight-only batches touch no source
        element and route to no shard.  Accepts a
        :class:`~repro.engine.streaming.DeltaBatch`, an iterable of deltas
        or a single delta; purely informational — nothing is applied.
        """
        session = self._session_for_write(dataset, "dirty_shards")
        if isinstance(batch, MappingDelta):
            deltas: list[MappingDelta] = [batch]
        elif isinstance(batch, DeltaBatch):
            deltas = list(batch)
        else:
            deltas = list(batch)
        mapping_set = session.mapping_set
        sources: set[int] = set()
        for delta in deltas:
            for _mapping_id, key in delta.add:
                sources.add(key[0])
            for _mapping_id, key in delta.remove:
                sources.add(key[0])
            for mapping_id, pairs, _score in delta.replace:
                for pair in mapping_set[mapping_id].correspondences:
                    sources.add(pair[0])
                for pair in pairs:
                    sources.add(pair[0])
        if not sources:
            return {}
        index = self._sessions.index(session)
        state = self._session_state(index)
        routing: dict[int, frozenset[int]] = {}
        for shard in state.shards:
            present = frozenset(sources & shard.document.present_elements)
            if present:
                routing[shard.shard_id] = present
        return routing

    def close(self) -> None:
        """Shut down the corpus' scatter pool (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedCorpus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def describe(self) -> dict:
        """Corpus summary: sessions, shard layout, current partitions."""
        info: dict = {
            "name": self.name,
            "num_sessions": len(self._sessions),
            "shards_per_session": self._shards_per_session,
            "num_shards": self.num_shards,
            "homogeneous": self.is_homogeneous,
            "datasets": [session.name for session in self._sessions],
        }
        info["partitions"] = [
            self._session_state(index).partition.describe()
            for index in range(len(self._sessions))
        ]
        info["partitions_reused"] = self._partitions_reused
        info["partitions_restored"] = self._partitions_restored
        return info

    def executor_config(self) -> dict:
        """The scatter executor's chosen configuration (for benchmarks/ops)."""
        return {
            "num_shards": self.num_shards,
            "max_workers": self._max_workers,
            "backend": self._sessions[0].kernels.name,
        }

    # ------------------------------------------------------------------ #
    # Shard state
    # ------------------------------------------------------------------ #
    def _session_state(self, index: int) -> _SessionState:
        """Shard state of session ``index`` for its *current* mapping-set state.

        The session snapshot is captured atomically, so the partition and
        every shard's compiled artifact always describe one consistent
        generation — concurrent ``configure()`` calls can only flip the
        corpus between complete states, never expose a mix.  After an
        ``apply_delta`` (same document, new delta epoch) the previous
        state's document partition is *reused* — a delta never touches the
        document, so re-cutting it would be pure waste; only the shard
        objects are re-pointed at the patched compiled artifact.
        """
        session = self._sessions[index]
        snapshot = session.snapshot(need_tree=False)
        key = (
            index,
            snapshot.generation,
            snapshot.document_version,
            snapshot.delta_epoch,
        )
        partition: Optional[DocumentPartition] = None
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                return state
            for previous in reversed(self._states.values()):
                if (
                    previous.session is session
                    and previous.snapshot.document is snapshot.document
                ):
                    partition = previous.partition
                    self._partitions_reused += 1
                    break
        if partition is None:
            # A session layout remembered from an earlier cut — possibly
            # reopened from a persistent store — beats re-cutting.
            partition = session.restore_partition(snapshot, self._shards_per_session)
            if partition is not None:
                with self._lock:
                    self._partitions_restored += 1
        if partition is None:
            partition = partition_document(snapshot.document, self._shards_per_session)
            session.remember_partition(partition)
        compiled = snapshot.mapping_set.compile(session.kernels)
        base = index * self._shards_per_session
        shards = tuple(
            CorpusShard(base + local_id, session.name, shard_document, compiled)
            for local_id, shard_document in enumerate(partition.shards)
        )
        state = _SessionState(session, snapshot, partition, shards, compiled)
        with self._lock:
            existing = self._states.get(key)
            if existing is not None:
                return existing
            self._states[key] = state
            while len(self._states) > self._max_states:
                self._states.popitem(last=False)
        return state

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=f"corpus-{self.name}",
                )
                # A dropped corpus must not strand its worker threads until
                # process exit: shut the pool down when the corpus is
                # garbage collected (close() remains the explicit path).
                weakref.finalize(self, pool.shutdown, wait=False)
                self._pool = pool
            return self._pool

    # ------------------------------------------------------------------ #
    # Scatter-gather execution
    # ------------------------------------------------------------------ #
    def gather(
        self,
        query,
        *,
        k: Optional[int] = None,
        use_cache: bool = True,
        parallel: Optional[bool] = None,
    ) -> CorpusExecution:
        """Run one scatter-gather execution and return the full account.

        Parameters
        ----------
        query:
            A twig string, query id (on dataset sessions) or
            :class:`~repro.query.twig.TwigQuery`.
        k:
            Optional global top-k restriction; candidate selection uses
            per-session probability upper bounds to skip sessions (and all
            their shards) that cannot reach the current k-th best.
        use_cache:
            Consult/populate the sessions' result caches under corpus-scoped
            keys (merged results and per-shard partials).
        parallel:
            Fan shard evaluation over the corpus thread pool; defaults to
            parallel whenever more than one task is dispatched.  Pass
            ``False`` to evaluate inline (batch executors do this so
            batch-level parallelism is not nested).
        """
        if k is not None and k < 1:
            raise QueryError(f"k must be positive, got {k}")
        started = time.perf_counter()
        gathers = [
            _Gather(index, self._sessions[index].prepare(query), self._session_state(index))
            for index in range(len(self._sessions))
        ]
        signature = tuple(
            (
                g.state.session.name,
                g.state.snapshot.generation,
                g.state.snapshot.document_version,
                g.state.snapshot.delta_epoch,
            )
            for g in gathers
        )
        # Cache keys separate the coarse state (generation rows) from the
        # fine-grained delta epoch, which lives in CacheKey.delta_epoch so
        # the cache's retain-on-miss machinery can walk epochs backwards.
        base_signature = tuple(row[:3] for row in signature)
        epochs = tuple(row[3] for row in signature)
        query_text = gathers[0].prepared.text or str(query)

        # Warm path: a single-session corpus caches its merged result.
        # Multi-dataset corpora cache per-shard partials only (the merged
        # ranking depends on every session's generation at once).
        merged_key: Optional[CacheKey] = None
        cache_state = "partial" if use_cache else "bypass"
        if use_cache and self.is_homogeneous:
            merged_key = CacheKey(
                query=gathers[0].prepared.cache_key,
                plan=SCATTER_GATHER,
                k=k,
                tau=None,
                generation=base_signature,
                document_version=None,
                scope="corpus",
                shards=self.num_shards,
                delta_epoch=signature[0][3],
            )
            result_cache = gathers[0].state.session.result_cache
            cached = result_cache.get(merged_key)
            if cached is not None:
                gathers[0].state.session.planner.observe_cache_hit(
                    gathers[0].prepared.cache_key
                )
                return self._from_cached(cached, gathers[0], k, signature, started)
            # Retain-on-miss across a delta: merged results carry
            # probabilities, so the guard is the full dirty-mapping mask
            # against this query's relevant mappings plus its target set.
            cached = result_cache.retain(
                merged_key,
                gathers[0].relevant_mask(),
                gathers[0].prepared.required_target_mask(),
            )
            if cached is not None:
                gathers[0].state.session.planner.observe_cache_hit(
                    gathers[0].prepared.cache_key
                )
                return self._from_cached(
                    cached, gathers[0], k, signature, started, cache="retained"
                )
            cache_state = "miss"

        # Exact top-k seeding: a completed selection at this very signature
        # recorded its k-th best probability; replaying it as the starting
        # threshold skips sessions whose bound cannot reach it — they could
        # not have contributed anyway, so answers are unchanged (strict <
        # preserves tie handling exactly).
        planner = gathers[0].state.session.planner
        seed_token: Optional[str] = None
        seed: Optional[float] = None
        if k is not None:
            seed_token = repr(signature)
            seed = planner.topk_seed(gathers[0].prepared.cache_key, k, seed_token)
        threshold = self._select(gathers, k, seed=seed)
        if seed_token is not None and threshold is not None:
            planner.record_topk_threshold(
                gathers[0].prepared.cache_key, k, seed_token, threshold
            )

        reports: list[ShardReport] = []
        tasks: list[Callable[[], tuple[int, ShardReport, dict]]] = []
        seeds: dict[int, dict[int, frozenset[CanonicalMatch]]] = {}
        skipped_bound = skipped_empty = skipped_local = 0
        spine_rewrites = 0
        for g in gathers:
            state = g.state
            if g.skipped:
                skipped_bound += len(state.shards)
                reports.extend(
                    self._static_report(shard, "skipped-bound") for shard in state.shards
                )
                seeds[g.entry_index] = {}
                continue
            if not g.selected:
                skipped_empty += len(state.shards)
                reports.extend(
                    self._static_report(shard, "skipped-empty") for shard in state.shards
                )
                seeds[g.entry_index] = {}
                continue
            selected_mask = mapping_mask(m.mapping_id for m in g.selected)
            branchy = any(len(node.children) > 1 for node in g.prepared.query.nodes)
            spine_elements = state.partition.spine_element_ids
            plan = _rewrite_plan(
                state.compiled, g.prepared.query, g.embeddings,
                selected_mask, spine_elements, branchy,
            )
            # Seed every selected-and-covering mapping with an empty match
            # set: merging only ever adds matches, so mappings whose matches
            # live in skipped shards (they would be empty there) still appear
            # in the merged result, exactly as in the unsharded plan.
            seed: dict[int, frozenset[CanonicalMatch]] = {}
            for rewrite in plan:
                for mapping_id in iter_mapping_ids(rewrite.group_mask):
                    seed.setdefault(mapping_id, frozenset())
            seeds[g.entry_index] = seed
            spine_plan = [rewrite for rewrite in plan if rewrite.spine_rooted]
            spine_rewrites += len(spine_plan)
            if spine_plan:
                tasks.append(
                    self._spine_task(g, spine_plan, k, base_signature, epochs, use_cache)
                )
            for shard in state.shards:
                usable = any(
                    not rewrite.spine_rooted
                    and rewrite.elements <= shard.document.present_elements
                    for rewrite in plan
                )
                if not usable:
                    skipped_local += 1
                    reports.append(self._static_report(shard, "skipped-local"))
                    continue
                tasks.append(
                    self._shard_task(g, shard, plan, k, base_signature, epochs, use_cache)
                )

        run_parallel = parallel if parallel is not None else len(tasks) > 1
        if run_parallel and len(tasks) > 1:
            outcomes = list(self._executor().map(lambda task: task(), tasks))
        else:
            outcomes = [task() for task in tasks]

        merged = seeds
        raw_matches = 0
        fan_out = 0
        for entry_index, report, per_mapping in outcomes:
            reports.append(report)
            fan_out += 1
            target = merged[entry_index]
            for mapping_id, canonical in per_mapping.items():
                raw_matches += len(canonical)
                target[mapping_id] = target.get(mapping_id, frozenset()) | canonical

        results: dict[str, PTQResult] = {}
        answers: list[tuple[float, int, int, CorpusAnswer]] = []
        merged_answers = 0
        merged_matches = 0
        for g in gathers:
            mapping_set = g.state.snapshot.mapping_set
            per_mapping = merged.get(g.entry_index, {})
            session_answers = [
                PTQAnswer(
                    mapping_id=mapping_id,
                    probability=mapping_set[mapping_id].probability,
                    matches=matches,
                )
                for mapping_id, matches in per_mapping.items()
            ]
            merged_answers += len(session_answers)
            merged_matches += sum(len(matches) for matches in per_mapping.values())
            result = PTQResult(
                g.prepared.query, session_answers, document=g.state.snapshot.document
            )
            results[g.state.session.name] = result
            for answer in session_answers:
                answers.append(
                    (
                        answer.probability,
                        g.entry_index,
                        answer.mapping_id,
                        CorpusAnswer(
                            dataset=g.state.session.name,
                            mapping_id=answer.mapping_id,
                            probability=answer.probability,
                            matches=answer.matches,
                        ),
                    )
                )
        answers.sort(key=lambda item: (-item[0], item[1], item[2]))

        if merged_key is not None:
            cached_result = gathers[0].state.session.result_cache.put(
                merged_key, results[gathers[0].state.session.name]
            )
            results[gathers[0].state.session.name] = cached_result

        reports.sort(key=lambda report: report.shard_id)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if self.is_homogeneous:
            # Feed the owning session's cost model: scatter latencies are
            # recorded per fan-out under "scatter:<n>" plan keys.  Cache-hit
            # paths returned earlier, so only genuine evaluations land here.
            snapshot = gathers[0].state.snapshot
            planner.observe_scatter(
                gathers[0].prepared.cache_key,
                self.num_shards,
                elapsed_ms,
                state=(snapshot.generation, snapshot.delta_epoch),
                fan_out=fan_out,
                skipped=skipped_bound + skipped_empty + skipped_local,
            )
        return CorpusExecution(
            query=query_text,
            k=k,
            num_shards=self.num_shards,
            fan_out=fan_out,
            skipped_bound=skipped_bound,
            skipped_empty=skipped_empty,
            skipped_local=skipped_local,
            spine_rewrites=spine_rewrites,
            merged_answers=merged_answers,
            duplicate_matches=raw_matches - merged_matches,
            cache=cache_state,
            generations=signature,
            elapsed_ms=elapsed_ms,
            shard_reports=tuple(reports),
            results=results,
            answers=tuple(item[3] for item in answers),
        )

    # ------------------------------------------------------------------ #
    # Gather internals
    # ------------------------------------------------------------------ #
    def _select(
        self, gathers: list[_Gather], k: Optional[int], seed: Optional[float] = None
    ) -> Optional[float]:
        """Fill each gather's ``selected`` mappings (global top-k when ``k``).

        Sessions are visited in descending order of their probability upper
        bound; once the candidate pool holds ``k`` entries, any session whose
        bound is strictly below the k-th best probability is skipped without
        even computing its relevant mappings — the exact early-termination
        step of the scatter-gather merge.  Ties rank by (corpus position,
        mapping id), which for a single session reproduces the engine's
        ``select_top_k`` ordering exactly.

        ``seed`` pre-loads the threshold with the *exact* k-th best
        probability a completed selection recorded at the identical corpus
        state (see :meth:`gather`): a session skipped by the seed has every
        probability strictly below the final k-th best, so it could never
        place an answer in the pool — selection output is unchanged, only
        the work of proving it is saved.  Returns the final k-th best
        probability when the pool filled, else ``None``.
        """
        ordered = sorted(
            gathers, key=lambda g: (-g.state.max_probability, g.entry_index)
        )
        pool: list[tuple[float, int, int]] = []
        threshold: Optional[float] = seed if k is not None else None
        for g in ordered:
            if (
                k is not None
                and threshold is not None
                and g.state.max_probability < threshold
            ):
                g.skipped = True
                continue
            relevant = g.prepared.relevant_mappings(snapshot=g.state.snapshot)
            if k is None:
                g.selected = list(relevant)
                continue
            pool.extend(
                (mapping.probability, g.entry_index, mapping.mapping_id)
                for mapping in relevant
            )
            pool.sort(key=lambda item: (-item[0], item[1], item[2]))
            del pool[k:]
            if len(pool) == k:
                threshold = pool[-1][0]
        if k is None:
            return None
        by_entry: dict[int, list[int]] = {}
        for _, entry_index, mapping_id in pool:
            by_entry.setdefault(entry_index, []).append(mapping_id)
        for g in gathers:
            if g.skipped:
                continue
            mapping_set = g.state.snapshot.mapping_set
            g.selected = [
                mapping_set[mapping_id]
                for mapping_id in sorted(by_entry.get(g.entry_index, []))
            ]
        return pool[-1][0] if len(pool) == k else None

    def _static_report(self, shard: CorpusShard, status: str) -> ShardReport:
        return ShardReport(
            shard_id=shard.shard_id,
            dataset=shard.dataset,
            status=status,
            num_nodes=len(shard.document),
            num_subtrees=getattr(shard.document, "num_subtrees", 0),
            groups=0,
            pruned=0,
            deferred=0,
            matches=0,
            elapsed_ms=0.0,
        )

    def _partial_key(
        self,
        gather: _Gather,
        scope: str,
        shard: Optional[int],
        k: Optional[int],
        base_signature: tuple,
        epochs: tuple,
    ) -> CacheKey:
        """Cache key of one per-shard (or spine) partial.

        A *full* (``k=None``) partial depends only on the owning session's
        mapping-set state and document (selection is per-session relevant
        mappings), so its key is scoped to that session's ``(name,
        generation, document version)`` with the session's delta epoch in
        ``delta_epoch`` — which is what lets it survive a delta applied to a
        *different* session outright, and survive a delta to its own session
        through the retain check.

        A *top-k* partial additionally depends on the **global** candidate
        selection — ``_select()`` pools and thresholds probabilities across
        every session — so its key must carry the full cross-session
        signature: a delta (or ``configure``) on any member session retires
        it.  On a single-session corpus the signature is that session, so
        epoch retention still applies; on a multi-session corpus the epoch
        field is the tuple of member epochs, which the retain check
        conservatively refuses to walk.
        """
        snapshot = gather.state.snapshot
        if k is None:
            generation: tuple = (
                gather.state.session.name,
                snapshot.generation,
                snapshot.document_version,
            )
            epoch = snapshot.delta_epoch
        else:
            generation = base_signature
            epoch = epochs[0] if len(epochs) == 1 else epochs
        return CacheKey(
            query=gather.prepared.cache_key,
            plan=SCATTER_GATHER,
            k=k,
            tau=None,
            generation=generation,
            document_version=None,
            scope=scope,
            shard=shard,
            shards=self.num_shards,
            delta_epoch=epoch,
        )

    def _shard_task(
        self,
        gather: _Gather,
        shard: CorpusShard,
        plan: list[_Rewrite],
        k: Optional[int],
        base_signature: tuple,
        epochs: tuple,
        use_cache: bool,
    ) -> Callable[[], tuple[int, ShardReport, dict]]:
        cache = gather.state.session.result_cache if use_cache else None
        key = (
            self._partial_key(gather, "shard", shard.shard_id, k, base_signature, epochs)
            if cache is not None
            else None
        )

        def run() -> tuple[int, ShardReport, dict]:
            started = time.perf_counter()
            if cache is not None and key is not None:
                status = "cached"
                cached = cache.get(key)
                if cached is None:
                    # Clean-shard skip after a delta: a partial stores match
                    # sets (no probabilities), so for full evaluations only
                    # *structural* dirt can invalidate it; a top-k partial
                    # also depends on the probability-driven selection, so it
                    # checks the full dirty mask.
                    cached = cache.retain(
                        key,
                        gather.relevant_mask(),
                        gather.prepared.required_target_mask(),
                        probability_sensitive=k is not None,
                    )
                    status = "retained"
                if cached is not None:
                    per_mapping, groups, pruned, deferred, matches = cached
                    report = ShardReport(
                        shard_id=shard.shard_id,
                        dataset=shard.dataset,
                        status=status,
                        num_nodes=len(shard.document),
                        num_subtrees=shard.document.num_subtrees,
                        groups=groups,
                        pruned=pruned,
                        deferred=deferred,
                        matches=matches,
                        elapsed_ms=(time.perf_counter() - started) * 1000.0,
                    )
                    return gather.entry_index, report, per_mapping
            # The rewrite plan is derived once per session from the shared
            # compiled artifact (it depends only on the mapping set, never on
            # a document); each shard just filters it against its own view.
            usable: list[_Rewrite] = []
            pruned = deferred = 0
            for rewrite in plan:
                if rewrite.spine_rooted:
                    deferred += 1
                elif rewrite.elements <= shard.document.present_elements:
                    usable.append(rewrite)
                else:
                    pruned += 1
            per_mapping, matches = _evaluate_rewrites(
                shard.document, gather.prepared.query.root, usable
            )
            if cache is not None and key is not None:
                stored = cache.put(
                    key, (per_mapping, len(usable), pruned, deferred, matches)
                )
                per_mapping = stored[0]
            report = ShardReport(
                shard_id=shard.shard_id,
                dataset=shard.dataset,
                status="evaluated",
                num_nodes=len(shard.document),
                num_subtrees=shard.document.num_subtrees,
                groups=len(usable),
                pruned=pruned,
                deferred=deferred,
                matches=matches,
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
            )
            return gather.entry_index, report, per_mapping

        return run

    def _spine_task(
        self,
        gather: _Gather,
        spine_plan: list[_Rewrite],
        k: Optional[int],
        base_signature: tuple,
        epochs: tuple,
        use_cache: bool,
    ) -> Callable[[], tuple[int, ShardReport, dict]]:
        cache = gather.state.session.result_cache if use_cache else None
        key = (
            self._partial_key(gather, "spine", None, k, base_signature, epochs)
            if cache is not None
            else None
        )
        document = gather.state.snapshot.document

        def run() -> tuple[int, ShardReport, dict]:
            started = time.perf_counter()
            status = "spine"
            if cache is not None and key is not None:
                cached = cache.get(key)
                if cached is not None:
                    status = "cached"
                else:
                    cached = cache.retain(
                        key,
                        gather.relevant_mask(),
                        gather.prepared.required_target_mask(),
                        probability_sensitive=k is not None,
                    )
                    if cached is not None:
                        status = "retained"
                if cached is not None:
                    per_mapping, matches = cached
                else:
                    per_mapping, matches = _evaluate_rewrites(
                        document, gather.prepared.query.root, spine_plan
                    )
                    per_mapping, matches = cache.put(key, (per_mapping, matches))
            else:
                per_mapping, matches = _evaluate_rewrites(
                    document, gather.prepared.query.root, spine_plan
                )
            report = ShardReport(
                shard_id=-1,
                dataset=gather.state.session.name,
                status=status,
                num_nodes=len(document),
                num_subtrees=0,
                groups=len(spine_plan),
                pruned=0,
                deferred=0,
                matches=matches,
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
            )
            return gather.entry_index, report, per_mapping

        return run

    def _from_cached(
        self,
        result: PTQResult,
        gather: _Gather,
        k: Optional[int],
        signature: tuple,
        started: float,
        cache: str = "hit",
    ) -> CorpusExecution:
        name = gather.state.session.name
        answers = tuple(
            CorpusAnswer(
                dataset=name,
                mapping_id=answer.mapping_id,
                probability=answer.probability,
                matches=answer.matches,
            )
            for answer in result
        )
        return CorpusExecution(
            query=gather.prepared.text,
            k=k,
            num_shards=self.num_shards,
            fan_out=0,
            skipped_bound=0,
            skipped_empty=0,
            skipped_local=0,
            spine_rewrites=0,
            merged_answers=len(result),
            duplicate_matches=0,
            cache=cache,
            generations=signature,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            shard_reports=(),
            results={name: result},
            answers=answers,
        )

    # ------------------------------------------------------------------ #
    # Public query paths
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query,
        *,
        k: Optional[int] = None,
        use_cache: bool = True,
        parallel: Optional[bool] = None,
    ) -> PTQResult:
        """Evaluate ``query`` on a single-session corpus (merged result).

        Byte-identical to the session's unsharded ``compiled`` plan.

        Raises
        ------
        CorpusError
            On a multi-dataset corpus (use :meth:`gather` / :meth:`top_k`).
        """
        return self.gather(query, k=k, use_cache=use_cache, parallel=parallel).result

    def top_k(
        self,
        query,
        k: int,
        *,
        use_cache: bool = True,
        parallel: Optional[bool] = None,
    ) -> tuple[CorpusAnswer, ...]:
        """The ``k`` globally most probable answers across every shard."""
        return self.gather(query, k=k, use_cache=use_cache, parallel=parallel).answers

    def explain(
        self,
        query,
        *,
        k: Optional[int] = None,
        use_cache: bool = True,
        parallel: Optional[bool] = None,
    ) -> CorpusExecution:
        """Execute and report fan-out, skipped shards and merge statistics."""
        return self.gather(query, k=k, use_cache=use_cache, parallel=parallel)

    def execute_batch(
        self,
        queries,
        *,
        k: Optional[int] = None,
        use_cache: bool = True,
        executor=None,
    ) -> list[PTQResult]:
        """Evaluate many queries; with an executor, one worker per query.

        Each query's scatter then runs inline in its worker (shard-level and
        batch-level parallelism are not nested), which is how the service
        layer routes batches across shards.
        """
        queries = list(queries)
        if executor is not None and len(queries) > 1:
            futures = [
                executor.submit(self.execute, query, k=k, use_cache=use_cache, parallel=False)
                for query in queries
            ]
            return [future.result() for future in futures]
        return [
            self.execute(query, k=k, use_cache=use_cache, parallel=False)
            for query in queries
        ]

    def __repr__(self) -> str:
        return (
            f"ShardedCorpus({self.name!r}, sessions={len(self._sessions)}, "
            f"shards={self.num_shards})"
        )
