"""Schema matching substrate.

This package plays the role of COMA++ in the paper: given a source and a
target schema it produces a :class:`SchemaMatching` — a set of
:class:`Correspondence` objects (element pairs annotated with a similarity
score).  Downstream, the mapping generator turns a matching into possible
mappings with probabilities, and the block tree organises those mappings.
"""

from repro.matching.correspondence import Correspondence
from repro.matching.matching import SchemaMatching
from repro.matching.matcher import SchemaMatcher, MatcherConfig
from repro.matching.similarity import (
    tokenize,
    levenshtein,
    edit_similarity,
    trigram_similarity,
    token_set_similarity,
    name_similarity,
)

__all__ = [
    "Correspondence",
    "SchemaMatching",
    "SchemaMatcher",
    "MatcherConfig",
    "tokenize",
    "levenshtein",
    "edit_similarity",
    "trigram_similarity",
    "token_set_similarity",
    "name_similarity",
]
