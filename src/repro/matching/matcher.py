"""The COMA++-like schema matcher.

:class:`SchemaMatcher` produces a :class:`~repro.matching.matching.SchemaMatching`
from two schemas by combining three similarity signals:

* **linguistic** — :func:`repro.matching.similarity.name_similarity` over the
  element labels;
* **context** — the same measure over the *parent* labels (a light-weight
  version of COMA++'s path/context matchers);
* **structure** — soft overlap between the label-token multisets of the two
  elements' children, which lets structurally equivalent containers match
  even when their own labels differ (e.g. ``POLine`` vs ``LineItemDetail``).

The paper's datasets are produced by COMA++ with either the *fragment* (`f`)
or the *context* (`c`) strategy; the matcher mirrors that switch: the
``fragment`` strategy ignores the parent-context signal and uses a stricter
acceptance threshold, which — as in Table II — yields fewer correspondences.

Candidate generation is token-indexed: only element pairs sharing at least
one label token (of either the element or its children) are scored, which
keeps matching two ~1000-element schemas fast while retaining every pair a
linguistic matcher could plausibly accept.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._rng import make_rng
from repro.exceptions import MatchingError
from repro.matching.correspondence import Correspondence
from repro.matching.matching import SchemaMatching
from repro.matching.similarity import (
    name_similarity,
    path_similarity,
    token_set_similarity,
    tokenize,
)
from repro.schema.element import SchemaElement
from repro.schema.schema import Schema

__all__ = ["MatcherConfig", "SchemaMatcher"]


@dataclass(frozen=True, slots=True)
class MatcherConfig:
    """Configuration of :class:`SchemaMatcher`.

    Parameters
    ----------
    strategy:
        ``"context"`` (COMA++ `c` option) or ``"fragment"`` (`f` option).
    threshold:
        Minimum combined score for a correspondence to be kept.  The fragment
        strategy adds :attr:`fragment_threshold_bonus` on top of this.
    max_per_target:
        At most this many correspondences are kept per target element
        (the highest-scoring ones), mirroring COMA++'s top-N selection.
    max_per_source:
        At most this many correspondences are kept per source element.
    noise:
        Half-width of the uniform perturbation added to every score, modelling
        matcher instability.  Scores stay clipped to ``[0, 1]``.
    seed:
        Base seed for the noise stream.
    """

    strategy: str = "context"
    threshold: float = 0.56
    max_per_target: int = 3
    max_per_source: int = 2
    noise: float = 0.015
    fragment_threshold_bonus: float = 0.10
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.strategy not in ("context", "fragment"):
            raise MatchingError(
                f"unknown matcher strategy {self.strategy!r}; expected 'context' or 'fragment'"
            )
        if not (0.0 < self.threshold < 1.0):
            raise MatchingError("matcher threshold must be strictly between 0 and 1")
        if self.max_per_target < 1 or self.max_per_source < 1:
            raise MatchingError("per-element correspondence caps must be at least 1")
        if self.noise < 0:
            raise MatchingError("noise must be non-negative")


class SchemaMatcher:
    """Produces scored correspondences between two schemas (see module docs)."""

    def __init__(self, config: MatcherConfig | None = None) -> None:
        self.config = config or MatcherConfig()

    # ------------------------------------------------------------------ #
    # Feature extraction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _element_tokens(element: SchemaElement) -> tuple[str, ...]:
        return tokenize(element.label)

    @staticmethod
    def _child_tokens(element: SchemaElement) -> tuple[str, ...]:
        tokens: list[str] = []
        for child in element.children:
            tokens.extend(tokenize(child.label))
        return tuple(sorted(set(tokens)))

    def _score_pair(self, source: SchemaElement, target: SchemaElement) -> float:
        """Combined similarity score of an element pair, before noise."""
        linguistic = name_similarity(source.label, target.label)
        structural = token_set_similarity(
            self._child_tokens(source), self._child_tokens(target)
        )
        if self.config.strategy == "fragment":
            return 0.7 * linguistic + 0.3 * structural
        # Context strategy: compare the full root paths, which disambiguates
        # identically labelled elements living under different parents
        # (e.g. the addresses of the delivery and the billing party).
        context = path_similarity(source.path, target.path)
        return 0.5 * linguistic + 0.25 * structural + 0.25 * context

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _token_index(schema: Schema) -> dict[str, set[int]]:
        index: dict[str, set[int]] = {}
        for element in schema:
            for token in tokenize(element.label):
                index.setdefault(token, set()).add(element.element_id)
        return index

    def _candidate_pairs(self, source: Schema, target: Schema) -> set[tuple[int, int]]:
        """Pairs sharing at least one label token (directly or via children)."""
        target_index = self._token_index(target)
        candidates: set[tuple[int, int]] = set()
        for source_element in source:
            tokens = set(tokenize(source_element.label))
            # Give containers a chance to match by their content as well.
            for child in source_element.children:
                tokens.update(tokenize(child.label))
            target_ids: set[int] = set()
            for token in tokens:
                target_ids.update(target_index.get(token, ()))
            for target_id in target_ids:
                candidates.add((source_element.element_id, target_id))
        return candidates

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #
    def match(self, source: Schema, target: Schema, name: str = "matching") -> SchemaMatching:
        """Match ``source`` against ``target`` and return the scored matching.

        The result is deterministic for a given configuration and pair of
        schemas.
        """
        config = self.config
        rng = make_rng(config.seed, f"matcher:{source.name}->{target.name}:{config.strategy}")
        threshold = config.threshold
        if config.strategy == "fragment":
            threshold += config.fragment_threshold_bonus

        scored: list[Correspondence] = []
        for source_id, target_id in sorted(self._candidate_pairs(source, target)):
            source_element = source.get(source_id)
            target_element = target.get(target_id)
            score = self._score_pair(source_element, target_element)
            if config.noise:
                # Multiplicative perturbation keeps scores in [0, 1] without
                # clipping, so near-ties stay near ties instead of collapsing
                # into exact ties at 1.0.
                score *= 1.0 - rng.uniform(0.0, config.noise)
            score = min(1.0, max(0.0, score))
            if score >= threshold:
                scored.append(Correspondence(source_id, target_id, round(score, 4)))

        selected = self._select(scored)
        matching = SchemaMatching(source, target, name=name)
        for correspondence in selected:
            matching.add(correspondence)
        return matching

    def _select(self, scored: list[Correspondence]) -> list[Correspondence]:
        """Apply the per-source and per-target caps (highest scores win)."""
        config = self.config
        by_target: dict[int, list[Correspondence]] = {}
        for correspondence in scored:
            by_target.setdefault(correspondence.target_id, []).append(correspondence)

        per_target_kept: list[Correspondence] = []
        for correspondences in by_target.values():
            correspondences.sort(key=lambda c: (-c.score, c.source_id))
            per_target_kept.extend(correspondences[: config.max_per_target])

        by_source: dict[int, list[Correspondence]] = {}
        for correspondence in per_target_kept:
            by_source.setdefault(correspondence.source_id, []).append(correspondence)

        final: list[Correspondence] = []
        for correspondences in by_source.values():
            correspondences.sort(key=lambda c: (-c.score, c.target_id))
            final.extend(correspondences[: config.max_per_source])
        final.sort(key=lambda c: c.key)
        return final
