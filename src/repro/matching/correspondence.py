"""Correspondences: scored element pairs in a schema matching."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MatchingError

__all__ = ["Correspondence", "CorrespondenceKey"]

#: A correspondence's identity: ``(source element id, target element id)``.
CorrespondenceKey = tuple[int, int]


@dataclass(frozen=True, slots=True)
class Correspondence:
    """A single correspondence ``(x, y)`` between schema elements with a score.

    ``source_id`` and ``target_id`` are element ids in the source and target
    schemas of the matching this correspondence belongs to.  The ``score`` is
    the matcher's similarity value in ``[0, 1]``, interpreted by the mapping
    generator as the (unnormalised) confidence that the pair carries the same
    meaning.
    """

    source_id: int
    target_id: int
    score: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.score <= 1.0):
            raise MatchingError(
                f"correspondence score must be in [0, 1], got {self.score!r}"
            )
        if self.source_id < 0 or self.target_id < 0:
            raise MatchingError("correspondence element ids must be non-negative")

    @property
    def key(self) -> CorrespondenceKey:
        """The ``(source_id, target_id)`` pair identifying this correspondence."""
        return (self.source_id, self.target_id)

    def __repr__(self) -> str:
        return f"Correspondence({self.source_id}~{self.target_id}, score={self.score:.3f})"
