"""The :class:`SchemaMatching` container (the paper's ``U``)."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.exceptions import MatchingError
from repro.matching.correspondence import Correspondence, CorrespondenceKey
from repro.schema.schema import Schema

__all__ = ["SchemaMatching"]


class SchemaMatching:
    """A schema matching ``U`` between a source schema ``S`` and target schema ``T``.

    The matching is a set of scored correspondences.  The *capacity* (the
    ``Cap.`` column of Table II in the paper) is the number of
    correspondences it contains.

    Parameters
    ----------
    source:
        The source schema ``S``.
    target:
        The target schema ``T``.
    correspondences:
        Optional initial correspondences; more can be added with :meth:`add`.
    name:
        Optional name, e.g. the dataset id (``"D7"``).
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        correspondences: Optional[Iterable[Correspondence]] = None,
        name: str = "matching",
    ) -> None:
        self.source = source
        self.target = target
        self.name = name
        self._by_key: dict[CorrespondenceKey, Correspondence] = {}
        self._by_source: dict[int, list[Correspondence]] = {}
        self._by_target: dict[int, list[Correspondence]] = {}
        for correspondence in correspondences or ():
            self.add(correspondence)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, correspondence: Correspondence) -> None:
        """Add a correspondence, validating that both elements exist.

        Raises
        ------
        MatchingError
            If an element id is out of range for its schema or the pair is
            already present.
        """
        if not (0 <= correspondence.source_id < len(self.source)):
            raise MatchingError(
                f"source element id {correspondence.source_id} not in schema "
                f"{self.source.name!r}"
            )
        if not (0 <= correspondence.target_id < len(self.target)):
            raise MatchingError(
                f"target element id {correspondence.target_id} not in schema "
                f"{self.target.name!r}"
            )
        if correspondence.key in self._by_key:
            raise MatchingError(f"duplicate correspondence {correspondence.key}")
        self._by_key[correspondence.key] = correspondence
        self._by_source.setdefault(correspondence.source_id, []).append(correspondence)
        self._by_target.setdefault(correspondence.target_id, []).append(correspondence)

    def add_pair(self, source_id: int, target_id: int, score: float) -> Correspondence:
        """Convenience wrapper building and adding a :class:`Correspondence`."""
        correspondence = Correspondence(source_id, target_id, score)
        self.add(correspondence)
        return correspondence

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Number of correspondences (the ``Cap.`` column of Table II)."""
        return len(self._by_key)

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._by_key.values())

    def __contains__(self, key: object) -> bool:
        return key in self._by_key

    def get(self, source_id: int, target_id: int) -> Optional[Correspondence]:
        """Return the correspondence for the pair, or ``None`` if absent."""
        return self._by_key.get((source_id, target_id))

    def score(self, source_id: int, target_id: int) -> float:
        """Return the score of the pair, or ``0.0`` if the pair is absent."""
        correspondence = self._by_key.get((source_id, target_id))
        return correspondence.score if correspondence is not None else 0.0

    def for_source(self, source_id: int) -> list[Correspondence]:
        """Return all correspondences of the given source element."""
        return list(self._by_source.get(source_id, ()))

    def for_target(self, target_id: int) -> list[Correspondence]:
        """Return all correspondences of the given target element."""
        return list(self._by_target.get(target_id, ()))

    def matched_source_ids(self) -> set[int]:
        """Return source element ids participating in at least one correspondence."""
        return set(self._by_source)

    def matched_target_ids(self) -> set[int]:
        """Return target element ids participating in at least one correspondence."""
        return set(self._by_target)

    def keys(self) -> set[CorrespondenceKey]:
        """Return all ``(source_id, target_id)`` pairs."""
        return set(self._by_key)

    def describe(self) -> dict:
        """Return a summary dictionary (sizes, capacity, score statistics)."""
        scores = [c.score for c in self._by_key.values()]
        return {
            "name": self.name,
            "source": self.source.name,
            "target": self.target.name,
            "source_size": len(self.source),
            "target_size": len(self.target),
            "capacity": self.capacity,
            "min_score": min(scores) if scores else None,
            "max_score": max(scores) if scores else None,
            "mean_score": sum(scores) / len(scores) if scores else None,
        }

    def __repr__(self) -> str:
        return (
            f"SchemaMatching(name={self.name!r}, {self.source.name!r}->{self.target.name!r}, "
            f"capacity={self.capacity})"
        )
