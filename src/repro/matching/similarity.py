"""Element-name similarity measures used by the matcher.

The measures are deliberately classical — tokenisation, Levenshtein edit
distance, character trigrams and a soft token-set overlap — because the
matcher only needs to produce *plausible* correspondences with near-tied
scores, the way COMA++'s linguistic matchers do.  All functions are pure and
deterministic.
"""

from __future__ import annotations

import re
from functools import lru_cache

__all__ = [
    "tokenize",
    "normalize_tokens",
    "levenshtein",
    "edit_similarity",
    "trigram_similarity",
    "token_set_similarity",
    "name_similarity",
    "path_similarity",
]

# Split on underscores/hyphens/dots and on camel-case boundaries, including
# acronym boundaries ("POLine" -> ["PO", "Line"], "BuyerPartID" -> ["Buyer",
# "Part", "ID"]).
_SPLIT_RE = re.compile(
    r"[_\-.\s]+|(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])"
)

#: Small domain synonym/abbreviation dictionary, playing the role of the
#: auxiliary thesauri real matchers such as COMA++ ship with.  Tokens are
#: rewritten to a canonical representative before comparison.
_SYNONYMS: dict[str, str] = {
    "ship": "deliver",
    "shipping": "delivery",
    "bill": "invoice",
    "billing": "invoice",
    "vendor": "seller",
    "supplier": "seller",
    "purchaser": "buyer",
    "customer": "buyer",
    "po": "order",
    "qty": "quantity",
    "amt": "amount",
    "no": "number",
    "num": "number",
}


@lru_cache(maxsize=65536)
def tokenize(label: str) -> tuple[str, ...]:
    """Split an element label into lower-case word tokens.

    >>> tokenize("BuyerPartID")
    ('buyer', 'part', 'id')
    >>> tokenize("CONTACT_NAME")
    ('contact', 'name')
    """
    return tuple(token.lower() for token in _SPLIT_RE.split(label) if token)


@lru_cache(maxsize=65536)
def normalize_tokens(label: str) -> tuple[str, ...]:
    """Tokenise ``label`` and map every token through the synonym dictionary.

    >>> normalize_tokens("ShipToParty")
    ('deliver', 'to', 'party')
    """
    return tuple(_SYNONYMS.get(token, token) for token in tokenize(label))


def levenshtein(a: str, b: str) -> int:
    """Classic Levenshtein edit distance between two strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for a smaller row.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def edit_similarity(a: str, b: str) -> float:
    """Normalised edit similarity in ``[0, 1]`` (1 means equal strings)."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def _trigrams(text: str) -> set[str]:
    padded = f"##{text.lower()}##"
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def trigram_similarity(a: str, b: str) -> float:
    """Dice coefficient over padded character trigrams, in ``[0, 1]``."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    grams_a = _trigrams(a)
    grams_b = _trigrams(b)
    return 2.0 * len(grams_a & grams_b) / (len(grams_a) + len(grams_b))


def token_set_similarity(tokens_a: tuple[str, ...], tokens_b: tuple[str, ...]) -> float:
    """Soft token-overlap similarity in ``[0, 1]``.

    Each token of the smaller set is greedily aligned to its most similar
    token (by edit similarity) in the other set; the result is the mean of
    the best alignments, scaled by a Jaccard-style length penalty.  Identical
    token sets score 1, disjoint and dissimilar sets score near 0.
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    if len(tokens_a) > len(tokens_b):
        tokens_a, tokens_b = tokens_b, tokens_a
    total = 0.0
    for token in tokens_a:
        best = 0.0
        for other in tokens_b:
            if token == other:
                best = 1.0
                break
            similarity = edit_similarity(token, other)
            if similarity > best:
                best = similarity
        total += best
    coverage = total / len(tokens_a)
    length_penalty = len(tokens_a) / len(tokens_b)
    return coverage * (0.5 + 0.5 * length_penalty)


@lru_cache(maxsize=262144)
def name_similarity(a: str, b: str) -> float:
    """Combined linguistic similarity between two element labels, in ``[0, 1]``.

    Blends soft token overlap after synonym normalisation (dominant signal,
    robust to casing conventions and domain vocabulary), trigram similarity
    (robust to abbreviations) and whole-name edit similarity.
    """
    if a == b:
        return 1.0
    tokens_a = normalize_tokens(a)
    tokens_b = normalize_tokens(b)
    token_score = token_set_similarity(tokens_a, tokens_b)
    joined_a = "".join(tokens_a)
    joined_b = "".join(tokens_b)
    trigram_score = trigram_similarity(joined_a, joined_b)
    edit_score = edit_similarity(joined_a, joined_b)
    return 0.6 * token_score + 0.25 * trigram_score + 0.15 * edit_score


@lru_cache(maxsize=262144)
def path_similarity(path_a: str, path_b: str) -> float:
    """Similarity of two root-to-element label paths, in ``[0, 1]``.

    Paths are dot-separated label sequences (``"Order.ShipToParty.Address"``);
    all labels are tokenised, synonym-normalised and compared as token sets.
    This is the *context* signal that lets a matcher prefer the address of
    the delivery party over the (identically labelled) address of the billing
    party when matching a ``DeliverTo`` subtree.
    """
    if path_a == path_b:
        return 1.0
    tokens_a: tuple[str, ...] = tuple(
        token for label in path_a.split(".") for token in normalize_tokens(label)
    )
    tokens_b: tuple[str, ...] = tuple(
        token for label in path_b.split(".") for token in normalize_tokens(label)
    )
    return token_set_similarity(tuple(sorted(set(tokens_a))), tuple(sorted(set(tokens_b))))
