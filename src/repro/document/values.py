"""Deterministic text-value generation for synthetic documents.

Leaf values are derived from the leaf's label: contact names become person
names, city elements become city names, price-like elements become decimal
strings, and so on.  The choice is driven by a :class:`random.Random`
instance owned by the document generator, so a given seed always yields the
same document.
"""

from __future__ import annotations

import random
import re

__all__ = ["value_for_label"]

_PERSON_NAMES = (
    "Cathy", "Bob", "Alice", "David", "Erin", "Frank", "Grace", "Henry",
    "Irene", "Jack", "Karen", "Leo", "Mona", "Nina", "Oscar", "Paula",
)
_CITIES = (
    "Hong Kong", "Leipzig", "Berlin", "Shanghai", "Singapore", "London",
    "Zurich", "Seattle", "Taipei", "Rotterdam", "Lyon", "Osaka",
)
_COUNTRIES = (
    "China", "Germany", "Singapore", "United Kingdom", "Switzerland",
    "United States", "Japan", "France", "Netherlands", "Italy",
)
_STREETS = (
    "Pokfulam Road", "Main Street", "Harbour View", "Industrial Ave",
    "Market Square", "Canton Road", "Des Voeux Road", "Queensway",
)
_COMPANIES = (
    "Acme Trading", "Globex", "Initech", "Umbrella Logistics", "Wayne Supplies",
    "Stark Components", "Tyrell Parts", "Cyberdyne Tools",
)
_PRODUCTS = (
    "steel bolt", "copper wire", "ball bearing", "hex nut", "gasket",
    "circuit board", "power supply", "hydraulic pump", "valve", "sensor",
)
_CARRIERS = ("DHL", "FedEx", "UPS", "Maersk", "Hapag-Lloyd", "SF Express")
_CURRENCIES = ("USD", "EUR", "HKD", "CNY", "GBP", "JPY")

_TOKEN_SPLIT = re.compile(r"[_\-]|(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")


def _tokens(label: str) -> set[str]:
    return {token.lower() for token in _TOKEN_SPLIT.split(label) if token}


def value_for_label(label: str, rng: random.Random) -> str:
    """Return a plausible text value for a leaf element named ``label``."""
    tokens = _tokens(label)

    if tokens & {"email", "mail"}:
        name = rng.choice(_PERSON_NAMES).lower()
        return f"{name}@{rng.choice(('example.com', 'trade.org', 'b2b.net'))}"
    if "name" in tokens and tokens & {"contact", "party", "person"}:
        return rng.choice(_PERSON_NAMES)
    if "name" in tokens:
        return rng.choice(_COMPANIES)
    if "city" in tokens:
        return rng.choice(_CITIES)
    if "country" in tokens or "region" in tokens:
        return rng.choice(_COUNTRIES)
    if "street" in tokens:
        return f"{rng.randint(1, 200)} {rng.choice(_STREETS)}"
    if tokens & {"carrier", "mode"}:
        return rng.choice(_CARRIERS)
    if "currency" in tokens:
        return rng.choice(_CURRENCIES)
    if "date" in tokens or "period" in tokens:
        return f"2009-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    if tokens & {"description", "note", "instructions", "item"}:
        return rng.choice(_PRODUCTS)
    if tokens & {"price", "amount", "total", "charge", "value", "rate"}:
        return f"{rng.randint(1, 9999)}.{rng.randint(0, 99):02d}"
    if tokens & {"quantity", "qty", "days", "lines", "percent", "percentage", "no", "number"}:
        return str(rng.randint(1, 500))
    if tokens & {"id", "code", "reference", "revision", "status", "type"}:
        return f"{rng.choice('ABCDEFGH')}{rng.randint(1000, 99999)}"
    if "phone" in tokens or "fax" in tokens:
        return f"+852-{rng.randint(20000000, 39999999)}"
    return f"{rng.choice(_PRODUCTS)} {rng.randint(1, 99)}"
