"""Serialising documents to XML text and parsing them back.

The serialiser exists so that generated documents can be inspected, exported
to other tools and round-tripped in tests; it is not on the query hot path.
"""

from __future__ import annotations

import re
from xml.sax.saxutils import escape, unescape

from repro.document.document import XMLDocument
from repro.exceptions import DocumentError
from repro.schema.schema import Schema

__all__ = ["document_to_xml", "parse_document_xml"]

_INDENT = "  "


def document_to_xml(document: XMLDocument) -> str:
    """Serialise ``document`` to indented XML text."""
    if document.root is None:
        raise DocumentError("cannot serialise a document with no root")
    lines: list[str] = []

    def emit(node, depth: int) -> None:
        indent = _INDENT * depth
        if node.is_leaf:
            if node.value is None:
                lines.append(f"{indent}<{node.label}/>")
            else:
                lines.append(f"{indent}<{node.label}>{escape(node.value)}</{node.label}>")
        else:
            lines.append(f"{indent}<{node.label}>")
            for child in node.children:
                emit(child, depth + 1)
            lines.append(f"{indent}</{node.label}>")

    emit(document.root, 0)
    return "\n".join(lines) + "\n"


_TOKEN_RE = re.compile(
    r"<\s*(?P<close>/)?\s*(?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)\s*(?P<selfclose>/)?\s*>"
    r"|(?P<text>[^<>]+)"
)


def parse_document_xml(text: str, schema: Schema, name: str = "document") -> XMLDocument:
    """Parse XML text produced by :func:`document_to_xml` against ``schema``.

    Element nesting is resolved against the schema: a start tag must name a
    child element (in the schema) of the currently open element.  Whitespace-
    only text is ignored; other text becomes the value of the enclosing node.

    Raises
    ------
    DocumentError
        On mismatched tags or elements that do not conform to the schema.
    """
    document = XMLDocument(schema, name)
    stack: list = []  # document nodes currently open
    for match in _TOKEN_RE.finditer(text):
        if match.group("text") is not None:
            content = unescape(match.group("text"))
            if content.strip() and stack:
                stack[-1].value = content.strip()
            continue
        tag = match.group("name")
        if match.group("close"):
            if not stack:
                raise DocumentError(f"unexpected closing tag </{tag}>")
            node = stack.pop()
            if node.label != tag:
                raise DocumentError(f"closing tag </{tag}> does not match <{node.label}>")
            continue
        if not stack:
            root_element = schema.root
            if root_element is None or root_element.label != tag:
                raise DocumentError(
                    f"root tag <{tag}> does not match schema root "
                    f"{root_element.label if root_element else None!r}"
                )
            node = document.add_root(root_element.element_id)
        else:
            parent_node = stack[-1]
            parent_element = schema.get(parent_node.element_id)
            child_element = next(
                (child for child in parent_element.children if child.label == tag), None
            )
            if child_element is None:
                raise DocumentError(
                    f"element <{tag}> is not a child of {parent_element.path!r} in the schema"
                )
            node = document.add_child(parent_node, child_element.element_id)
        if not match.group("selfclose"):
            stack.append(node)
    if stack:
        raise DocumentError(f"unclosed element <{stack[-1].label}>")
    if document.root is None:
        raise DocumentError("document text contains no elements")
    return document.finalize()
