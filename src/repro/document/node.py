"""Nodes of an XML document tree."""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["DocumentNode"]


class DocumentNode:
    """A single element node of an XML document.

    Each node records the id of the schema element it instantiates
    (``element_id``), its label, an optional text value (for leaves) and the
    region encoding ``(start, end, level)`` assigned by
    :meth:`repro.document.document.XMLDocument.finalize`.  The region encoding
    is the classic interval labelling used by structural-join algorithms:
    node ``a`` is an ancestor of node ``b`` iff
    ``a.start < b.start and b.end <= a.end``.
    """

    __slots__ = (
        "node_id",
        "label",
        "element_id",
        "parent",
        "children",
        "value",
        "start",
        "end",
        "level",
    )

    def __init__(
        self,
        node_id: int,
        label: str,
        element_id: int,
        parent: Optional["DocumentNode"] = None,
        value: Optional[str] = None,
    ) -> None:
        self.node_id = node_id
        self.label = label
        self.element_id = element_id
        self.parent = parent
        self.children: list[DocumentNode] = []
        self.value = value
        # Region encoding; filled in by XMLDocument.finalize().
        self.start = -1
        self.end = -1
        self.level = 0 if parent is None else parent.level + 1

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def is_leaf(self) -> bool:
        """``True`` when the node has no element children."""
        return not self.children

    def iter_subtree(self) -> Iterator["DocumentNode"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_ancestors(self) -> Iterator["DocumentNode"]:
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "DocumentNode") -> bool:
        """Region-encoding ancestor test (requires a finalized document)."""
        return self.start < other.start and other.end <= self.end

    def is_parent_of(self, other: "DocumentNode") -> bool:
        """``True`` when ``other`` is a direct child of this node."""
        return other.parent is self

    def path_labels(self) -> list[str]:
        """Return the labels on the root-to-node path (root first)."""
        labels = [self.label]
        for ancestor in self.iter_ancestors():
            labels.append(ancestor.label)
        labels.reverse()
        return labels

    def __repr__(self) -> str:
        value = f", value={self.value!r}" if self.value is not None else ""
        return f"DocumentNode(id={self.node_id}, label={self.label!r}{value})"
