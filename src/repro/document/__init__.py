"""XML document substrate.

Documents conform to a :class:`repro.schema.Schema` (the paper's *source
documents* ``dS``), carry text values at their leaves and maintain the
interval (pre/post order) labelling needed by structural joins during twig
matching.
"""

from repro.document.node import DocumentNode
from repro.document.document import XMLDocument
from repro.document.generator import generate_document, generate_order_document
from repro.document.serializer import document_to_xml, parse_document_xml

__all__ = [
    "DocumentNode",
    "XMLDocument",
    "generate_document",
    "generate_order_document",
    "document_to_xml",
    "parse_document_xml",
]
