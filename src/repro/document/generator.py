"""Synthetic document generation.

The paper's query experiments use ``Order.xml``, an XCBL sample purchase
order with 3473 element nodes.  :func:`generate_order_document` produces the
analogous document for the synthetic XCBL schema; :func:`generate_document`
is the general generator for any corpus schema.
"""

from __future__ import annotations

from repro._rng import make_rng
from repro.document.document import XMLDocument
from repro.document.node import DocumentNode
from repro.document.values import value_for_label
from repro.exceptions import DocumentError
from repro.schema.corpus import load_corpus_schema
from repro.schema.element import SchemaElement
from repro.schema.schema import Schema

__all__ = ["generate_document", "generate_order_document", "ORDER_DOCUMENT_TARGET_NODES"]

#: Node count of the paper's source document (XCBL ``Order.xml``).
ORDER_DOCUMENT_TARGET_NODES = 3473


def _instantiate_subtree(
    document: XMLDocument,
    element: SchemaElement,
    parent_node: DocumentNode | None,
    rng,
) -> DocumentNode:
    """Instantiate ``element`` and, recursively, one copy of each descendant."""
    if parent_node is None:
        node = document.add_root(element.element_id)
    else:
        node = document.add_child(parent_node, element.element_id)
    if element.is_leaf:
        node.value = value_for_label(element.label, rng)
    else:
        for child in element.children:
            _instantiate_subtree(document, child, node, rng)
    return node


def generate_document(
    schema: Schema,
    target_nodes: int | None = None,
    seed: int | None = None,
    name: str | None = None,
) -> XMLDocument:
    """Generate a document conforming to ``schema``.

    The generator first instantiates every schema element exactly once (so
    the document exercises the whole schema), then repeatedly adds extra
    instances of *repeatable* elements until ``target_nodes`` is reached.

    Parameters
    ----------
    schema:
        The (frozen) schema to conform to.
    target_nodes:
        Approximate total node count.  ``None`` stops after the single-pass
        instantiation.  The result may overshoot by at most the size of one
        repeated subtree.
    seed:
        Base seed for value generation and repetition choices.
    name:
        Document name; defaults to ``"<schema>.xml"``.

    Raises
    ------
    DocumentError
        If ``target_nodes`` is requested but the schema has no repeatable
        element to expand.
    """
    rng = make_rng(seed, f"document:{schema.name}")
    document = XMLDocument(schema, name or f"{schema.name}.xml")
    assert schema.root is not None
    _instantiate_subtree(document, schema.root, None, rng)

    if target_nodes is not None and len(document) < target_nodes:
        repeatable = [element for element in schema.iter_preorder() if element.repeatable]
        if not repeatable:
            raise DocumentError(
                f"schema {schema.name!r} has no repeatable elements; cannot grow the "
                f"document to {target_nodes} nodes"
            )
        # Prefer repeating smaller subtrees when the remaining budget is small,
        # so the final size lands close to the target.
        sizes = {element.element_id: element.subtree_size() for element in repeatable}
        while len(document) < target_nodes:
            remaining = target_nodes - len(document)
            candidates = [e for e in repeatable if sizes[e.element_id] <= remaining]
            if not candidates:
                candidates = [min(repeatable, key=lambda e: sizes[e.element_id])]
            element = rng.choice(candidates)
            parents = document.nodes_of_element(element.parent.element_id)  # type: ignore[union-attr]
            parent_node = rng.choice(parents)
            _instantiate_subtree(document, element, parent_node, rng)

    document.finalize()
    return document


def generate_order_document(
    seed: int | None = None, target_nodes: int = ORDER_DOCUMENT_TARGET_NODES
) -> XMLDocument:
    """Generate the XCBL purchase-order source document used by the benchmarks.

    Mirrors the paper's ``Order.xml`` (3473 nodes, conforming to the XCBL
    schema).
    """
    schema = load_corpus_schema("xcbl", seed=seed)
    return generate_document(schema, target_nodes=target_nodes, seed=seed, name="Order.xml")
