"""The :class:`XMLDocument` tree."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import DocumentConformanceError, DocumentError
from repro.document.node import DocumentNode
from repro.schema.schema import Schema

__all__ = ["XMLDocument"]


class XMLDocument:
    """An XML document that conforms to a :class:`~repro.schema.Schema`.

    The document is the paper's ``dS``: it conforms to the *source* schema,
    and probabilistic twig queries posed on the target schema are answered by
    rewriting them onto this document.

    Nodes are added with :meth:`add_root` / :meth:`add_child`; after the tree
    is complete, :meth:`finalize` assigns region-encoding intervals and builds
    the per-element and per-label indexes used by the twig-matching engine.

    Parameters
    ----------
    schema:
        The schema the document conforms to.  Every node added must
        instantiate an element of this schema, and the parent/child structure
        must follow the schema's structure.
    name:
        Optional document name (for example ``"Order.xml"``).
    """

    def __init__(self, schema: Schema, name: str = "document") -> None:
        self.schema = schema
        self.name = name
        self.root: Optional[DocumentNode] = None
        self._nodes: list[DocumentNode] = []
        self._by_element: dict[int, list[DocumentNode]] = {}
        self._by_label: dict[str, list[DocumentNode]] = {}
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_root(self, element_id: int, value: Optional[str] = None) -> DocumentNode:
        """Create the document root as an instance of schema element ``element_id``."""
        self._check_mutable()
        if self.root is not None:
            raise DocumentError(f"document {self.name!r} already has a root")
        element = self.schema.get(element_id)
        if not element.is_root:
            raise DocumentConformanceError(
                f"document root must instantiate the schema root, got {element.path!r}"
            )
        node = DocumentNode(0, element.label, element_id, None, value)
        self.root = node
        self._register(node)
        return node

    def add_child(
        self, parent: DocumentNode, element_id: int, value: Optional[str] = None
    ) -> DocumentNode:
        """Create a node under ``parent`` instantiating schema element ``element_id``.

        Raises
        ------
        DocumentConformanceError
            If the schema element is not a child of the parent's schema
            element (the document would not conform to the schema).
        """
        self._check_mutable()
        element = self.schema.get(element_id)
        parent_element = self.schema.get(parent.element_id)
        if element.parent is not parent_element:
            raise DocumentConformanceError(
                f"element {element.path!r} is not a child of {parent_element.path!r} "
                f"in schema {self.schema.name!r}"
            )
        node = DocumentNode(len(self._nodes), element.label, element_id, parent, value)
        parent.children.append(node)
        self._register(node)
        return node

    def _register(self, node: DocumentNode) -> None:
        self._nodes.append(node)
        self._by_element.setdefault(node.element_id, []).append(node)
        self._by_label.setdefault(node.label, []).append(node)

    def _check_mutable(self) -> None:
        if self._finalized:
            raise DocumentError(f"document {self.name!r} is finalized and cannot be modified")

    def finalize(self) -> "XMLDocument":
        """Assign region-encoding intervals and freeze the document.

        Returns the document itself so the call can be chained.
        """
        if self.root is None:
            raise DocumentError(f"document {self.name!r} has no root")
        counter = 0
        stack: list[tuple[DocumentNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                node.end = counter
                counter += 1
                continue
            node.start = counter
            counter += 1
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
        self._finalized = True
        return self

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has been called."""
        return self._finalized

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[DocumentNode]:
        return iter(self._nodes)

    def get(self, node_id: int) -> DocumentNode:
        """Return the node with ``node_id``."""
        if 0 <= node_id < len(self._nodes):
            return self._nodes[node_id]
        raise DocumentError(f"document {self.name!r} has no node with id {node_id}")

    def nodes_of_element(self, element_id: int) -> list[DocumentNode]:
        """Return all nodes instantiating the schema element ``element_id``."""
        return list(self._by_element.get(element_id, ()))

    def nodes_with_label(self, label: str) -> list[DocumentNode]:
        """Return all nodes with tag name ``label``."""
        return list(self._by_label.get(label, ()))

    def iter_preorder(self) -> Iterator[DocumentNode]:
        """Yield nodes in document order."""
        if self.root is None:
            return
        yield from self.root.iter_subtree()

    def depth(self) -> int:
        """Return the maximum node level."""
        return max((node.level for node in self._nodes), default=0)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check conformance and structural invariants; raise on violation."""
        if self.root is None:
            raise DocumentError(f"document {self.name!r} has no root")
        for node in self._nodes:
            element = self.schema.get(node.element_id)
            if node.label != element.label:
                raise DocumentConformanceError(
                    f"node {node.node_id} labelled {node.label!r} but instantiates "
                    f"{element.path!r}"
                )
            if node.parent is not None:
                parent_element = self.schema.get(node.parent.element_id)
                if element.parent is not parent_element:
                    raise DocumentConformanceError(
                        f"node {node.node_id} ({element.path!r}) has parent instance of "
                        f"{parent_element.path!r}"
                    )
        if self._finalized:
            for node in self._nodes:
                if node.start < 0 or node.end <= node.start:
                    raise DocumentError(
                        f"node {node.node_id} has an invalid region {node.start}..{node.end}"
                    )
                for child in node.children:
                    if not (node.start < child.start and child.end <= node.end):
                        raise DocumentError(
                            f"region encoding of node {child.node_id} not nested in its parent"
                        )

    def __repr__(self) -> str:
        return f"XMLDocument(name={self.name!r}, nodes={len(self._nodes)}, schema={self.schema.name!r})"
