"""Deterministic random-number helpers.

All synthetic data in the library (schemas, documents, matcher noise) is
generated from :class:`random.Random` instances derived here, so that every
dataset, test and benchmark is exactly reproducible across runs and machines.

The helpers derive child seeds from a parent seed and a string *purpose* tag
(e.g. ``"schema:xcbl"``) so that independently generated artefacts do not
share correlated random streams.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "make_rng", "DEFAULT_SEED"]

#: Seed used throughout the library when the caller does not supply one.
DEFAULT_SEED = 20100301  # ICDE 2010 conference date, purely mnemonic.


def derive_seed(base_seed: int, purpose: str) -> int:
    """Derive a child seed from ``base_seed`` and a ``purpose`` tag.

    The derivation is stable across Python versions because it uses SHA-256
    rather than ``hash()`` (which is salted per process).

    Parameters
    ----------
    base_seed:
        The parent seed.
    purpose:
        Any string describing what the child stream is for.

    Returns
    -------
    int
        A 63-bit non-negative integer suitable for :class:`random.Random`.
    """
    payload = f"{base_seed}:{purpose}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(base_seed: int | None, purpose: str) -> random.Random:
    """Create a :class:`random.Random` for ``purpose`` derived from ``base_seed``.

    ``None`` falls back to :data:`DEFAULT_SEED`, keeping library behaviour
    deterministic by default; callers that genuinely want nondeterminism can
    pass ``random.randrange(2**63)`` explicitly.
    """
    if base_seed is None:
        base_seed = DEFAULT_SEED
    return random.Random(derive_seed(base_seed, purpose))
