"""Artifact (de)serialization over a content-addressed block store.

This is the middle layer of the persistence stack: it turns the engine's
expensive artifacts — schemas, the schema matching, the mapping set, the
:class:`~repro.engine.compiled.CompiledMappingSet` bitset columns, the
finalized source document, :class:`~repro.corpus.sharding.DocumentPartition`
layouts and result-cache snapshots — into *canonical* JSON payloads, stores
each as one block, and ties them together with a per-session **manifest**
pointed at by a mutable ref.

Canonical bytes are what make the store's guarantees cheap:

* payloads are serialized with sorted keys, no whitespace and no
  timestamps, so the same logical state always produces the same bytes and
  therefore the same SHA-256 block key — committing an overlay that staged a
  delta is *byte-identical* to applying the delta against the base directly;
* Python's ``json`` round-trips ``float`` values through ``repr``, which is
  exact for IEEE doubles, so mapping probabilities survive a round trip
  bit-for-bit and reopened query results compare equal to fresh ones;
* bitmask columns are hex-encoded strings (Python ints of arbitrary width).

The manifest records the session's ``(generation, delta_epoch,
document_version)`` signature and its configuration; a reopened session
verifies both before trusting the stored artifacts, and any checksum or
decode failure surfaces as :class:`StoreError`, which the engine treats as a
miss (cold rebuild) — corruption can never break the query path.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.document.document import XMLDocument
from repro.exceptions import StoreError
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.matching.matching import SchemaMatching
from repro.schema.schema import Schema
from repro.store.blocks import BlockStore

__all__ = [
    "canonical_bytes",
    "schema_payload",
    "schema_from_payload",
    "matching_payload",
    "matching_from_payload",
    "mapping_set_payload",
    "mapping_set_from_payload",
    "compiled_payload",
    "attach_compiled",
    "document_payload",
    "document_from_payload",
    "partition_layout",
    "partition_from_layout",
    "result_entries_payload",
    "manifest_block_keys",
    "SessionBundle",
    "ArtifactStore",
]

#: Manifest format version; bump on incompatible payload changes so older
#: stores read as misses instead of mis-decoding.
MANIFEST_FORMAT = 1


def canonical_bytes(payload: Any) -> bytes:
    """Serialize ``payload`` to canonical JSON bytes (sorted keys, compact).

    The same logical payload always produces the same bytes — the property
    the content-addressed layer builds on.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _mask_hex(mask: int) -> str:
    return format(mask, "x")


def _mask_int(text: str) -> int:
    return int(text, 16)


# --------------------------------------------------------------------------- #
# Schemas
# --------------------------------------------------------------------------- #
def schema_payload(schema: Schema) -> dict:
    """Canonical payload of a schema: element rows in id (creation) order."""
    return {
        "kind": "schema",
        "name": schema.name,
        "frozen": schema.frozen,
        "elements": [
            [
                element.label,
                element.parent.element_id if element.parent is not None else None,
                bool(element.repeatable),
                element.concept,
            ]
            for element in schema
        ],
    }


def schema_from_payload(payload: dict) -> Schema:
    """Rebuild a :class:`Schema` from :func:`schema_payload` output.

    Elements are re-added in id order, so the rebuilt schema assigns the
    same element ids, paths and child order as the original.
    """
    schema = Schema(payload["name"])
    for label, parent_id, repeatable, concept in payload["elements"]:
        if parent_id is None:
            schema.add_root(label, repeatable=repeatable, concept=concept)
        else:
            schema.add_child(
                schema.get(parent_id), label, repeatable=repeatable, concept=concept
            )
    if payload.get("frozen"):
        schema.freeze()
    return schema


# --------------------------------------------------------------------------- #
# Matching
# --------------------------------------------------------------------------- #
def matching_payload(matching: SchemaMatching) -> dict:
    """Canonical payload of a schema matching: sorted correspondence rows."""
    return {
        "kind": "matching",
        "name": matching.name,
        "pairs": sorted(
            [c.source_id, c.target_id, c.score] for c in matching
        ),
    }


def matching_from_payload(payload: dict, source: Schema, target: Schema) -> SchemaMatching:
    """Rebuild a :class:`SchemaMatching` between two (rebuilt) schemas."""
    matching = SchemaMatching(source, target, name=payload["name"])
    for source_id, target_id, score in payload["pairs"]:
        matching.add_pair(source_id, target_id, score)
    return matching


# --------------------------------------------------------------------------- #
# Mapping set
# --------------------------------------------------------------------------- #
def mapping_set_payload(mapping_set: MappingSet) -> dict:
    """Canonical payload of a mapping set: per-mapping rows in id order.

    Probabilities are stored verbatim (JSON round-trips doubles exactly), so
    a reopened set reproduces the original distribution bit-for-bit — even
    after chained deltas whose reweights never went through normalisation.
    """
    return {
        "kind": "mapping_set",
        "mappings": [
            [
                sorted([s, t] for s, t in mapping.correspondences),
                mapping.score,
                mapping.probability,
            ]
            for mapping in mapping_set
        ],
    }


def mapping_set_from_payload(payload: dict, matching: SchemaMatching) -> MappingSet:
    """Rebuild a :class:`MappingSet` (exact probabilities, no renormalisation)."""
    mappings = [
        Mapping(
            mapping_id=index,
            correspondences=frozenset((s, t) for s, t in pairs),
            score=score,
            probability=probability,
        )
        for index, (pairs, score, probability) in enumerate(payload["mappings"])
    ]
    return MappingSet(matching, mappings, normalize=False)


# --------------------------------------------------------------------------- #
# Compiled bitset columns
# --------------------------------------------------------------------------- #
def compiled_payload(compiled) -> dict:
    """Canonical payload of a compiled mapping set's bitmask columns.

    Posting lists, coverage masks and source partitions are hex-encoded;
    the probability column is derived from the mapping set on attach, so it
    is not duplicated here.
    """
    return {
        "kind": "compiled",
        "num_mappings": compiled.num_mappings,
        "pairs": sorted(
            [s, t, _mask_hex(mask)] for (s, t), mask in compiled._pair_masks.items()
        ),
        "covered": sorted(
            [t, _mask_hex(mask)] for t, mask in compiled._covered_masks.items()
        ),
        "sources": sorted(
            [t, [[s, _mask_hex(mask)] for s, mask in partitions]]
            for t, partitions in compiled._target_sources.items()
        ),
    }


def attach_compiled(payload: dict, mapping_set: MappingSet, kernels=None):
    """Rebuild a :class:`CompiledMappingSet` from its payload and memoize it.

    The artifact is installed as ``mapping_set._compiled`` (the same slot
    :meth:`MappingSet.compile` fills), so the engine's generation machinery
    treats it exactly like a freshly compiled view.  The stored columns are
    backend-neutral Python-int masks; ``kernels`` picks the kernel backend
    the reattached artifact runs on (``None`` = process default), so a
    session persisted under one backend reopens under any other.

    Raises
    ------
    StoreError
        When the stored column dimensions do not match the mapping set.
    """
    from repro.engine.compiled import CompiledMappingSet
    from repro.engine.kernels import resolve_kernels

    if payload["num_mappings"] != len(mapping_set):
        raise StoreError(
            f"stored compiled artifact holds {payload['num_mappings']} mappings, "
            f"the mapping set holds {len(mapping_set)}"
        )
    compiled = object.__new__(CompiledMappingSet)
    compiled.mapping_set = mapping_set
    compiled.num_mappings = len(mapping_set)
    compiled.all_mask = (1 << len(mapping_set)) - 1
    compiled.probabilities = tuple(mapping.probability for mapping in mapping_set)
    compiled.kernels = resolve_kernels(kernels)
    compiled._pair_masks = {
        (s, t): _mask_int(mask) for s, t, mask in payload["pairs"]
    }
    compiled._covered_masks = {t: _mask_int(mask) for t, mask in payload["covered"]}
    compiled._target_sources = {
        t: tuple((s, _mask_int(mask)) for s, mask in partitions)
        for t, partitions in payload["sources"]
    }
    compiled._columns = None
    mapping_set._compiled = compiled
    return compiled


# --------------------------------------------------------------------------- #
# Document
# --------------------------------------------------------------------------- #
def document_payload(document: XMLDocument) -> dict:
    """Canonical payload of a finalized document: node rows in id order."""
    return {
        "kind": "document",
        "name": document.name,
        "nodes": [
            [
                node.element_id,
                node.parent.node_id if node.parent is not None else None,
                node.value,
            ]
            for node in document
        ],
    }


def document_from_payload(payload: dict, schema: Schema) -> XMLDocument:
    """Rebuild and finalize an :class:`XMLDocument` on a (rebuilt) schema.

    Nodes are re-added in node-id order, so ids, child order and the region
    encoding produced by finalisation all match the original document.
    """
    document = XMLDocument(schema, payload["name"])
    nodes = []
    for element_id, parent_id, value in payload["nodes"]:
        if parent_id is None:
            node = document.add_root(element_id, value=value)
        else:
            node = document.add_child(nodes[parent_id], element_id, value=value)
        nodes.append(node)
    return document.finalize()


# --------------------------------------------------------------------------- #
# Shard partition layouts
# --------------------------------------------------------------------------- #
def partition_layout(partition) -> dict:
    """Canonical layout of a :class:`DocumentPartition`: spine + subtree tops.

    A shard view is fully determined by the base document, the spine node
    ids and each shard's frontier subtree top node ids, so that is all the
    layout records — rebuilding re-derives the per-element candidate index.
    """
    spine_ids = partition.spine_node_ids
    shards = []
    for shard in partition.shards:
        tops: list[int] = []
        for nodes in shard._by_element.values():
            for node in nodes:
                if node.node_id in spine_ids:
                    continue
                parent = node.parent
                if parent is None or parent.node_id in spine_ids:
                    tops.append(node.node_id)
        shards.append(sorted(tops))
    return {
        "kind": "partition",
        "num_shards": partition.num_shards,
        "spine": sorted(spine_ids),
        "shards": shards,
    }


def partition_from_layout(document: XMLDocument, layout: dict):
    """Rebuild a :class:`DocumentPartition` of ``document`` from its layout."""
    from repro.corpus.sharding import DocumentPartition, ShardDocument

    spine_nodes = [document.get(node_id) for node_id in layout["spine"]]
    shards = tuple(
        ShardDocument(
            document,
            shard_id,
            spine_nodes,
            [document.get(node_id) for node_id in tops],
        )
        for shard_id, tops in enumerate(layout["shards"])
    )
    return DocumentPartition(
        document=document,
        shards=shards,
        spine_node_ids=frozenset(layout["spine"]),
        spine_element_ids=frozenset(node.element_id for node in spine_nodes),
    )


# --------------------------------------------------------------------------- #
# Result-cache snapshots
# --------------------------------------------------------------------------- #
def result_entries_payload(entries: Iterable[tuple]) -> dict:
    """Canonical payload of result-cache entries.

    ``entries`` holds ``(CacheKey, PTQResult)`` pairs (the session filters
    down to plain-text, session-scoped keys of its current signature before
    calling this).  Matches are canonical ``(query_node, document_node)``
    pair tuples, serialized sorted so equal results produce equal bytes.
    """
    rows = []
    for key, result in entries:
        rows.append(
            {
                "key": {
                    "query": key.query,
                    "plan": key.plan,
                    "k": key.k,
                    "tau": key.tau,
                },
                "answers": [
                    [
                        answer.mapping_id,
                        answer.probability,
                        sorted([[q, n] for q, n in match] for match in answer.matches),
                    ]
                    for answer in result
                ],
            }
        )
    rows.sort(key=lambda row: (row["key"]["query"], row["key"]["plan"],
                               str(row["key"]["k"]), str(row["key"]["tau"])))
    return {"kind": "results", "entries": rows}


def manifest_block_keys(manifest: dict) -> list[str]:
    """Every block key a session manifest references (the gc live-set edge)."""
    keys = list(manifest.get("artifacts", {}).values())
    keys.extend(manifest.get("partitions", {}).values())
    results_key = manifest.get("results")
    if results_key:
        keys.append(results_key)
    statistics_key = manifest.get("statistics")
    if statistics_key:
        keys.append(statistics_key)
    return keys


@dataclass
class SessionBundle:
    """Everything :meth:`ArtifactStore.load_session` recovered for one ref.

    ``partitions`` maps shard counts to raw layout payloads (rebuilt lazily
    against the loaded document) and ``results`` holds raw result-entry rows
    (the session re-parses query texts itself).  ``statistics`` carries the
    planner's persisted statistics payload (``None`` when the session saved
    none).  ``load_ms`` records the per-artifact deserialization cost,
    surfaced by ``explain()`` as artifact provenance.
    """

    ref: str
    manifest_key: str
    config: dict
    signature: dict
    source_schema: Schema
    target_schema: Schema
    matching: SchemaMatching
    mapping_set: MappingSet
    document: XMLDocument
    compiled_loaded: bool
    partitions: dict[int, dict] = field(default_factory=dict)
    results: list[dict] = field(default_factory=list)
    statistics: Optional[dict] = None
    load_ms: dict[str, float] = field(default_factory=dict)


class ArtifactStore:
    """Session-artifact persistence over a :class:`BlockStore` (see module docs).

    Thread-safe; the hit/miss/write counters are surfaced through
    :meth:`stats` and flow into ``Dataspace.describe()`` and the service
    stats.  Wrap a raw block store with :meth:`wrap` (idempotent), so every
    engine entry point accepts either flavour.
    """

    def __init__(self, blocks: BlockStore) -> None:
        self.blocks = blocks
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0

    @classmethod
    def wrap(cls, store) -> "ArtifactStore":
        """Return ``store`` as an :class:`ArtifactStore` (idempotent)."""
        if isinstance(store, ArtifactStore):
            return store
        if isinstance(store, BlockStore):
            return cls(store)
        raise StoreError(
            f"expected a BlockStore or ArtifactStore, got {type(store).__name__}"
        )

    # ------------------------------------------------------------------ #
    # Payload primitives
    # ------------------------------------------------------------------ #
    def put_payload(self, payload: Any) -> str:
        """Store one payload as a canonical block; return its key."""
        data = canonical_bytes(payload)
        key = self.blocks.put_block(data)
        with self._lock:
            self._writes += 1
        return key

    def get_payload(self, key: str) -> Any:
        """Load and decode the payload block at ``key``.

        Raises
        ------
        StoreError
            When the block is missing, fails its checksum, or does not
            decode as JSON.
        """
        data = self.blocks.get_block(key)
        if data is None:
            raise StoreError(f"missing block {key[:12]}...")
        try:
            return json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise StoreError(f"block {key[:12]}... is not a valid payload: {error}")

    # ------------------------------------------------------------------ #
    # Whole-session save / load
    # ------------------------------------------------------------------ #
    def save_session(
        self,
        *,
        ref: str,
        config: dict,
        signature: dict,
        source_schema: Schema,
        target_schema: Schema,
        matching: SchemaMatching,
        mapping_set: MappingSet,
        document: XMLDocument,
        compiled=None,
        partitions: Optional[dict[int, dict]] = None,
        results: Optional[Iterable[tuple]] = None,
        statistics: Optional[dict] = None,
    ) -> dict:
        """Persist one session state under ``ref``; return a small report.

        Every artifact becomes one content-addressed block; unchanged
        artifacts (same canonical bytes) dedupe to the block already stored,
        so repeated persists after small deltas write only what changed.
        """
        started = time.perf_counter()
        artifacts = {
            "source_schema": self.put_payload(schema_payload(source_schema)),
            "target_schema": self.put_payload(schema_payload(target_schema)),
            "matching": self.put_payload(matching_payload(matching)),
            "mapping_set": self.put_payload(mapping_set_payload(mapping_set)),
            "document": self.put_payload(document_payload(document)),
        }
        if compiled is not None:
            artifacts["compiled"] = self.put_payload(compiled_payload(compiled))
        partition_keys = {
            str(num_shards): self.put_payload(layout)
            for num_shards, layout in sorted((partitions or {}).items())
        }
        results_key = None
        result_rows = list(results) if results is not None else []
        if result_rows:
            results_key = self.put_payload(result_entries_payload(result_rows))
        statistics_key = self.put_payload(statistics) if statistics else None
        manifest = {
            "kind": "dataspace",
            "format": MANIFEST_FORMAT,
            "config": config,
            "signature": signature,
            "artifacts": artifacts,
            "partitions": partition_keys,
            "results": results_key,
            "statistics": statistics_key,
        }
        manifest_key = self.put_payload(manifest)
        self.blocks.set_ref(ref, manifest_key)
        return {
            "ref": ref,
            "manifest": manifest_key,
            "artifacts": len(artifacts),
            "partitions": len(partition_keys),
            "results": len(result_rows),
            "elapsed_ms": (time.perf_counter() - started) * 1000.0,
        }

    def load_session(
        self, ref: str, *, expect: Optional[dict] = None
    ) -> Optional[SessionBundle]:
        """Load the session persisted under ``ref``; ``None`` when the ref is absent.

        Every block read is checksum-verified; any corruption, missing block
        or malformed payload raises :class:`StoreError` (counted as a miss),
        which the engine turns into a cold rebuild.  ``expect`` compares the
        given keys against the persisted configuration *before* the
        expensive artifact loads — a mismatch (a stale signature: the store
        holds a session of a different configuration) counts as a miss and
        returns ``None``.
        """
        manifest_key = self.blocks.get_ref(ref)
        if manifest_key is None:
            with self._lock:
                self._misses += 1
            return None
        try:
            if expect is not None:
                manifest = self.get_payload(manifest_key)
                config = manifest.get("config", {}) if isinstance(manifest, dict) else {}
                if any(config.get(key) != value for key, value in expect.items()):
                    with self._lock:
                        self._misses += 1
                    return None
            bundle = self._load_bundle(ref, manifest_key)
        except Exception:
            with self._lock:
                self._misses += 1
            raise
        with self._lock:
            self._hits += 1
        return bundle

    def _load_bundle(self, ref: str, manifest_key: str) -> SessionBundle:
        manifest = self.get_payload(manifest_key)
        if manifest.get("kind") != "dataspace" or manifest.get("format") != MANIFEST_FORMAT:
            raise StoreError(
                f"ref {ref!r} does not point at a format-{MANIFEST_FORMAT} "
                "dataspace manifest"
            )
        artifacts = manifest["artifacts"]
        load_ms: dict[str, float] = {}

        def timed(name: str, build):
            started = time.perf_counter()
            value = build()
            load_ms[name] = (time.perf_counter() - started) * 1000.0
            return value

        source_schema = timed(
            "source_schema",
            lambda: schema_from_payload(self.get_payload(artifacts["source_schema"])),
        )
        target_schema = timed(
            "target_schema",
            lambda: schema_from_payload(self.get_payload(artifacts["target_schema"])),
        )
        matching = timed(
            "matching",
            lambda: matching_from_payload(
                self.get_payload(artifacts["matching"]), source_schema, target_schema
            ),
        )
        mapping_set = timed(
            "mapping_set",
            lambda: mapping_set_from_payload(
                self.get_payload(artifacts["mapping_set"]), matching
            ),
        )
        compiled_loaded = False
        if "compiled" in artifacts:
            timed(
                "compiled",
                lambda: attach_compiled(
                    self.get_payload(artifacts["compiled"]), mapping_set
                ),
            )
            compiled_loaded = True
        document = timed(
            "document",
            lambda: document_from_payload(
                self.get_payload(artifacts["document"]), source_schema
            ),
        )
        partitions = {
            int(num_shards): self.get_payload(key)
            for num_shards, key in manifest.get("partitions", {}).items()
        }
        results: list[dict] = []
        if manifest.get("results"):
            results = self.get_payload(manifest["results"])["entries"]
        statistics: Optional[dict] = None
        if manifest.get("statistics"):
            statistics = self.get_payload(manifest["statistics"])
        return SessionBundle(
            ref=ref,
            manifest_key=manifest_key,
            config=manifest.get("config", {}),
            signature=manifest.get("signature", {}),
            source_schema=source_schema,
            target_schema=target_schema,
            matching=matching,
            mapping_set=mapping_set,
            document=document,
            compiled_loaded=compiled_loaded,
            partitions=partitions,
            results=results,
            statistics=statistics,
            load_ms=load_ms,
        )

    # ------------------------------------------------------------------ #
    # Maintenance: verify and gc
    # ------------------------------------------------------------------ #
    def verify(self) -> dict:
        """Walk every ref and verify the checksum of every reachable block.

        Returns ``{"refs": {name: "ok" | "error: ..."}, "blocks_checked": n,
        "errors": n}``; never raises — the report *is* the outcome.
        """
        report: dict = {"refs": {}, "blocks_checked": 0, "errors": 0}
        for name, manifest_key in sorted(self.blocks.refs().items()):
            try:
                manifest = self.get_payload(manifest_key)
                report["blocks_checked"] += 1
                for child_key in manifest_block_keys(manifest):
                    if self.blocks.get_block(child_key) is None:
                        raise StoreError(f"missing block {child_key[:12]}...")
                    report["blocks_checked"] += 1
                report["refs"][name] = "ok"
            except Exception as error:
                report["refs"][name] = f"error: {error}"
                report["errors"] += 1
        return report

    def gc(self) -> dict:
        """Delete every block unreachable from the ref'd manifests.

        The live set is every ref target plus every block its manifest
        references; manifests that fail to decode keep only themselves live
        (conservative for the broken ref, aggressive for nothing).
        """
        live: set[str] = set()
        for manifest_key in self.blocks.refs().values():
            live.add(manifest_key)
            try:
                manifest = self.get_payload(manifest_key)
            except StoreError:
                continue
            live.update(manifest_block_keys(manifest))
        removed = 0
        for key in list(self.blocks.iter_keys()):
            if key not in live:
                if self.blocks.delete_block(key):
                    removed += 1
        return {"live": len(live), "removed": removed}

    def stats(self) -> dict:
        """Store counters plus block/ref occupancy (JSON-serialisable)."""
        with self._lock:
            counters = {
                "hits": self._hits,
                "misses": self._misses,
                "writes": self._writes,
            }
        counters.update(
            {
                "blocks": len(self.blocks),
                "total_bytes": self.blocks.total_bytes(),
                "refs": len(self.blocks.refs()),
            }
        )
        return counters

    def __repr__(self) -> str:
        return f"ArtifactStore(blocks={self.blocks!r})"
