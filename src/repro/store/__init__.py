"""Persistent artifact store: content-addressed blocks + session manifests.

Layering (bottom to top):

* :mod:`repro.store.blocks` — :class:`BlockStore` and its three
  implementations (:class:`MemoryBlockStore`, :class:`SqliteBlockStore`,
  :class:`OverlayBlockStore`): immutable blobs keyed by the SHA-256 of their
  content, plus a small mutable ref namespace used as gc roots.
* :mod:`repro.store.artifacts` — :class:`ArtifactStore`: canonical
  (de)serialization of the engine's expensive artifacts and the per-session
  manifest that ties them together under one ref.
* Engine integration — ``Dataspace.persist()`` / ``Dataspace.from_store()``
  and the ``store=`` parameters on ``Dataspace.from_dataset``,
  ``workloads.open_dataspace`` / ``open_corpus`` and
  ``ShardedCorpus.from_datasets`` (see :doc:`docs/persistence`).
"""

from repro.store.artifacts import ArtifactStore, SessionBundle, canonical_bytes
from repro.store.blocks import (
    BlockStore,
    MemoryBlockStore,
    OverlayBlockStore,
    SqliteBlockStore,
    block_key,
)

__all__ = [
    "ArtifactStore",
    "SessionBundle",
    "canonical_bytes",
    "BlockStore",
    "MemoryBlockStore",
    "SqliteBlockStore",
    "OverlayBlockStore",
    "block_key",
]
