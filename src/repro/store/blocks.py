"""Content-addressed block stores: the bottom layer of the persistence stack.

A *block* is an immutable byte string addressed by the SHA-256 hex digest of
its content.  Because the key is derived from the bytes, blocks are
deduplicated for free, writes are idempotent (two writers racing on the same
content store the same block), and every read can be verified: a block whose
bytes no longer hash to its key is corrupt and :class:`StoreError` is raised
instead of returning silently wrong data.

Three stores implement the same :class:`BlockStore` interface:

* :class:`MemoryBlockStore` — plain dicts; the unit-test substrate and the
  upper (staging) layer of an overlay;
* :class:`SqliteBlockStore` — one sqlite file with a ``blocks`` and a
  ``refs`` table; safe for concurrent writers because content-addressed
  inserts are idempotent (``INSERT OR REPLACE`` of identical bytes);
* :class:`OverlayBlockStore` — reads fall through *upper → lower*, writes go
  to the upper layer only, so staged state (e.g. an uncommitted mapping
  delta) can be queried without touching the base store; :meth:`commit`
  flushes the staged blocks and refs down.

Besides blocks, every store keeps a small mutable *ref* namespace (name →
block key), the garbage-collection roots: a block is live when it is
reachable from a ref'd manifest (see :mod:`repro.store.artifacts`).
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
from typing import Iterator, Optional

from repro.exceptions import StoreError

__all__ = [
    "block_key",
    "BlockStore",
    "MemoryBlockStore",
    "SqliteBlockStore",
    "OverlayBlockStore",
]


def block_key(data: bytes) -> str:
    """The content address of ``data``: its SHA-256 hex digest."""
    return hashlib.sha256(data).hexdigest()


class BlockStore:
    """Abstract content-addressed block store (see module docstring).

    Subclasses implement the raw primitives (``_read`` / ``_write`` ...);
    the shared :meth:`get_block` wrapper verifies the checksum of every read,
    so no caller can observe silently corrupted bytes.
    """

    # ------------------------------------------------------------------ #
    # Blocks
    # ------------------------------------------------------------------ #
    def get_block(self, key: str) -> Optional[bytes]:
        """Return the verified bytes of block ``key``, or ``None`` when absent.

        Raises
        ------
        StoreError
            When the stored bytes do not hash back to ``key`` (truncation,
            bit rot, or a tampered file).
        """
        data = self._read(key)
        if data is None:
            return None
        if block_key(data) != key:
            raise StoreError(
                f"block {key[:12]}... failed checksum verification "
                f"({len(data)} bytes stored)"
            )
        return data

    def put_block(self, data: bytes) -> str:
        """Store ``data`` under its content address and return the key.

        Idempotent: storing the same bytes twice is a no-op returning the
        same key, which is what makes concurrent writers safe.
        """
        key = block_key(data)
        self._write(key, data)
        return key

    def has_block(self, key: str) -> bool:
        """``True`` when a block with this key is present (content unverified)."""
        return self._read(key) is not None

    def delete_block(self, key: str) -> bool:
        """Remove block ``key``; return whether it existed."""
        return self._delete(key)

    def iter_keys(self) -> Iterator[str]:
        """Iterate over all stored block keys (order unspecified)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def total_bytes(self) -> int:
        """Total payload bytes across all blocks."""
        total = 0
        for key in self.iter_keys():
            data = self._read(key)
            if data is not None:
                total += len(data)
        return total

    # ------------------------------------------------------------------ #
    # Refs (gc roots)
    # ------------------------------------------------------------------ #
    def set_ref(self, name: str, key: str) -> None:
        """Point ref ``name`` at block ``key`` (creating or overwriting)."""
        raise NotImplementedError

    def get_ref(self, name: str) -> Optional[str]:
        """Return the block key ref ``name`` points at, or ``None``."""
        raise NotImplementedError

    def delete_ref(self, name: str) -> bool:
        """Remove ref ``name``; return whether it existed."""
        raise NotImplementedError

    def refs(self) -> dict[str, str]:
        """Snapshot of the whole ref namespace (name → block key)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Raw primitives
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def _write(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def _delete(self, key: str) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent; default no-op)."""

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class MemoryBlockStore(BlockStore):
    """In-memory block store: dicts behind a lock.

    The unit-test substrate, and the canonical *upper* layer of an
    :class:`OverlayBlockStore` (staged blocks live here until committed).
    """

    def __init__(self) -> None:
        self._blocks: dict[str, bytes] = {}
        self._refs: dict[str, str] = {}
        self._lock = threading.Lock()

    def _read(self, key: str) -> Optional[bytes]:
        with self._lock:
            return self._blocks.get(key)

    def _write(self, key: str, data: bytes) -> None:
        with self._lock:
            self._blocks[key] = data

    def _delete(self, key: str) -> bool:
        with self._lock:
            return self._blocks.pop(key, None) is not None

    def iter_keys(self) -> Iterator[str]:
        """Iterate over a snapshot of the stored block keys."""
        with self._lock:
            return iter(list(self._blocks))

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def set_ref(self, name: str, key: str) -> None:
        """Point ref ``name`` at ``key``."""
        with self._lock:
            self._refs[name] = key

    def get_ref(self, name: str) -> Optional[str]:
        """Return the target of ref ``name``, or ``None``."""
        with self._lock:
            return self._refs.get(name)

    def delete_ref(self, name: str) -> bool:
        """Remove ref ``name``; return whether it existed."""
        with self._lock:
            return self._refs.pop(name, None) is not None

    def refs(self) -> dict[str, str]:
        """Snapshot of the ref namespace."""
        with self._lock:
            return dict(self._refs)

    def clear(self) -> None:
        """Drop every block and ref (testing convenience)."""
        with self._lock:
            self._blocks.clear()
            self._refs.clear()

    def __repr__(self) -> str:
        with self._lock:
            return f"MemoryBlockStore(blocks={len(self._blocks)}, refs={len(self._refs)})"


class SqliteBlockStore(BlockStore):
    """Block store persisted in one sqlite file.

    Layout: ``blocks(key TEXT PRIMARY KEY, data BLOB)`` and
    ``refs(name TEXT PRIMARY KEY, key TEXT)``.  WAL journaling plus a busy
    timeout make concurrent writers from multiple connections safe; because
    blocks are content-addressed, two writers racing on the same content
    perform byte-identical idempotent inserts, so there is no lost-update
    hazard to begin with.

    Parameters
    ----------
    path:
        Filesystem path of the sqlite database (created when missing).
        ``":memory:"`` works for tests.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                self.path, check_same_thread=False, timeout=30.0
            )
            with self._lock:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS blocks ("
                    "key TEXT PRIMARY KEY, data BLOB NOT NULL)"
                )
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS refs ("
                    "name TEXT PRIMARY KEY, key TEXT NOT NULL)"
                )
                self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(f"cannot open sqlite block store at {self.path!r}: {error}")

    def _read(self, key: str) -> Optional[bytes]:
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT data FROM blocks WHERE key = ?", (key,)
                ).fetchone()
        except sqlite3.Error as error:
            raise StoreError(f"sqlite read failed for block {key[:12]}...: {error}")
        return bytes(row[0]) if row is not None else None

    def _write(self, key: str, data: bytes) -> None:
        try:
            with self._lock:
                self._conn.execute(
                    "INSERT OR REPLACE INTO blocks (key, data) VALUES (?, ?)",
                    (key, sqlite3.Binary(data)),
                )
                self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(f"sqlite write failed for block {key[:12]}...: {error}")

    def _delete(self, key: str) -> bool:
        try:
            with self._lock:
                cursor = self._conn.execute("DELETE FROM blocks WHERE key = ?", (key,))
                self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(f"sqlite delete failed for block {key[:12]}...: {error}")
        return cursor.rowcount > 0

    def iter_keys(self) -> Iterator[str]:
        """Iterate over a snapshot of all block keys in the database."""
        try:
            with self._lock:
                rows = self._conn.execute("SELECT key FROM blocks").fetchall()
        except sqlite3.Error as error:
            raise StoreError(f"sqlite key scan failed: {error}")
        return (row[0] for row in rows)

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM blocks").fetchone()[0]

    def total_bytes(self) -> int:
        """Total payload bytes across all blocks (one SQL aggregate)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM blocks"
            ).fetchone()
        return int(row[0])

    def set_ref(self, name: str, key: str) -> None:
        """Point ref ``name`` at ``key`` (upsert)."""
        try:
            with self._lock:
                self._conn.execute(
                    "INSERT OR REPLACE INTO refs (name, key) VALUES (?, ?)", (name, key)
                )
                self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(f"sqlite ref write failed for {name!r}: {error}")

    def get_ref(self, name: str) -> Optional[str]:
        """Return the target of ref ``name``, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT key FROM refs WHERE name = ?", (name,)
            ).fetchone()
        return row[0] if row is not None else None

    def delete_ref(self, name: str) -> bool:
        """Remove ref ``name``; return whether it existed."""
        with self._lock:
            cursor = self._conn.execute("DELETE FROM refs WHERE name = ?", (name,))
            self._conn.commit()
        return cursor.rowcount > 0

    def refs(self) -> dict[str, str]:
        """Snapshot of the ref namespace."""
        with self._lock:
            rows = self._conn.execute("SELECT name, key FROM refs").fetchall()
        return {name: key for name, key in rows}

    def close(self) -> None:
        """Close the underlying sqlite connection (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __repr__(self) -> str:
        return f"SqliteBlockStore(path={self.path!r})"


class OverlayBlockStore(BlockStore):
    """Two-layer store: reads fall through upper → lower, writes stay upper.

    The overlay is how staged state is queried without committing: a session
    attached to ``OverlayBlockStore(MemoryBlockStore(), base)`` persists its
    artifacts into the *upper* layer, so the base store stays byte-identical
    until :meth:`commit` flushes the staged blocks and refs down.  Because
    blocks are content-addressed, committing staged state is equivalent to
    having written it to the base directly — identical bytes produce
    identical keys, so the post-commit base is indistinguishable from one
    that never staged.

    Parameters
    ----------
    upper:
        The staging layer; receives every write.  Defaults to a fresh
        :class:`MemoryBlockStore`.
    lower:
        The base store; never written (until :meth:`commit`).
    """

    def __init__(self, upper: Optional[BlockStore] = None, lower: Optional[BlockStore] = None) -> None:
        if lower is None:
            raise StoreError("an overlay needs a lower (base) store")
        self.upper = upper if upper is not None else MemoryBlockStore()
        self.lower = lower

    def _read(self, key: str) -> Optional[bytes]:
        data = self.upper._read(key)
        if data is not None:
            return data
        return self.lower._read(key)

    def _write(self, key: str, data: bytes) -> None:
        self.upper._write(key, data)

    def _delete(self, key: str) -> bool:
        # Deletes affect the staging layer only; the base is immutable here.
        return self.upper._delete(key)

    def iter_keys(self) -> Iterator[str]:
        """Iterate over the union of upper- and lower-layer keys."""
        seen = set()
        for key in self.upper.iter_keys():
            seen.add(key)
            yield key
        for key in self.lower.iter_keys():
            if key not in seen:
                yield key

    def set_ref(self, name: str, key: str) -> None:
        """Stage ref ``name`` in the upper layer (the base is untouched)."""
        self.upper.set_ref(name, key)

    def get_ref(self, name: str) -> Optional[str]:
        """Resolve ref ``name``: staged value first, then the base's."""
        staged = self.upper.get_ref(name)
        if staged is not None:
            return staged
        return self.lower.get_ref(name)

    def delete_ref(self, name: str) -> bool:
        """Remove a *staged* ref; base refs are untouched."""
        return self.upper.delete_ref(name)

    def refs(self) -> dict[str, str]:
        """Merged ref namespace (staged entries shadow base entries)."""
        merged = self.lower.refs()
        merged.update(self.upper.refs())
        return merged

    def staged_blocks(self) -> int:
        """Number of blocks currently staged in the upper layer."""
        return len(self.upper)

    def commit(self) -> int:
        """Flush every staged block and ref into the base store.

        Returns the number of blocks written down.  The upper layer is
        cleared afterwards, so the overlay keeps working transparently on
        the now-committed base state.
        """
        written = 0
        for key in list(self.upper.iter_keys()):
            data = self.upper.get_block(key)
            if data is not None:
                self.lower.put_block(data)
                written += 1
        for name, key in self.upper.refs().items():
            self.lower.set_ref(name, key)
        if isinstance(self.upper, MemoryBlockStore):
            self.upper.clear()
        else:  # pragma: no cover - non-memory upper layers are unusual
            for key in list(self.upper.iter_keys()):
                self.upper.delete_block(key)
            for name in list(self.upper.refs()):
                self.upper.delete_ref(name)
        return written

    def discard(self) -> int:
        """Drop every staged block and ref without committing; return the count."""
        staged = len(self.upper)
        if isinstance(self.upper, MemoryBlockStore):
            self.upper.clear()
        else:  # pragma: no cover - non-memory upper layers are unusual
            for key in list(self.upper.iter_keys()):
                self.upper.delete_block(key)
            for name in list(self.upper.refs()):
                self.upper.delete_ref(name)
        return staged

    def close(self) -> None:
        """Close both layers."""
        self.upper.close()
        self.lower.close()

    def __repr__(self) -> str:
        return f"OverlayBlockStore(upper={self.upper!r}, lower={self.lower!r})"
