"""Evaluation workloads: the paper's datasets (Table II) and queries (Table III).

:func:`load_dataset` builds the schema matching for one of the dataset ids
``"D1"`` … ``"D10"`` over the synthetic corpus, with the same source/target
schema pairing and COMA++ option (fragment/context) as the paper;
:func:`standard_queries` parses the ten purchase-order queries posed against
D7's target schema; :func:`open_dataspace` opens an engine session
(:class:`repro.engine.Dataspace`) on a dataset, which is the preferred way to
evaluate queries over a workload.
"""

from repro.workloads.datasets import (
    DATASET_IDS,
    DATASET_SPECS,
    Dataset,
    build_mapping_set,
    load_dataset,
    load_source_document,
    standard_datasets,
)
from repro.workloads.queries import (
    QUERY_ALIASES,
    QUERY_IDS,
    QUERY_STRINGS,
    load_query,
    standard_queries,
)

__all__ = [
    "DATASET_IDS",
    "DATASET_SPECS",
    "Dataset",
    "load_dataset",
    "standard_datasets",
    "build_mapping_set",
    "load_source_document",
    "QUERY_IDS",
    "QUERY_STRINGS",
    "QUERY_ALIASES",
    "load_query",
    "standard_queries",
    "open_dataspace",
]


def open_dataspace(dataset_id: str, **kwargs):
    """Open an engine session (:class:`repro.engine.Dataspace`) on a dataset.

    Convenience wrapper around :meth:`repro.engine.Dataspace.from_dataset`;
    keyword arguments (``h``, ``tau``, ``method``, ``seed``, ...) are passed
    through.  Imported lazily because the engine sits above the workload
    layer.
    """
    from repro.engine import Dataspace

    return Dataspace.from_dataset(dataset_id, **kwargs)
