"""Evaluation workloads: the paper's datasets (Table II) and queries (Table III).

:func:`load_dataset` builds the schema matching for one of the dataset ids
``"D1"`` … ``"D10"`` over the synthetic corpus, with the same source/target
schema pairing and COMA++ option (fragment/context) as the paper;
:func:`standard_queries` parses the ten purchase-order queries posed against
D7's target schema; :func:`open_dataspace` opens an engine session
(:class:`repro.engine.Dataspace`) on a dataset, which is the preferred way to
evaluate queries over a workload.
"""

from repro.workloads.datasets import (
    DATASET_IDS,
    DATASET_SPECS,
    Dataset,
    build_mapping_set,
    load_dataset,
    load_source_document,
    standard_datasets,
)
from repro.workloads.queries import (
    QUERY_ALIASES,
    QUERY_IDS,
    QUERY_STRINGS,
    load_query,
    standard_queries,
)

__all__ = [
    "DATASET_IDS",
    "DATASET_SPECS",
    "Dataset",
    "load_dataset",
    "standard_datasets",
    "build_mapping_set",
    "load_source_document",
    "QUERY_IDS",
    "QUERY_STRINGS",
    "QUERY_ALIASES",
    "load_query",
    "standard_queries",
    "open_dataspace",
    "open_corpus",
]


def open_dataspace(dataset_id: str, **kwargs):
    """Open an engine session (:class:`repro.engine.Dataspace`) on a dataset.

    Convenience wrapper around :meth:`repro.engine.Dataspace.from_dataset`;
    keyword arguments (``h``, ``tau``, ``method``, ``seed``, ``store``,
    ``matching``, ...) are passed through.  Imported lazily because the
    engine sits above the workload layer.

    When pre-built artifacts are supplied the normalised workload caches are
    *not* re-derived: passing ``matching=`` (or a ``store`` holding the
    session) short-circuits the eager dataset load — and with it the matcher
    run — entirely; the session only falls back to the workload caches for
    artifacts it was given neither directly nor via the store.
    """
    from repro.engine import Dataspace

    return Dataspace.from_dataset(dataset_id, **kwargs)


def open_corpus(dataset_ids, *, shards: int = 2, **kwargs):
    """Open a sharded corpus (:class:`repro.corpus.ShardedCorpus`) on a workload.

    A single dataset id opens one session and subtree-shards its document
    into ``shards`` shards (results byte-identical to the unsharded engine);
    a sequence of ids opens one session per dataset and gives each dataset
    ``shards`` subtree shards, with global top-k answered scatter-gather
    across all of them.  Keyword arguments (``h``, ``seed``, ``cache_size``,
    ``max_workers``, ``store``) pass through; a populated ``store`` reopens
    every member session from persisted artifacts, including remembered
    shard-partition layouts.
    """
    from repro.corpus import ShardedCorpus

    if isinstance(dataset_ids, str):
        session = open_dataspace(
            dataset_ids,
            **{key: value for key, value in kwargs.items() if key != "max_workers"},
        )
        return ShardedCorpus.from_dataspace(
            session, shards, max_workers=kwargs.get("max_workers")
        )
    return ShardedCorpus.from_datasets(
        list(dataset_ids), shards_per_dataset=shards, **kwargs
    )
