"""Evaluation workloads: the paper's datasets (Table II) and queries (Table III).

:func:`load_dataset` builds the schema matching for one of the dataset ids
``"D1"`` … ``"D10"`` over the synthetic corpus, with the same source/target
schema pairing and COMA++ option (fragment/context) as the paper;
:func:`standard_queries` parses the ten purchase-order queries posed against
D7's target schema.
"""

from repro.workloads.datasets import (
    DATASET_IDS,
    DATASET_SPECS,
    Dataset,
    build_mapping_set,
    load_dataset,
    load_source_document,
    standard_datasets,
)
from repro.workloads.queries import (
    QUERY_ALIASES,
    QUERY_IDS,
    QUERY_STRINGS,
    load_query,
    standard_queries,
)

__all__ = [
    "DATASET_IDS",
    "DATASET_SPECS",
    "Dataset",
    "load_dataset",
    "standard_datasets",
    "build_mapping_set",
    "load_source_document",
    "QUERY_IDS",
    "QUERY_STRINGS",
    "QUERY_ALIASES",
    "load_query",
    "standard_queries",
]
