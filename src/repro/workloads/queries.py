"""The paper's query workload (Table III), posed against dataset D7's target schema.

The queries are purchase-order twig patterns of varying size and shape,
covering different portions of the target schema.  The paper abbreviates
``UnitPrice`` as ``UP`` and ``BuyerPartID`` as ``BPID``; the alias table
below expands them during parsing so the query strings stay close to the
paper's wording.
"""

from __future__ import annotations

from functools import lru_cache

from repro.exceptions import DatasetError
from repro.query.parser import parse_twig
from repro.query.twig import TwigQuery

__all__ = ["QUERY_ALIASES", "QUERY_STRINGS", "QUERY_IDS", "standard_queries", "load_query"]

#: Label abbreviations used by the paper's Table III.
QUERY_ALIASES: dict[str, str] = {
    "UP": "UnitPrice",
    "BPID": "BuyerPartID",
    "IP": "InvoiceParty",
    "ICN": "ContactName",
}

#: Query id -> twig pattern string (adapted from Table III).
QUERY_STRINGS: dict[str, str] = {
    "Q1": "Order/DeliverTo/Address[./City][./Country]/Street",
    "Q2": "Order/DeliverTo/Contact/EMail",
    "Q3": "Order/DeliverTo[./Address/City]/Contact/EMail",
    "Q4": "Order/POLine[./LineNo]//UP",
    "Q5": "Order/POLine[./LineNo][.//UP]/Quantity",
    "Q6": "Order/POLine[./BPID][./LineNo][//UP]/Quantity",
    "Q7": "Order[./DeliverTo//Street]/POLine[.//BPID][.//UP]/Quantity",
    "Q8": "Order[./DeliverTo[.//EMail]//Street]/POLine[.//UP]/Quantity",
    "Q9": "Order[./Buyer/Contact]/POLine[.//BPID]/Quantity",
    "Q10": "Order[./Buyer/Contact][./DeliverTo//City]//BPID",
}

#: Query ids in Table III order.
QUERY_IDS: tuple[str, ...] = tuple(QUERY_STRINGS)


def load_query(query_id: str) -> TwigQuery:
    """Parse and return one of the standard queries (``"Q1"`` … ``"Q10"``).

    Raises
    ------
    DatasetError
        If the query id is unknown.
    """
    key = query_id.strip().upper()
    if key not in QUERY_STRINGS:
        raise DatasetError(
            f"unknown query {query_id!r}; expected one of {', '.join(QUERY_IDS)}"
        )
    return _load_query_cached(key)


@lru_cache(maxsize=32)
def _load_query_cached(key: str) -> TwigQuery:
    return parse_twig(QUERY_STRINGS[key], aliases=QUERY_ALIASES)


def standard_queries() -> dict[str, TwigQuery]:
    """Parse all ten standard queries, keyed by query id."""
    return {query_id: load_query(query_id) for query_id in QUERY_IDS}
