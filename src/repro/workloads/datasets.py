"""The paper's schema-matching datasets D1 – D10 (Table II), on the synthetic corpus.

Each dataset pairs two corpus schemas and a COMA++ matching option
(``f`` = fragment, ``c`` = context).  The paper's reported capacity and
o-ratio are kept alongside, so benchmark output can show paper-vs-measured
columns side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.document.document import XMLDocument
from repro.document.generator import generate_document, generate_order_document
from repro.exceptions import DatasetError
from repro.mapping.generator import GenerationMethod, generate_top_h_mappings
from repro.mapping.mapping_set import MappingSet
from repro.matching.matcher import MatcherConfig, SchemaMatcher
from repro.matching.matching import SchemaMatching
from repro.schema.corpus import load_corpus_schema
from repro.schema.schema import Schema

__all__ = [
    "DatasetSpec",
    "Dataset",
    "DATASET_SPECS",
    "DATASET_IDS",
    "load_dataset",
    "standard_datasets",
    "build_mapping_set",
]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Static description of one Table II dataset."""

    dataset_id: str
    source: str
    target: str
    option: str  # "f" (fragment) or "c" (context)
    paper_capacity: int
    paper_o_ratio: float


#: The ten matchings of Table II.
DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.dataset_id: spec
    for spec in (
        DatasetSpec("D1", "excel", "noris", "f", 30, 0.79),
        DatasetSpec("D2", "excel", "paragon", "c", 47, 0.63),
        DatasetSpec("D3", "excel", "paragon", "f", 31, 0.57),
        DatasetSpec("D4", "noris", "paragon", "c", 41, 0.64),
        DatasetSpec("D5", "noris", "paragon", "f", 21, 0.53),
        DatasetSpec("D6", "opentrans", "apertum", "c", 77, 0.87),
        DatasetSpec("D7", "xcbl", "apertum", "c", 226, 0.84),
        DatasetSpec("D8", "xcbl", "cidx", "c", 127, 0.82),
        DatasetSpec("D9", "xcbl", "opentrans", "c", 619, 0.91),
        DatasetSpec("D10", "opentrans", "xcbl", "c", 619, 0.91),
    )
}

#: Dataset ids in their Table II order.
DATASET_IDS: tuple[str, ...] = tuple(DATASET_SPECS)


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: schemas plus the matcher-produced schema matching."""

    spec: DatasetSpec
    source_schema: Schema
    target_schema: Schema
    matching: SchemaMatching

    @property
    def dataset_id(self) -> str:
        """The dataset id (``"D1"`` … ``"D10"``)."""
        return self.spec.dataset_id

    def describe(self) -> dict:
        """Table II row for this dataset: sizes, option, capacity."""
        return {
            "id": self.spec.dataset_id,
            "S": self.source_schema.name,
            "|S|": len(self.source_schema),
            "T": self.target_schema.name,
            "|T|": len(self.target_schema),
            "opt": self.spec.option,
            "capacity": self.matching.capacity,
            "paper_capacity": self.spec.paper_capacity,
            "paper_o_ratio": self.spec.paper_o_ratio,
        }


def _matcher_for_option(option: str, seed: int | None) -> SchemaMatcher:
    strategy = "fragment" if option == "f" else "context"
    return SchemaMatcher(MatcherConfig(strategy=strategy, seed=seed))


def load_dataset(dataset_id: str, seed: int | None = None) -> Dataset:
    """Build (or fetch from cache) the schema matching for ``dataset_id``.

    Raises
    ------
    DatasetError
        If the dataset id is unknown.
    """
    key = dataset_id.strip().upper()
    if key not in DATASET_SPECS:
        raise DatasetError(
            f"unknown dataset {dataset_id!r}; expected one of {', '.join(DATASET_IDS)}"
        )
    return _load_dataset_cached(key, seed)


@lru_cache(maxsize=64)
def _load_dataset_cached(key: str, seed: int | None) -> Dataset:
    spec = DATASET_SPECS[key]
    source_schema = load_corpus_schema(spec.source, seed=seed)
    target_schema = load_corpus_schema(spec.target, seed=seed)
    matcher = _matcher_for_option(spec.option, seed)
    matching = matcher.match(source_schema, target_schema, name=key)
    return Dataset(
        spec=spec,
        source_schema=source_schema,
        target_schema=target_schema,
        matching=matching,
    )


def standard_datasets(seed: int | None = None) -> list[Dataset]:
    """Load all ten datasets in Table II order."""
    return [load_dataset(dataset_id, seed=seed) for dataset_id in DATASET_IDS]


def build_mapping_set(
    dataset_id: str,
    num_mappings: int = 100,
    seed: int | None = None,
    method: str = GenerationMethod.PARTITION.value,
) -> MappingSet:
    """Generate (and cache) the top-``num_mappings`` possible mappings of a dataset.

    The paper's default mapping-set size is ``|M| = 100``.  Arguments are
    normalised before the cache lookup, so every caller convention (engine
    sessions, benchmarks, tests) shares one cache entry per configuration.
    """
    key = dataset_id.strip().upper()
    return _build_mapping_set_cached(key, num_mappings, seed, GenerationMethod(method).value)


@lru_cache(maxsize=64)
def _build_mapping_set_cached(
    key: str, num_mappings: int, seed: int | None, method: str
) -> MappingSet:
    dataset = load_dataset(key, seed=seed)
    return generate_top_h_mappings(dataset.matching, num_mappings, method=method)


def load_source_document(
    dataset_id: str = "D7", seed: int | None = None, target_nodes: int | None = None
) -> XMLDocument:
    """Generate (and cache) the source document for a dataset's source schema.

    For D7 (the paper's query dataset) the document mirrors ``Order.xml``
    with roughly 3473 nodes; other datasets get a single-pass instantiation
    of their source schema unless ``target_nodes`` is given.  As with
    :func:`build_mapping_set`, arguments are normalised before the cache
    lookup.
    """
    return _load_source_document_cached(dataset_id.strip().upper(), seed, target_nodes)


@lru_cache(maxsize=8)
def _load_source_document_cached(
    key: str, seed: int | None, target_nodes: int | None
) -> XMLDocument:
    dataset = load_dataset(key, seed=seed)
    if dataset.spec.source == "xcbl" and target_nodes is None:
        return generate_order_document(seed=seed)
    return generate_document(dataset.source_schema, target_nodes=target_nodes, seed=seed)
