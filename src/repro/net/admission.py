"""Bounded admission control: in-flight cap, short wait queue, typed shed.

The server's overload policy in one component: at most ``max_inflight``
requests execute at once, at most ``max_queue`` more may wait, and anything
beyond that is *shed immediately* with a typed
:class:`~repro.api.errors.OverloadedError` carrying a retry hint.  The
alternative — an unbounded queue — converts overload into unbounded latency
and eventual timeouts, which is strictly worse for every caller; a bounded
queue keeps the latency of admitted requests predictable and gives shed
callers an honest, machine-readable signal.

The controller is a single-event-loop object (no locks): all state changes
happen on the loop that runs the server.  Draining flips one flag, fails the
queued waiters with :class:`~repro.api.errors.ShuttingDownError`, and waits
for in-flight work to finish — the server's graceful-stop path.
"""

from __future__ import annotations

import asyncio
from collections import deque
from contextlib import asynccontextmanager
from typing import Deque, Optional

from repro.api.errors import OverloadedError, ShuttingDownError

__all__ = ["AdmissionController"]


class AdmissionController:
    """FIFO admission with a hard in-flight cap and a bounded wait queue.

    Parameters
    ----------
    max_inflight:
        Requests allowed to execute concurrently.
    max_queue:
        Requests allowed to wait for a slot; arrivals beyond this are shed.
    retry_after:
        Backoff hint (seconds) attached to shed responses.
    """

    def __init__(
        self, max_inflight: int, max_queue: int, *, retry_after: float = 0.1
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be at least 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be non-negative, got {max_queue}")
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._retry_after = retry_after
        self._inflight = 0
        self._waiters: Deque["asyncio.Future[None]"] = deque()
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._peak_inflight = 0
        self._peak_queued = 0

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    @property
    def max_inflight(self) -> int:
        """Current concurrent-execution cap."""
        return self._max_inflight

    @property
    def max_queue(self) -> int:
        """Current wait-queue cap."""
        return self._max_queue

    @property
    def inflight(self) -> int:
        """Requests currently executing."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._waiters)

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun."""
        return self._draining

    async def acquire(self) -> None:
        """Take an execution slot, waiting in FIFO order if one is queued.

        Raises
        ------
        ShuttingDownError
            When the controller is draining.
        OverloadedError
            When both the in-flight cap and the wait queue are full — the
            typed shed that replaces queueing without bound.
        """
        if self._draining:
            raise ShuttingDownError(
                "the server is draining and not accepting new requests",
                retry_after=self._retry_after,
            )
        if self._inflight < self._max_inflight and not self._waiters:
            self._admit()
            return
        if len(self._waiters) >= self._max_queue:
            self._shed += 1
            raise OverloadedError(
                f"server at capacity ({self._inflight} in flight, "
                f"{len(self._waiters)} queued); retry after "
                f"{self._retry_after:g}s",
                retry_after=self._retry_after,
            )
        waiter: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self._peak_queued = max(self._peak_queued, len(self._waiters))
        try:
            await waiter
        except asyncio.CancelledError:
            # The connection died while queued.  If the slot was already
            # granted, hand it to the next waiter instead of leaking it.
            if waiter.done() and not waiter.cancelled():
                self._release_slot()
            else:
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            raise

    def _admit(self) -> None:
        self._inflight += 1
        self._admitted += 1
        self._peak_inflight = max(self._peak_inflight, self._inflight)
        self._idle.clear()

    def release(self) -> None:
        """Return a slot; the oldest queued waiter (if any) is admitted."""
        self._completed += 1
        self._release_slot()

    def _release_slot(self) -> None:
        self._inflight -= 1
        self._wake_waiters()
        if self._inflight == 0 and not self._waiters:
            self._idle.set()

    def _wake_waiters(self) -> None:
        while self._waiters and self._inflight < self._max_inflight:
            waiter = self._waiters.popleft()
            if waiter.done():
                continue  # cancelled while queued
            self._admit()
            waiter.set_result(None)

    @asynccontextmanager
    async def slot(self):
        """``async with controller.slot():`` — acquire and always release."""
        await self.acquire()
        try:
            yield self
        finally:
            self.release()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def reconfigure(
        self,
        *,
        max_inflight: Optional[int] = None,
        max_queue: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        """Adjust the caps live, under load.

        Raising ``max_inflight`` admits queued waiters immediately; lowering
        it never interrupts executing requests — the in-flight count simply
        drains down to the new cap before further admissions.  Lowering
        ``max_queue`` sheds nothing retroactively; it only tightens future
        arrivals.
        """
        if max_inflight is not None:
            if max_inflight < 1:
                raise ValueError(
                    f"max_inflight must be at least 1, got {max_inflight}"
                )
            self._max_inflight = max_inflight
        if max_queue is not None:
            if max_queue < 0:
                raise ValueError(f"max_queue must be non-negative, got {max_queue}")
            self._max_queue = max_queue
        if retry_after is not None:
            self._retry_after = retry_after
        self._wake_waiters()

    async def drain(self) -> None:
        """Refuse new work, fail queued waiters, wait for in-flight work.

        Queued requests receive :class:`~repro.api.errors.ShuttingDownError`
        (they never started executing, so refusing them is safe); requests
        already in flight run to completion.  Returns when the controller is
        idle.  Idempotent.
        """
        self._draining = True
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_exception(
                    ShuttingDownError(
                        "the server is draining and not accepting new requests",
                        retry_after=self._retry_after,
                    )
                )
        if self._inflight == 0:
            self._idle.set()
        await self._idle.wait()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Admission counters for the server's ``stats`` operation."""
        return {
            "max_inflight": self._max_inflight,
            "max_queue": self._max_queue,
            "inflight": self._inflight,
            "queued": len(self._waiters),
            "admitted": self._admitted,
            "completed": self._completed,
            "shed": self._shed,
            "peak_inflight": self._peak_inflight,
            "peak_queued": self._peak_queued,
            "draining": self._draining,
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(max_inflight={self._max_inflight}, "
            f"max_queue={self._max_queue}, inflight={self._inflight}, "
            f"queued={len(self._waiters)})"
        )
