"""The synchronous typed client: ``repro.connect()`` and friends.

:class:`ReproClient` speaks the binary framing over one blocking TCP socket
and exposes the engine's verbs with the engine's shapes: ``query`` returns a
:class:`~repro.api.serialize.QueryResult`, ``apply_delta`` a reconstructed
:class:`~repro.engine.delta.DeltaReport`, ``explain`` an
:class:`~repro.engine.plans.ExplainReport`.  Server failures re-raise as the
same typed exceptions in-process callers see
(:func:`repro.api.errors.error_from_wire`), so error handling is written
once and works on both sides of the wire — including admission shed, which
surfaces as :class:`~repro.api.errors.OverloadedError` with the server's
``retry_after`` hint attached.

The client is deliberately synchronous and single-connection: the server
owns the concurrency (admission control, thread pool); callers wanting
parallel load open several clients, one per thread.
"""

from __future__ import annotations

import socket
from typing import Iterator, Optional, Union

from repro.api.errors import ProtocolError
from repro.api.messages import (
    BatchRequest,
    CalibrateRequest,
    DeltaBatchRequest,
    DeltaRequest,
    ErrorResponse,
    ExplainRequest,
    PingRequest,
    QueryRequest,
    Request,
    Response,
    StatsRequest,
    SubscribeRequest,
    decode_response,
    encode_message,
)
from repro.api.serialize import (
    QueryAnswer,
    QueryResult,
    SubscriptionEvent,
    delta_batch_report_from_json,
    delta_report_from_json,
    explain_from_json,
    result_from_json,
    subscription_update_from_json,
)
from repro.net import framing

__all__ = ["ReproClient", "connect"]


class ReproClient:
    """A blocking client for one server connection (binary protocol).

    Use :func:`connect` (also exported as ``repro.connect``) to construct
    one; the client is a context manager and must be closed when done.
    """

    def __init__(
        self, host: str, port: int, *, timeout: Optional[float] = 30.0
    ) -> None:
        self._address = (host, port)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False

    # ------------------------------------------------------------------ #
    # Wire plumbing
    # ------------------------------------------------------------------ #
    def _send_frame(self, opcode: int, payload: bytes = b"") -> None:
        if self._closed:
            raise ProtocolError("the client connection has been closed")
        self._sock.sendall(framing.encode_frame(opcode, payload))

    def _read_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError(
                    f"server closed the connection {count - remaining} bytes "
                    f"into a {count}-byte read"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> tuple[int, bytes]:
        header = self._read_exact(framing.HEADER_SIZE)
        opcode, length = framing.decode_header(header)
        payload = self._read_exact(length) if length else b""
        return opcode, payload

    def _round_trip(self, request: Request) -> Response:
        """Send one request, read one response, raise typed errors."""
        self._send_frame(framing.OP_REQUEST, encode_message(request))
        opcode, payload = self._read_frame()
        if opcode not in (framing.OP_RESPONSE, framing.OP_ERROR):
            raise ProtocolError(f"unexpected reply frame opcode {opcode}")
        response = decode_response(payload)
        if isinstance(response, ErrorResponse):
            raise response.to_error()
        return response

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    def query(
        self,
        query: str,
        *,
        k: Optional[int] = None,
        plan: Optional[str] = None,
        use_cache: bool = True,
    ) -> QueryResult:
        """Evaluate one query remotely; returns the typed result view."""
        response = self._round_trip(
            QueryRequest(query=query, k=k, plan=plan, use_cache=use_cache)
        )
        return result_from_json(response.result, query=response.query)

    def query_batch(
        self,
        queries: "list[str] | tuple[str, ...]",
        *,
        k: Optional[int] = None,
        plan: Optional[str] = None,
        use_cache: bool = True,
    ) -> list[QueryResult]:
        """Evaluate a batch remotely (shared prefix work server-side)."""
        response = self._round_trip(
            BatchRequest(
                queries=tuple(queries), k=k, plan=plan, use_cache=use_cache
            )
        )
        return [
            result_from_json(payload, query=query)
            for query, payload in zip(response.queries, response.results)
        ]

    def stream_top_k(
        self, query: str, *, k: Optional[int] = None, plan: Optional[str] = None
    ) -> Iterator[QueryAnswer]:
        """Iterate a query's answers as the server streams them.

        Answers arrive one frame at a time in canonical order; the generator
        must be exhausted (or the client closed) before issuing the next
        request on this connection.
        """
        self._send_frame(
            framing.OP_REQUEST,
            encode_message(QueryRequest(query=query, k=k, plan=plan, stream=True)),
        )
        while True:
            opcode, payload = self._read_frame()
            if opcode == framing.OP_STREAM_ITEM:
                import json

                yield QueryAnswer.from_json(json.loads(payload.decode("utf-8")))
            elif opcode == framing.OP_STREAM_END:
                return
            elif opcode == framing.OP_ERROR:
                response = decode_response(payload)
                assert isinstance(response, ErrorResponse)
                raise response.to_error()
            else:
                raise ProtocolError(f"unexpected stream frame opcode {opcode}")

    def apply_delta(self, delta: Union["object", dict]):
        """Apply a mapping delta; returns the reconstructed
        :class:`~repro.engine.delta.DeltaReport`.

        Accepts a :class:`~repro.engine.delta.MappingDelta` or its canonical
        payload dict."""
        payload = delta if isinstance(delta, dict) else delta.to_payload()
        response = self._round_trip(DeltaRequest(delta=payload))
        return delta_report_from_json(response.report)

    def apply_delta_batch(self, deltas):
        """Apply a coalesced delta batch; returns the reconstructed
        :class:`~repro.engine.streaming.DeltaBatchReport`.

        Accepts a :class:`~repro.engine.streaming.DeltaBatch` or any iterable
        of :class:`~repro.engine.delta.MappingDelta` objects / canonical
        payload dicts; the server applies them in order as one commit."""
        payloads = tuple(
            item if isinstance(item, dict) else item.to_payload()
            for item in deltas
        )
        response = self._round_trip(DeltaBatchRequest(deltas=payloads))
        return delta_batch_report_from_json(response.report)

    def subscribe(
        self, query: str, *, k: Optional[int] = None
    ) -> Iterator[SubscriptionEvent]:
        """Register a standing query and iterate its update stream.

        The first yielded :class:`~repro.api.serialize.SubscriptionEvent` is
        the ``initial`` baseline; every later event is an incremental diff
        whose :meth:`~repro.api.serialize.SubscriptionEvent.apply` folds it
        into the caller's local rows.  Reading blocks until the server emits
        the next update (subject to the connection timeout), and the
        connection is dedicated to the stream while the generator is live:
        ``close()`` the generator to cancel the subscription — it tells the
        server to end the stream and resynchronises the connection, so the
        client can issue further requests afterwards.
        """
        self._send_frame(
            framing.OP_REQUEST, encode_message(SubscribeRequest(query=query, k=k))
        )
        try:
            while True:
                opcode, payload = self._read_frame()
                if opcode == framing.OP_STREAM_ITEM:
                    import json

                    yield subscription_update_from_json(
                        json.loads(payload.decode("utf-8"))
                    )
                elif opcode == framing.OP_STREAM_END:
                    return
                elif opcode == framing.OP_ERROR:
                    response = decode_response(payload)
                    assert isinstance(response, ErrorResponse)
                    raise response.to_error()
                else:
                    raise ProtocolError(
                        f"unexpected subscription frame opcode {opcode}"
                    )
        except GeneratorExit:
            # The caller closed the generator: cancel server-side and discard
            # in-flight updates until the server acknowledges the end of the
            # stream, leaving the connection aligned on a frame boundary.
            if not self._closed:
                self._send_frame(framing.OP_STREAM_END)
                while True:
                    opcode, payload = self._read_frame()
                    if opcode == framing.OP_STREAM_END:
                        break
                    if opcode == framing.OP_ERROR:
                        response = decode_response(payload)
                        assert isinstance(response, ErrorResponse)
                        raise response.to_error()
                    if opcode != framing.OP_STREAM_ITEM:
                        raise ProtocolError(
                            f"unexpected subscription frame opcode {opcode}"
                        )
            raise

    def explain(
        self,
        query: str,
        *,
        k: Optional[int] = None,
        plan: Optional[str] = None,
        analyze: bool = False,
    ):
        """Explain a query; returns the reconstructed
        :class:`~repro.engine.plans.ExplainReport`."""
        response = self._round_trip(
            ExplainRequest(query=query, k=k, plan=plan, analyze=analyze)
        )
        return explain_from_json(response.report)

    def calibrate(
        self,
        query: str,
        *,
        k: Optional[int] = None,
        plans: Optional["list[str] | tuple[str, ...]"] = None,
        shard_counts: "list[int] | tuple[int, ...]" = (),
    ) -> dict:
        """Warm the server's cost model; returns ``{strategy: latency_ms}``."""
        response = self._round_trip(
            CalibrateRequest(
                query=query,
                k=k,
                plans=tuple(plans) if plans is not None else None,
                shard_counts=tuple(shard_counts),
            )
        )
        return dict(response.timings)

    def stats(self) -> dict:
        """Service and server statistics (admission counters under ``server``)."""
        response = self._round_trip(StatsRequest())
        return dict(response.stats)

    def ping(self) -> None:
        """Liveness check via the framing-level PING (bypasses admission)."""
        self._send_frame(framing.OP_PING)
        opcode, _ = self._read_frame()
        if opcode != framing.OP_PONG:
            raise ProtocolError(f"expected PONG, got frame opcode {opcode}")

    def health(self) -> bool:
        """``True`` when the server answers the API-level ping."""
        self._round_trip(PingRequest())
        return True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ReproClient({self._address[0]}:{self._address[1]}, {state})"


def connect(
    host: str = "127.0.0.1", port: int = 0, *, timeout: Optional[float] = 30.0
) -> ReproClient:
    """Open a typed client connection to a running server.

    >>> # with repro.connect("127.0.0.1", server.port) as client:
    >>> #     result = client.query("Q1", k=5)
    """
    return ReproClient(host, port, timeout=timeout)
