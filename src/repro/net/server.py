"""The asyncio network front-end: one port, two transports, typed everything.

:class:`ReproServer` serves a session (:class:`~repro.engine.Dataspace`), a
sharded corpus, or an existing :class:`~repro.service.QueryService` over TCP.
Each accepted connection is sniffed by its first four bytes: ``b"RPRO"``
selects the length-prefixed binary framing (:mod:`repro.net.framing`),
anything that reads as an ASCII HTTP method selects a minimal HTTP/1.1
handler.  Both transports decode into the same typed requests, dispatch
through the same :class:`~repro.api.handler.ApiHandler`, and encode the same
canonical responses — so a server response is byte-identical to in-process
execution by construction, a property the differential suite pins.

Request execution happens on a thread pool (``run_in_executor``) against the
thread-safe engine; the event loop only ever parses, queues and writes.
Overload never manifests as a hang: admission control
(:class:`~repro.net.admission.AdmissionController`) bounds in-flight and
queued work and sheds the rest with typed
:class:`~repro.api.errors.OverloadedError` responses, and a per-request
deadline turns stuck evaluations into typed
:class:`~repro.api.errors.RequestTimeoutError` responses.  ``stop()`` drains:
in-flight requests finish, queued and new ones are refused with
:class:`~repro.api.errors.ShuttingDownError`.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional, Union

from repro.api.errors import (
    BadRequestError,
    OverloadedError,
    PayloadTooLargeError,
    ProtocolError,
    RequestTimeoutError,
    ShuttingDownError,
)
from repro.api.handler import ApiHandler, _coerce_service
from repro.api.messages import (
    PROTOCOL_VERSION,
    ErrorResponse,
    PingRequest,
    QueryRequest,
    Request,
    Response,
    StatsRequest,
    SubscribeRequest,
    decode_request,
    encode_message,
)
from repro.api.serialize import canonical_json, subscription_update_to_json
from repro.exceptions import ReproError
from repro.net import framing
from repro.net.admission import AdmissionController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus import ShardedCorpus
    from repro.engine.dataspace import Dataspace
    from repro.service import QueryService

__all__ = ["ReproServer"]

#: HTTP status for each error code; anything unlisted is 400 for typed engine
#: errors and 500 for foreign exceptions.
_HTTP_STATUS = {
    "payload-too-large": 413,
    "overloaded": 429,
    "shutting-down": 503,
    "timeout": 504,
    "internal": 500,
}

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on an HTTP request head (request line + headers).
_MAX_HTTP_HEAD = 16 * 1024


def _http_status(error: BaseException) -> int:
    if isinstance(error, ReproError):
        return _HTTP_STATUS.get(error.code, 400)
    return 500


def _swallow(future) -> None:
    """Consume the exception of an abandoned (timed-out) executor future."""
    if not future.cancelled():
        future.exception()


def _stream_frames(response: Response) -> list[tuple[int, bytes]]:
    """Split a query response into streaming frames (runs on a worker thread).

    Item frames carry the canonical per-answer payloads in the result's
    canonical order; the end frame carries the response envelope *minus* the
    answers, so a streamed result reassembles into exactly the bytes of the
    unstreamed response.
    """
    envelope = response.to_json()
    body = dict(envelope["body"])
    result = dict(body.get("result", {}))
    answers = result.pop("answers", [])
    frames = [
        (framing.OP_STREAM_ITEM, canonical_json(answer)) for answer in answers
    ]
    body["result"] = result
    envelope["body"] = body
    frames.append((framing.OP_STREAM_END, canonical_json(envelope)))
    return frames


class ReproServer:
    """Serve an engine target over TCP with admission control.

    Parameters
    ----------
    target:
        What to serve: a :class:`~repro.engine.Dataspace`, a homogeneous
        :class:`~repro.corpus.ShardedCorpus`, or a ready-made
        :class:`~repro.service.QueryService` (shared services are not closed
        on :meth:`stop`; owned ones are).
    host, port:
        Bind address.  ``port=0`` (default) picks a free port; read the
        actual one from :attr:`port` after :meth:`start`.
    max_inflight, max_queue:
        Admission caps — concurrent executions and queued waiters; arrivals
        beyond both are shed with :class:`~repro.api.errors.OverloadedError`.
        ``max_inflight`` defaults to the service's worker-pool size.
    request_timeout:
        Per-request deadline in seconds (``None`` disables it).
    max_payload:
        Cap on one frame or HTTP body, in bytes.
    retry_after:
        Backoff hint attached to shed responses.
    use_cache:
        Cache policy of an internally created service (ignored when
        ``target`` already is a service).
    """

    def __init__(
        self,
        target: Union["Dataspace", "ShardedCorpus", "QueryService"],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: Optional[int] = None,
        max_queue: int = 32,
        request_timeout: Optional[float] = 30.0,
        max_payload: int = framing.DEFAULT_MAX_PAYLOAD,
        retry_after: float = 0.1,
        use_cache: bool = True,
    ) -> None:
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive, got {request_timeout}")
        if max_payload < framing.HEADER_SIZE:
            raise ValueError(f"max_payload too small: {max_payload}")
        self._service, self._owns_service = _coerce_service(target, use_cache=use_cache)
        self._handler = ApiHandler(self._service, extra_stats=self.server_stats)
        self._host = host
        self._requested_port = port
        if max_inflight is None:
            max_inflight = self._service.max_workers
        self._admission = AdmissionController(
            max_inflight, max_queue, retry_after=retry_after
        )
        self._request_timeout = request_timeout
        self._max_payload = max_payload
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: set[asyncio.Task] = set()
        self._connections_total = 0
        self._requests_binary = 0
        self._requests_http = 0
        self._stopping = False
        self._busy = 0
        self._quiet: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> "QueryService":
        """The query service requests execute on."""
        return self._service

    @property
    def host(self) -> str:
        """Bound host (valid after :meth:`start`)."""
        return self._host

    @property
    def port(self) -> int:
        """Bound port (valid after :meth:`start`; 0 before)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is listening on."""
        return (self._host, self.port)

    async def start(self) -> "ReproServer":
        """Bind and begin accepting connections; returns ``self``."""
        if self._server is not None:
            raise RuntimeError("the server has already been started")
        self._loop = asyncio.get_running_loop()
        self._quiet = asyncio.Event()
        self._quiet.set()
        self._executor = ThreadPoolExecutor(
            max_workers=self._service.max_workers, thread_name_prefix="repro-net"
        )
        self._server = await asyncio.start_server(
            self._accept, self._host, self._requested_port
        )
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting, then drain (or abandon) in-flight work and close.

        With ``drain=True`` (default) requests already executing run to
        completion and their responses are written; queued and newly arriving
        requests are refused with typed
        :class:`~repro.api.errors.ShuttingDownError` responses.  With
        ``drain=False`` connections are torn down immediately.
        """
        if self._server is None:
            return
        self._stopping = True
        self._server.close()
        await self._server.wait_closed()
        if drain:
            await self._admission.drain()
            # Admission is idle; wait until every connection has also written
            # out the response of the request it was serving.
            if self._quiet is not None:
                await self._quiet.wait()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=drain)
        if self._owns_service:
            self._service.close(wait=drain)
        self._server = None

    def reconfigure(
        self,
        *,
        max_inflight: Optional[int] = None,
        max_queue: Optional[int] = None,
        request_timeout: Optional[float] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        """Adjust admission caps and the request deadline live, under load.

        Executing requests are never interrupted; new admissions follow the
        new caps immediately (queued waiters are admitted at once when the
        in-flight cap was raised).
        """
        if request_timeout is not None:
            if request_timeout <= 0:
                raise ValueError(
                    f"request_timeout must be positive, got {request_timeout}"
                )
            self._request_timeout = request_timeout
        self._admission.reconfigure(
            max_inflight=max_inflight, max_queue=max_queue, retry_after=retry_after
        )

    def server_stats(self) -> dict:
        """Admission and connection counters (the ``stats`` op's ``server`` key)."""
        stats = {
            "connections_open": len(self._connections),
            "connections_total": self._connections_total,
            "requests_binary": self._requests_binary,
            "requests_http": self._requests_http,
            "request_timeout": self._request_timeout,
            "max_payload": self._max_payload,
        }
        stats.update(self._admission.stats())
        return stats

    def serve(self, *, max_seconds: Optional[float] = None, on_start=None) -> None:
        """Run the server on a fresh event loop until interrupted (CLI path).

        ``on_start`` (a callable receiving the server) fires once the port is
        bound — the CLI uses it to print the address.  ``max_seconds`` bounds
        the serving time (then drains and returns); ``None`` serves until
        KeyboardInterrupt.
        """

        async def _run() -> None:
            await self.start()
            assert self._server is not None
            if on_start is not None:
                on_start(self)
            try:
                if max_seconds is None:
                    await self._server.serve_forever()
                else:
                    try:
                        await asyncio.wait_for(
                            self._server.serve_forever(), max_seconds
                        )
                    except asyncio.TimeoutError:
                        pass
            except asyncio.CancelledError:
                pass
            finally:
                await self.stop()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def _execute(self, request: Request, postprocess) -> object:
        """Admission, executor dispatch, deadline — shared by both transports.

        ``postprocess`` runs on the worker thread, straight after the handler:
        response *encoding* (the expensive part of cheap requests) happens off
        the event loop, which stays a pure byte router.  Returns whatever
        ``postprocess`` returns.
        """

        def job():
            return postprocess(self._handler.handle(request))

        if isinstance(request, (PingRequest, StatsRequest)):
            # Control-plane ops bypass admission: they must answer precisely
            # when the data plane is saturated.
            assert self._loop is not None and self._executor is not None
            return await self._loop.run_in_executor(self._executor, job)
        async with self._admission.slot():
            assert self._loop is not None and self._executor is not None
            work = self._loop.run_in_executor(self._executor, job)
            if self._request_timeout is None:
                return await work
            try:
                return await asyncio.wait_for(
                    asyncio.shield(work), self._request_timeout
                )
            except asyncio.TimeoutError:
                # The evaluation cannot be interrupted mid-kernel; the worker
                # finishes in the background and its result is discarded.
                work.add_done_callback(_swallow)
                raise RequestTimeoutError(
                    f"request exceeded the {self._request_timeout:g}s deadline"
                ) from None

    def _busy_enter(self) -> None:
        self._busy += 1
        if self._quiet is not None:
            self._quiet.clear()

    def _busy_exit(self) -> None:
        self._busy -= 1
        if self._busy == 0 and self._quiet is not None:
            self._quiet.set()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        self._connections_total += 1
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                head = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if head == framing.MAGIC:
                await self._serve_binary(reader, writer, head)
            else:
                await self._serve_http(reader, writer, head)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    # ------------------------------------------------------------------ #
    # Binary transport
    # ------------------------------------------------------------------ #
    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first_bytes: bytes,
    ) -> None:
        """Per-connection session loop: frames in, frames out, in order."""
        carry = first_bytes
        while True:
            try:
                frame = await framing.read_frame(
                    reader, max_payload=self._max_payload, first_bytes=carry
                )
            except ProtocolError as error:
                # The stream position is untrustworthy after a framing
                # violation: report once, then close.
                await self._write_frame(
                    writer,
                    framing.OP_ERROR,
                    encode_message(ErrorResponse.from_exception(error)),
                )
                return
            carry = b""
            if frame is None:
                return
            opcode, payload = frame
            if opcode == framing.OP_PING:
                await self._write_frame(writer, framing.OP_PONG)
                continue
            if opcode != framing.OP_REQUEST:
                await self._write_frame(
                    writer,
                    framing.OP_ERROR,
                    encode_message(
                        ErrorResponse.from_exception(
                            ProtocolError(
                                f"clients may only send REQUEST or PING frames, "
                                f"got opcode {opcode}"
                            )
                        )
                    ),
                )
                return
            self._requests_binary += 1
            try:
                request = decode_request(payload)
            except Exception as error:
                await self._write_frame(
                    writer,
                    framing.OP_ERROR,
                    encode_message(ErrorResponse.from_exception(error)),
                )
                if isinstance(error, ProtocolError):
                    return
                continue
            if isinstance(request, SubscribeRequest):
                # Subscription streams are long-lived and idle between
                # updates; they deliberately stay outside the busy counter
                # (which tracks request/response work for drain) so an open
                # subscription cannot stall ``stop()``.
                if await self._serve_subscription(reader, writer, request):
                    return
                continue
            self._busy_enter()
            try:
                close = await self._answer_binary(writer, request)
            finally:
                self._busy_exit()
            if close:
                return

    async def _answer_binary(
        self, writer: asyncio.StreamWriter, request: Request
    ) -> bool:
        """Execute and answer one decoded binary request.

        Returns ``True`` when the connection must close (protocol violation)."""
        try:
            if isinstance(request, QueryRequest) and request.stream:
                frames = await self._execute(request, _stream_frames)
            else:
                frames = await self._execute(
                    request,
                    lambda response: [
                        (framing.OP_RESPONSE, encode_message(response))
                    ],
                )
        except Exception as error:
            await self._write_frame(
                writer,
                framing.OP_ERROR,
                encode_message(ErrorResponse.from_exception(error)),
            )
            return isinstance(error, ProtocolError)
        for opcode, data in frames:
            await self._write_frame(writer, opcode, data)
        return False

    async def _serve_subscription(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: SubscribeRequest,
    ) -> bool:
        """Serve one standing-query stream on this connection.

        Registers the subscription on the service (the baseline execution
        runs on the worker pool), then streams every notification — the
        initial snapshot included — as one ``OP_STREAM_ITEM`` frame carrying
        the canonical :func:`~repro.api.serialize.subscription_update_to_json`
        payload.  The engine's commit path delivers updates on writer
        threads; the callback hops them onto the event loop through a queue,
        so the loop stays a pure byte router.  The client ends the stream by
        sending ``OP_STREAM_END``; the server cancels the subscription,
        acknowledges with ``OP_STREAM_END``, and the connection returns to
        the normal request loop.  Returns ``True`` when the connection must
        close instead.
        """
        assert self._loop is not None and self._executor is not None
        loop = self._loop
        queue: asyncio.Queue = asyncio.Queue()

        def deliver(update) -> None:
            payload = canonical_json(subscription_update_to_json(update))
            loop.call_soon_threadsafe(queue.put_nowait, payload)

        def register():
            return self._service.subscribe(
                request.query, k=request.k, callback=deliver
            )

        try:
            handle = await loop.run_in_executor(self._executor, register)
        except Exception as error:
            await self._write_frame(
                writer,
                framing.OP_ERROR,
                encode_message(ErrorResponse.from_exception(error)),
            )
            return isinstance(error, ProtocolError)
        frame_task = asyncio.ensure_future(
            framing.read_frame(reader, max_payload=self._max_payload)
        )
        queue_task = asyncio.ensure_future(queue.get())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {frame_task, queue_task}, return_when=asyncio.FIRST_COMPLETED
                )
                if queue_task in done:
                    await self._write_frame(
                        writer, framing.OP_STREAM_ITEM, queue_task.result()
                    )
                    queue_task = asyncio.ensure_future(queue.get())
                if frame_task not in done:
                    continue
                try:
                    frame = frame_task.result()
                except ProtocolError as error:
                    await self._write_frame(
                        writer,
                        framing.OP_ERROR,
                        encode_message(ErrorResponse.from_exception(error)),
                    )
                    return True
                if frame is None:
                    return True
                opcode, _ = frame
                if opcode == framing.OP_PING:
                    await self._write_frame(writer, framing.OP_PONG)
                    frame_task = asyncio.ensure_future(
                        framing.read_frame(reader, max_payload=self._max_payload)
                    )
                    continue
                if opcode != framing.OP_STREAM_END:
                    await self._write_frame(
                        writer,
                        framing.OP_ERROR,
                        encode_message(
                            ErrorResponse.from_exception(
                                ProtocolError(
                                    f"subscribed clients may only send "
                                    f"STREAM_END or PING frames, got opcode "
                                    f"{opcode}"
                                )
                            )
                        ),
                    )
                    return True
                await self._write_frame(writer, framing.OP_STREAM_END)
                return False
        finally:
            handle.cancel()
            for task in (frame_task, queue_task):
                if not task.done():
                    task.cancel()

    async def _write_frame(
        self, writer: asyncio.StreamWriter, opcode: int, payload: bytes = b""
    ) -> None:
        writer.write(framing.encode_frame(opcode, payload))
        await writer.drain()

    # ------------------------------------------------------------------ #
    # HTTP transport
    # ------------------------------------------------------------------ #
    async def _serve_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first_bytes: bytes,
    ) -> None:
        """Minimal HTTP/1.1: POST /v1/<op>, GET /v1/stats + /v1/health."""
        carry = first_bytes
        while True:
            try:
                head = await self._read_http_head(reader, carry)
            except (ProtocolError, PayloadTooLargeError) as error:
                await self._write_http(
                    writer,
                    _http_status(error),
                    encode_message(ErrorResponse.from_exception(error)),
                    keep_alive=False,
                )
                return
            carry = b""
            if head is None:
                return
            headers: dict[str, str] = {}
            recoverable = True
            self._busy_enter()
            try:
                retry_after: Optional[float] = None
                try:
                    method, path, headers = self._parse_http_head(head)
                    body = await self._read_http_body(reader, headers)
                    payload = await self._dispatch_http(method, path, body)
                    status = 200
                except Exception as error:
                    response = ErrorResponse.from_exception(error)
                    payload = encode_message(response)
                    retry_after = response.error.get("retry_after")
                    status = _http_status(error)
                    # After a framing-level violation (malformed head, unread
                    # oversized body) the stream position is untrustworthy.
                    recoverable = not isinstance(error, ProtocolError)
                keep_alive = (
                    recoverable
                    and status < 500
                    and not self._stopping
                    and headers.get("connection", "").lower() != "close"
                )
                await self._write_http(
                    writer,
                    status,
                    payload,
                    keep_alive=keep_alive,
                    retry_after=retry_after,
                )
            finally:
                self._busy_exit()
            if not keep_alive:
                return

    async def _read_http_head(
        self, reader: asyncio.StreamReader, carry: bytes
    ) -> Optional[bytes]:
        """The request head (no trailing blank line), or ``None`` on clean EOF.

        ``carry`` holds the already-peeked discriminator bytes; the rest is
        read with ``readuntil`` so body bytes are never consumed early.
        """
        try:
            rest = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and not carry:
                return None
            raise ProtocolError("connection closed mid HTTP request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise PayloadTooLargeError(
                f"HTTP request head exceeds {_MAX_HTTP_HEAD} bytes"
            ) from exc
        head = carry + rest
        if len(head) > _MAX_HTTP_HEAD:
            raise PayloadTooLargeError(
                f"HTTP request head exceeds {_MAX_HTTP_HEAD} bytes"
            )
        return head[: -len(b"\r\n\r\n")]

    def _parse_http_head(self, head: bytes) -> tuple[str, str, dict]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise ProtocolError("undecodable HTTP request head") from exc
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(f"malformed HTTP request line: {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ProtocolError(f"malformed HTTP header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_http_body(
        self, reader: asyncio.StreamReader, headers: dict
    ) -> bytes:
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise ProtocolError(f"bad Content-Length: {raw_length!r}") from exc
        if length < 0:
            raise ProtocolError(f"bad Content-Length: {raw_length!r}")
        if length > self._max_payload:
            raise PayloadTooLargeError(
                f"HTTP body of {length} bytes exceeds the "
                f"{self._max_payload}-byte cap"
            )
        if length == 0:
            return b""
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid HTTP body") from exc

    async def _dispatch_http(self, method: str, path: str, body: bytes) -> bytes:
        """Route one HTTP request; returns the pre-encoded response payload."""
        self._requests_http += 1
        if path == "/v1/health":
            if method != "GET":
                raise BadRequestError("health checks are GET requests")
            return await self._execute(PingRequest(), encode_message)
        if path == "/v1/stats" and method == "GET":
            return await self._execute(StatsRequest(), encode_message)
        if not path.startswith("/v1/"):
            raise BadRequestError(f"unknown path {path!r}; the API lives under /v1/")
        if method != "POST":
            raise BadRequestError(f"{path} expects POST, got {method}")
        op = path[len("/v1/") :]
        if body:
            try:
                fields = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
        else:
            fields = {}
        if not isinstance(fields, dict):
            raise BadRequestError("request body must be a JSON object")
        # HTTP callers send the bare body; the path names the operation.
        envelope = {"v": PROTOCOL_VERSION, "op": op, "body": fields}
        request = decode_request(canonical_json(envelope))
        return await self._execute(request, encode_message)

    async def _write_http(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        *,
        keep_alive: bool,
        retry_after: Optional[float] = None,
    ) -> None:
        reason = _HTTP_REASONS.get(status, "Error")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after is not None:
            lines.append(f"Retry-After: {retry_after:g}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Context management
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return f"ReproServer({self._host}:{self.port}, {state})"
