"""The network front-end: asyncio server, admission control, sync client.

Layered strictly on :mod:`repro.api` (which defines *what* travels) — this
package only decides *how*: length-prefixed binary frames and minimal
HTTP/1.1 on one port (:mod:`~repro.net.server`), bounded admission with
typed shed (:mod:`~repro.net.admission`), and a blocking typed client
(:mod:`~repro.net.client`, surfaced as :func:`repro.connect`).
"""

from repro.net.admission import AdmissionController
from repro.net.client import ReproClient, connect
from repro.net.server import ReproServer

__all__ = ["ReproServer", "ReproClient", "connect", "AdmissionController"]
