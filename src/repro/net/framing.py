"""Length-prefixed binary framing for the network protocol.

A frame is a fixed 12-byte header followed by ``length`` payload bytes::

    offset  size  field
    0       4     magic    b"RPRO"
    4       1     version  FRAMING_VERSION (1)
    5       1     opcode   one of the ``OP_*`` constants
    6       2     reserved (must be zero; room for flags)
    8       4     length   payload byte count, big-endian unsigned

The magic doubles as the protocol discriminator: the server peeks a
connection's first four bytes and routes ``b"RPRO"`` to this framing and
anything that looks like an ASCII HTTP method to the HTTP handler — one port,
two transports, same typed messages underneath.

Framing violations (bad magic, unknown version or opcode, nonzero reserved
bits, truncated header) raise :class:`~repro.api.errors.ProtocolError`;
oversized payloads raise :class:`~repro.api.errors.PayloadTooLargeError`.
After either, the stream position cannot be trusted and the connection must
be closed.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional

from repro.api.errors import PayloadTooLargeError, ProtocolError

__all__ = [
    "MAGIC",
    "FRAMING_VERSION",
    "HEADER",
    "HEADER_SIZE",
    "DEFAULT_MAX_PAYLOAD",
    "OP_REQUEST",
    "OP_RESPONSE",
    "OP_ERROR",
    "OP_STREAM_ITEM",
    "OP_STREAM_END",
    "OP_PING",
    "OP_PONG",
    "OPCODES",
    "encode_frame",
    "decode_header",
    "read_frame",
]

#: First four bytes of every frame; also the wire discriminator that routes a
#: connection to the binary protocol instead of HTTP.
MAGIC = b"RPRO"

#: Version byte of the framing layer (bumped only for header-layout changes;
#: envelope-level changes bump :data:`repro.api.messages.PROTOCOL_VERSION`).
FRAMING_VERSION = 1

#: Header layout: magic, version, opcode, reserved, payload length.
HEADER = struct.Struct(">4sBBHI")
HEADER_SIZE = HEADER.size

#: Default cap on a single frame's payload (8 MiB) — large enough for any
#: real batch response, small enough to bound per-connection memory.
DEFAULT_MAX_PAYLOAD = 8 * 1024 * 1024

OP_REQUEST = 1  #: client -> server: one encoded request envelope
OP_RESPONSE = 2  #: server -> client: one encoded response envelope
OP_ERROR = 3  #: server -> client: an encoded error-response envelope
OP_STREAM_ITEM = 4  #: server -> client: one streamed answer payload
OP_STREAM_END = 5  #: server -> client: end of a streamed result
OP_PING = 6  #: client -> server: liveness probe (empty payload)
OP_PONG = 7  #: server -> client: liveness acknowledgement (empty payload)

#: Every opcode the framing layer accepts.
OPCODES = frozenset(
    {
        OP_REQUEST,
        OP_RESPONSE,
        OP_ERROR,
        OP_STREAM_ITEM,
        OP_STREAM_END,
        OP_PING,
        OP_PONG,
    }
)


def encode_frame(opcode: int, payload: bytes = b"") -> bytes:
    """One complete frame: header plus payload.

    Raises :class:`~repro.api.errors.ProtocolError` on an unknown opcode —
    catching a programming error before it reaches the wire.
    """
    if opcode not in OPCODES:
        raise ProtocolError(f"unknown frame opcode {opcode}")
    return HEADER.pack(MAGIC, FRAMING_VERSION, opcode, 0, len(payload)) + payload


def decode_header(
    header: bytes, *, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> tuple[int, int]:
    """Validate a 12-byte header; returns ``(opcode, payload_length)``.

    Raises
    ------
    ProtocolError
        On a short header, bad magic, unsupported framing version, unknown
        opcode, or nonzero reserved bits.
    PayloadTooLargeError
        When the declared payload length exceeds ``max_payload``.
    """
    if len(header) != HEADER_SIZE:
        raise ProtocolError(
            f"truncated frame header: got {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, opcode, reserved, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}; expected {MAGIC!r}")
    if version != FRAMING_VERSION:
        raise ProtocolError(
            f"unsupported framing version {version}; this build speaks "
            f"v{FRAMING_VERSION}"
        )
    if opcode not in OPCODES:
        raise ProtocolError(f"unknown frame opcode {opcode}")
    if reserved != 0:
        raise ProtocolError(f"reserved header bits must be zero, got {reserved}")
    if length > max_payload:
        raise PayloadTooLargeError(
            f"frame payload of {length} bytes exceeds the {max_payload}-byte cap"
        )
    return opcode, length


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_payload: int = DEFAULT_MAX_PAYLOAD,
    first_bytes: bytes = b"",
) -> Optional[tuple[int, bytes]]:
    """Read one frame from ``reader``; ``None`` on a clean EOF between frames.

    ``first_bytes`` carries bytes the caller already consumed while peeking
    at the protocol discriminator.  EOF in the *middle* of a frame (header or
    payload) is a :class:`~repro.api.errors.ProtocolError` — the peer
    vanished mid-message, which is different from an orderly close.
    """
    header = bytes(first_bytes)
    if len(header) < HEADER_SIZE:
        try:
            header += await reader.readexactly(HEADER_SIZE - len(header))
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and not header:
                return None
            raise ProtocolError(
                "connection closed in the middle of a frame header"
            ) from exc
    opcode, length = decode_header(header, max_payload=max_payload)
    if length == 0:
        return opcode, b""
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)} bytes into a "
            f"{length}-byte frame payload"
        ) from exc
    return opcode, payload
