"""Command-line interface.

The CLI exposes the library's pipeline for quick, scriptable inspection::

    python -m repro schemas                      # list the corpus schemas
    python -m repro show-schema apertum          # print a schema tree
    python -m repro datasets                     # Table II summary
    python -m repro match D7                     # run the matcher, show correspondences
    python -m repro mappings D7 --h 20           # top-h possible mappings
    python -m repro blocktree D7 --tau 0.2       # block-tree statistics
    python -m repro query D7 Q7                  # evaluate one of the paper's queries
    python -m repro query D7 "Order/DeliverTo/Contact/EMail" --top-k 10

Every command writes plain text to stdout and returns a non-zero exit code on
invalid input, so the CLI composes well with shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.core.blocktree import BlockTreeConfig, build_block_tree
from repro.exceptions import ReproError
from repro.query.parser import parse_twig
from repro.query.ptq import evaluate_ptq_basic, evaluate_ptq_blocktree
from repro.query.topk import evaluate_topk_ptq
from repro.schema.corpus import SCHEMA_SIZES, available_schemas, load_corpus_schema
from repro.schema.parser import schema_to_text
from repro.workloads.datasets import (
    DATASET_IDS,
    build_mapping_set,
    load_dataset,
    load_source_document,
)
from repro.workloads.queries import QUERY_ALIASES, QUERY_STRINGS, load_query

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Managing uncertainty of XML schema matching (ICDE 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("schemas", help="list the synthetic corpus schemas")

    show_schema = subparsers.add_parser("show-schema", help="print a corpus schema tree")
    show_schema.add_argument("standard", help="schema name, e.g. apertum, xcbl, cidx")
    show_schema.add_argument("--max-lines", type=int, default=60,
                             help="truncate output after this many lines (default 60)")

    subparsers.add_parser("datasets", help="summarise the Table II datasets")

    match = subparsers.add_parser("match", help="run the matcher on a dataset")
    match.add_argument("dataset", help="dataset id, e.g. D7")
    match.add_argument("--limit", type=int, default=20, help="correspondences to print")

    mappings = subparsers.add_parser("mappings", help="generate top-h possible mappings")
    mappings.add_argument("dataset")
    mappings.add_argument("--h", type=int, default=20, dest="h", help="number of mappings")
    mappings.add_argument("--method", choices=("partition", "murty"), default="partition")

    blocktree = subparsers.add_parser("blocktree", help="build a block tree and show statistics")
    blocktree.add_argument("dataset")
    blocktree.add_argument("--num-mappings", type=int, default=100)
    blocktree.add_argument("--tau", type=float, default=0.2)

    query = subparsers.add_parser("query", help="evaluate a probabilistic twig query")
    query.add_argument("dataset")
    query.add_argument("query", help="a query id (Q1..Q10) or a twig pattern string")
    query.add_argument("--num-mappings", type=int, default=100)
    query.add_argument("--top-k", type=int, default=None)
    query.add_argument("--algorithm", choices=("block-tree", "basic"), default="block-tree")
    return parser


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_schemas(args, out) -> int:  # noqa: ARG001
    for name in available_schemas():
        out.write(f"{name:<12} {SCHEMA_SIZES[name]:>5} elements\n")
    return 0


def _cmd_show_schema(args, out) -> int:
    schema = load_corpus_schema(args.standard)
    lines = schema_to_text(schema).splitlines()
    for line in lines[: args.max_lines]:
        out.write(line + "\n")
    if len(lines) > args.max_lines:
        out.write(f"... ({len(lines) - args.max_lines} more elements)\n")
    return 0


def _cmd_datasets(args, out) -> int:  # noqa: ARG001
    out.write(f"{'id':<5} {'source':<10} {'|S|':>5} {'target':<10} {'|T|':>5} "
              f"{'opt':<4} {'capacity':>9}\n")
    for dataset_id in DATASET_IDS:
        row = load_dataset(dataset_id).describe()
        out.write(f"{row['id']:<5} {row['S']:<10} {row['|S|']:>5} {row['T']:<10} "
                  f"{row['|T|']:>5} {row['opt']:<4} {row['capacity']:>9}\n")
    return 0


def _cmd_match(args, out) -> int:
    dataset = load_dataset(args.dataset)
    matching = dataset.matching
    out.write(f"{args.dataset}: {matching.capacity} correspondences\n")
    ranked = sorted(matching, key=lambda c: -c.score)[: args.limit]
    for correspondence in ranked:
        source_path = dataset.source_schema.get(correspondence.source_id).path
        target_path = dataset.target_schema.get(correspondence.target_id).path
        out.write(f"  {correspondence.score:.3f}  {source_path}  ~  {target_path}\n")
    return 0


def _cmd_mappings(args, out) -> int:
    dataset = load_dataset(args.dataset)
    started = time.perf_counter()
    mapping_set = build_mapping_set(args.dataset, args.h, method=args.method)
    elapsed = time.perf_counter() - started
    out.write(f"{args.dataset}: top-{len(mapping_set)} mappings via {args.method} "
              f"in {elapsed:.2f}s (o-ratio {mapping_set.o_ratio():.2f})\n")
    for mapping in list(mapping_set)[:10]:
        out.write(f"  mapping {mapping.mapping_id:<3} p={mapping.probability:.4f} "
                  f"score={mapping.score:.2f} correspondences={len(mapping)}\n")
    del dataset
    return 0


def _cmd_blocktree(args, out) -> int:
    mapping_set = build_mapping_set(args.dataset, args.num_mappings)
    tree = build_block_tree(mapping_set, BlockTreeConfig(tau=args.tau))
    info = tree.describe()
    out.write(f"block tree for {args.dataset} (|M|={args.num_mappings}, tau={args.tau}):\n")
    for key in ("num_blocks", "non_leaf_blocks_created", "hash_entries", "max_block_size",
                "mean_block_size", "mean_block_support", "compression_ratio",
                "construction_seconds"):
        value = info[key]
        if isinstance(value, float):
            value = f"{value:.4f}"
        out.write(f"  {key:<26} {value}\n")
    return 0


def _cmd_query(args, out) -> int:
    mapping_set = build_mapping_set(args.dataset, args.num_mappings)
    document = load_source_document(args.dataset)
    if args.query.upper() in QUERY_STRINGS:
        query = load_query(args.query)
        out.write(f"{args.query.upper()}: {QUERY_STRINGS[args.query.upper()]}\n")
    else:
        query = parse_twig(args.query, aliases=QUERY_ALIASES)

    tree = build_block_tree(mapping_set) if args.algorithm == "block-tree" else None
    started = time.perf_counter()
    if args.top_k is not None:
        result = evaluate_topk_ptq(query, mapping_set, document, k=args.top_k, block_tree=tree)
    elif tree is not None:
        result = evaluate_ptq_blocktree(query, mapping_set, document, tree)
    else:
        result = evaluate_ptq_basic(query, mapping_set, document)
    elapsed = time.perf_counter() - started

    out.write(f"{len(result)} answers ({len(result.non_empty())} non-empty) "
              f"in {elapsed * 1000:.1f} ms using {args.algorithm}\n")
    for answer in list(result)[:10]:
        out.write(f"  mapping {answer.mapping_id:<4} p={answer.probability:.4f} "
                  f"matches={len(answer.matches)}\n")
    distribution = result.value_distribution()
    if distribution:
        out.write("value distribution of the output node:\n")
        for value, probability in sorted(distribution.items(), key=lambda kv: -kv[1])[:10]:
            out.write(f"  {probability:.3f}  {value!r}\n")
    return 0


_COMMANDS = {
    "schemas": _cmd_schemas,
    "show-schema": _cmd_show_schema,
    "datasets": _cmd_datasets,
    "match": _cmd_match,
    "mappings": _cmd_mappings,
    "blocktree": _cmd_blocktree,
    "query": _cmd_query,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2
