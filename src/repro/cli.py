"""Command-line interface.

The CLI exposes the engine's pipeline for quick, scriptable inspection::

    python -m repro schemas                      # list the corpus schemas
    python -m repro show-schema apertum          # print a schema tree
    python -m repro datasets                     # Table II summary
    python -m repro match D7                     # run the matcher, show correspondences
    python -m repro mappings D7 --h 20           # top-h possible mappings
    python -m repro blocktree D7 --tau 0.2       # block-tree statistics
    python -m repro query D7 Q7                  # evaluate one of the paper's queries
    python -m repro query D7 "Order/DeliverTo/Contact/EMail" --top-k 10
    python -m repro batch D7 Q1 Q2 Q7 --workers 8 --repeat 3
    python -m repro corpus D7 Q2 Q7 --shards 4   # scatter-gather over shards
    python -m repro corpus D1,D2,D7 "//ContactName" --top-k 5
    python -m repro delta D7 Q1 Q7 --touch 10    # incremental mapping delta
    python -m repro explain D7 Q7                # which plan would run, and why
    python -m repro serve D7 --port 8750         # network server (see docs/serving.md)
    python -m repro client query Q7 --port 8750 --top-k 5

All dataset-bound commands are backed by one :class:`repro.engine.Dataspace`
session per invocation, so the matching, mapping set and block tree are built
(or fetched from cache) exactly once.  ``batch`` pushes its queries through
the concurrent :class:`repro.service.QueryService` and reports throughput and
result-cache hit rates; ``explain`` shows how the session's result cache
participated.  ``query``, ``blocktree``, ``batch`` and ``explain`` accept
``--json`` for machine-readable output; every ``--json`` result payload uses
the canonical codecs of :mod:`repro.api.serialize`, so CLI output, server
responses and golden snapshots are the same bytes for the same answers.

Every command writes to stdout and returns a non-zero exit code on invalid
input, so the CLI composes well with shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.api.serialize import (
    delta_report_to_json,
    execution_to_json,
    explain_to_json,
    result_to_json,
    value_distribution_to_json,
)
from repro.engine import Dataspace, available_plans, plan_for
from repro.exceptions import ReproError
from repro.schema.corpus import SCHEMA_SIZES, available_schemas, load_corpus_schema
from repro.schema.parser import schema_to_text
from repro.workloads.datasets import DATASET_IDS, load_dataset
from repro.workloads.queries import QUERY_STRINGS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Managing uncertainty of XML schema matching (ICDE 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("schemas", help="list the synthetic corpus schemas")

    show_schema = subparsers.add_parser("show-schema", help="print a corpus schema tree")
    show_schema.add_argument("standard", help="schema name, e.g. apertum, xcbl, cidx")
    show_schema.add_argument("--max-lines", type=int, default=60,
                             help="truncate output after this many lines (default 60)")

    subparsers.add_parser("datasets", help="summarise the Table II datasets")

    match = subparsers.add_parser("match", help="run the matcher on a dataset")
    match.add_argument("dataset", help="dataset id, e.g. D7")
    match.add_argument("--limit", type=int, default=20, help="correspondences to print")

    mappings = subparsers.add_parser("mappings", help="generate top-h possible mappings")
    mappings.add_argument("dataset")
    mappings.add_argument("--h", type=int, default=20, dest="h", help="number of mappings")
    mappings.add_argument("--method", choices=("partition", "murty"), default="partition")

    blocktree = subparsers.add_parser("blocktree", help="build a block tree and show statistics")
    blocktree.add_argument("dataset")
    blocktree.add_argument("--num-mappings", type=int, default=100)
    blocktree.add_argument("--tau", type=float, default=0.2)
    blocktree.add_argument("--json", action="store_true",
                           help="emit the statistics as a JSON object")

    # Plan choices are derived from the engine's plan registry, so a newly
    # registered plan is immediately selectable here without touching the CLI.
    plan_help = ("evaluation plan: 'auto' lets the engine pick (default), or one of "
                 + ", ".join(available_plans())
                 + " (spelling-insensitive: 'block-tree' == 'blocktree')")

    query = subparsers.add_parser("query", help="evaluate a probabilistic twig query")
    query.add_argument("dataset")
    query.add_argument("query", help="a query id (Q1..Q10) or a twig pattern string")
    query.add_argument("--num-mappings", type=int, default=100)
    query.add_argument("--top-k", type=int, default=None)
    query.add_argument("--algorithm", "--plan", dest="algorithm", default="auto",
                       metavar="PLAN", help=plan_help)
    query.add_argument("--json", action="store_true",
                       help="emit answers and statistics as a JSON object")

    batch = subparsers.add_parser(
        "batch", help="evaluate many queries concurrently through the query service"
    )
    batch.add_argument("dataset")
    batch.add_argument("queries", nargs="+",
                       help="query ids (Q1..Q10) and/or twig pattern strings")
    batch.add_argument("--num-mappings", type=int, default=100)
    batch.add_argument("--top-k", type=int, default=None)
    batch.add_argument("--workers", type=int, default=8,
                       help="service thread-pool size (default 8)")
    batch.add_argument("--repeat", type=int, default=1,
                       help="replay the batch this many times (later rounds hit the cache)")
    batch.add_argument("--no-cache", action="store_true",
                       help="bypass the session result cache")
    batch.add_argument("--json", action="store_true",
                       help="emit results and service statistics as a JSON object")

    corpus = subparsers.add_parser(
        "corpus",
        help="evaluate queries on a sharded corpus (scatter-gather over shards)",
    )
    corpus.add_argument(
        "dataset",
        help="dataset id (subtree-sharded), or comma-separated ids for a "
             "multi-dataset corpus (e.g. D1,D2,D7)",
    )
    corpus.add_argument("queries", nargs="+",
                        help="query ids (Q1..Q10) and/or twig pattern strings")
    corpus.add_argument("--shards", type=int, default=4,
                        help="shards per dataset document (default 4)")
    corpus.add_argument("--num-mappings", type=int, default=100)
    corpus.add_argument("--top-k", type=int, default=None)
    corpus.add_argument("--no-cache", action="store_true",
                        help="bypass the sessions' result caches")
    corpus.add_argument("--json", action="store_true",
                        help="emit per-query scatter-gather reports as a JSON object")

    delta = subparsers.add_parser(
        "delta",
        help="apply an incremental mapping delta and show surviving-cache statistics",
    )
    delta.add_argument("dataset")
    delta.add_argument("queries", nargs="+",
                       help="query ids (Q1..Q10) and/or twig pattern strings to warm, "
                            "then re-run after the delta")
    delta.add_argument("--num-mappings", type=int, default=100)
    delta.add_argument("--touch", type=int, default=10,
                       help="mappings touched by the synthetic delta (default 10)")
    delta.add_argument("--mode", choices=("reweight", "structural"), default="reweight",
                       help="reweight: mass-preserving probability rotation; "
                            "structural: remove one correspondence per touched mapping")
    delta.add_argument("--json", action="store_true",
                       help="emit the delta report and per-query cache states as JSON")

    explain = subparsers.add_parser(
        "explain", help="show how a query would be evaluated (plan, inputs, timings)"
    )
    explain.add_argument("dataset")
    explain.add_argument("query", help="a query id (Q1..Q10) or a twig pattern string")
    explain.add_argument("--num-mappings", type=int, default=100)
    explain.add_argument("--top-k", type=int, default=None)
    explain.add_argument("--algorithm", "--plan", dest="algorithm", default="auto",
                         metavar="PLAN", help=plan_help)
    explain.add_argument("--analyze", action="store_true",
                         help="also report estimated vs. actual execution metrics")
    explain.add_argument("--json", action="store_true",
                         help="emit the report as a JSON object")

    store = subparsers.add_parser(
        "store", help="manage a persistent artifact store (sqlite block store)"
    )
    store.add_argument("action", choices=("persist", "stats", "verify", "gc"),
                       help="persist: build a dataset session and write its artifacts; "
                            "stats: block/ref occupancy and counters; "
                            "verify: checksum-walk every ref'd manifest; "
                            "gc: delete blocks unreachable from any ref")
    store.add_argument("--path", required=True,
                       help="filesystem path of the sqlite block store")
    store.add_argument("--dataset", default="D7",
                       help="dataset to persist (persist action, default D7)")
    store.add_argument("--num-mappings", type=int, default=100)
    store.add_argument("--json", action="store_true",
                       help="emit the report as a JSON object")

    serve = subparsers.add_parser(
        "serve", help="serve a dataset session over TCP (HTTP + binary protocol)"
    )
    serve.add_argument("dataset", help="dataset id, e.g. D7")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default 0: pick a free port and print it)")
    serve.add_argument("--num-mappings", type=int, default=100)
    serve.add_argument("--shards", type=int, default=0,
                       help="serve a sharded corpus with this many shards "
                            "(default 0: plain session)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="admission cap on concurrently executing requests "
                            "(default: the service's worker-pool size)")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="admission cap on queued requests (default 32); "
                            "arrivals beyond both caps are shed with a typed "
                            "'overloaded' error")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-request deadline in seconds (default 30)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve with the session result cache bypassed")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="serve for a bounded time, then drain and exit "
                            "(default: until interrupted)")

    subscribe = subparsers.add_parser(
        "subscribe",
        help="register a standing query on a running server and stream its updates",
    )
    subscribe.add_argument("query",
                           help="a query id (Q1..Q10) or a twig pattern string")
    subscribe.add_argument("--host", default="127.0.0.1")
    subscribe.add_argument("--port", type=int, required=True)
    subscribe.add_argument("--top-k", type=int, default=None)
    subscribe.add_argument("--max-updates", type=int, default=0,
                           help="stop after this many updates, the initial "
                                "snapshot included (default 0: stream until "
                                "interrupted or the socket timeout expires)")
    subscribe.add_argument("--timeout", type=float, default=30.0,
                           help="socket timeout waiting for the next update "
                                "(default 30)")
    subscribe.add_argument("--json", action="store_true",
                           help="emit one canonical update payload per line")

    client = subparsers.add_parser(
        "client", help="issue typed requests to a running repro server"
    )
    client.add_argument("op", choices=("query", "batch", "explain", "stats", "ping"),
                        help="operation to perform")
    client.add_argument("arguments", nargs="*",
                        help="query ids (Q1..Q10) and/or twig pattern strings "
                             "(query/explain take one, batch takes many)")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--top-k", type=int, default=None)
    client.add_argument("--plan", default=None, metavar="PLAN",
                        help="force an evaluation plan on the server")
    client.add_argument("--no-cache", action="store_true",
                        help="bypass the server's result cache for this request")
    client.add_argument("--timeout", type=float, default=30.0,
                        help="socket timeout in seconds (default 30)")
    client.add_argument("--json", action="store_true",
                        help="emit the canonical response payload as JSON")
    return parser


def _plan_name(algorithm: str) -> Optional[str]:
    """Resolve the CLI's ``--algorithm`` spelling against the plan registry.

    ``"auto"`` means no override (the engine picks).  Any other spelling is
    resolved through :func:`repro.engine.plan_for`, which normalises case and
    separators and — for unknown names — raises a
    :class:`~repro.exceptions.QueryError` listing the registered plans (the
    CLI surfaces it as an ``error:`` line with exit code 2).
    """
    if algorithm == "auto":
        return None
    return plan_for(algorithm).name


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_schemas(args, out) -> int:  # noqa: ARG001
    for name in available_schemas():
        out.write(f"{name:<12} {SCHEMA_SIZES[name]:>5} elements\n")
    return 0


def _cmd_show_schema(args, out) -> int:
    schema = load_corpus_schema(args.standard)
    lines = schema_to_text(schema).splitlines()
    for line in lines[: args.max_lines]:
        out.write(line + "\n")
    if len(lines) > args.max_lines:
        out.write(f"... ({len(lines) - args.max_lines} more elements)\n")
    return 0


def _cmd_datasets(args, out) -> int:  # noqa: ARG001
    out.write(f"{'id':<5} {'source':<10} {'|S|':>5} {'target':<10} {'|T|':>5} "
              f"{'opt':<4} {'capacity':>9}\n")
    for dataset_id in DATASET_IDS:
        row = load_dataset(dataset_id).describe()
        out.write(f"{row['id']:<5} {row['S']:<10} {row['|S|']:>5} {row['T']:<10} "
                  f"{row['|T|']:>5} {row['opt']:<4} {row['capacity']:>9}\n")
    return 0


def _cmd_match(args, out) -> int:
    session = Dataspace.from_dataset(args.dataset)
    matching = session.matching
    out.write(f"{args.dataset}: {matching.capacity} correspondences\n")
    ranked = sorted(matching, key=lambda c: -c.score)[: args.limit]
    for correspondence in ranked:
        source_path = session.source_schema.get(correspondence.source_id).path
        target_path = session.target_schema.get(correspondence.target_id).path
        out.write(f"  {correspondence.score:.3f}  {source_path}  ~  {target_path}\n")
    return 0


def _cmd_mappings(args, out) -> int:
    session = Dataspace.from_dataset(args.dataset, h=args.h, method=args.method)
    started = time.perf_counter()
    mapping_set = session.mapping_set
    elapsed = time.perf_counter() - started
    out.write(f"{args.dataset}: top-{len(mapping_set)} mappings via {args.method} "
              f"in {elapsed:.2f}s (o-ratio {mapping_set.o_ratio():.2f})\n")
    for mapping in list(mapping_set)[:10]:
        out.write(f"  mapping {mapping.mapping_id:<3} p={mapping.probability:.4f} "
                  f"score={mapping.score:.2f} correspondences={len(mapping)}\n")
    return 0


def _cmd_blocktree(args, out) -> int:
    session = Dataspace.from_dataset(args.dataset, h=args.num_mappings, tau=args.tau)
    info = session.block_tree.describe()
    if args.json:
        out.write(json.dumps(info, indent=2, sort_keys=True) + "\n")
        return 0
    out.write(f"block tree for {args.dataset} (|M|={args.num_mappings}, tau={args.tau}):\n")
    for key in ("num_blocks", "non_leaf_blocks_created", "hash_entries", "max_block_size",
                "mean_block_size", "mean_block_support", "compression_ratio",
                "construction_seconds"):
        value = info[key]
        if isinstance(value, float):
            value = f"{value:.4f}"
        out.write(f"  {key:<26} {value}\n")
    return 0


def _cmd_query(args, out) -> int:
    session = Dataspace.from_dataset(args.dataset, h=args.num_mappings)
    plan = _plan_name(args.algorithm)
    builder = session.query(args.query)
    if plan is not None:
        builder = builder.plan(plan)
    if args.top_k is not None:
        builder = builder.top_k(args.top_k)
    # Build the artifacts the chosen plan needs outside the timed window, as
    # the paper does: the reported time measures evaluation, not one-time
    # matching/mapping/document construction.
    chosen = plan_for(plan) if plan is not None else session.select_plan()[0]
    session.snapshot(need_tree=chosen.uses_block_tree)
    if chosen.uses_compiled:
        session.compiled

    started = time.perf_counter()
    result = builder.execute()
    elapsed = time.perf_counter() - started

    distribution = sorted(result.value_distribution().items(), key=lambda kv: -kv[1])
    if args.json:
        payload = {
            "dataset": args.dataset.upper(),
            "query": builder.prepared.text,
            "algorithm": args.algorithm,
            "num_mappings": args.num_mappings,
            "top_k": args.top_k,
            "elapsed_ms": round(elapsed * 1000, 3),
            "num_non_empty": len(result.non_empty()),
            "result": result_to_json(result),
            "value_distribution": value_distribution_to_json(result),
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0

    if args.query.upper() in QUERY_STRINGS:
        out.write(f"{args.query.upper()}: {QUERY_STRINGS[args.query.upper()]}\n")
    out.write(f"{len(result)} answers ({len(result.non_empty())} non-empty) "
              f"in {elapsed * 1000:.1f} ms using {args.algorithm}\n")
    for answer in list(result)[:10]:
        out.write(f"  mapping {answer.mapping_id:<4} p={answer.probability:.4f} "
                  f"matches={len(answer.matches)}\n")
    if distribution:
        out.write("value distribution of the output node:\n")
        for value, probability in distribution[:10]:
            out.write(f"  {probability:.3f}  {value!r}\n")
    return 0


def _cmd_batch(args, out) -> int:
    from repro.service import QueryService

    session = Dataspace.from_dataset(args.dataset, h=args.num_mappings)
    rounds = max(1, args.repeat)
    # Build artifacts outside the timed window.  The default (compiled) plan
    # needs the compiled mapping set but no block tree.
    session.snapshot(need_tree=False)
    session.compiled
    started = time.perf_counter()
    with QueryService(
        session, max_workers=args.workers, use_cache=not args.no_cache
    ) as service:
        for _ in range(rounds):
            results = service.execute_many(args.queries, k=args.top_k)
        elapsed = time.perf_counter() - started
        stats = service.stats()

    total_ops = len(args.queries) * rounds
    throughput = total_ops / elapsed if elapsed > 0 else 0.0
    if args.json:
        payload = {
            "dataset": args.dataset.upper(),
            "num_mappings": args.num_mappings,
            "top_k": args.top_k,
            "workers": args.workers,
            "rounds": rounds,
            "total_ops": total_ops,
            "elapsed_ms": round(elapsed * 1000, 3),
            "throughput_qps": round(throughput, 2),
            "results": [
                {"query": query, "result": result_to_json(result)}
                for query, result in zip(args.queries, results)
            ],
            "service": stats,
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0

    out.write(f"{total_ops} queries ({len(args.queries)} distinct x {rounds} rounds) "
              f"in {elapsed * 1000:.1f} ms on {args.workers} workers "
              f"({throughput:.1f} q/s)\n")
    for query, result in zip(args.queries, results):
        out.write(f"  {query:<40} {len(result)} answers "
                  f"({len(result.non_empty())} non-empty)\n")
    cache = stats.get("result_cache", {})
    out.write(f"cache: hits={cache.get('hits', 0)} misses={cache.get('misses', 0)} "
              f"hit_rate={cache.get('hit_rate', 0.0)}\n")
    return 0


def _cmd_corpus(args, out) -> int:
    from repro.workloads import open_corpus

    dataset_ids = [item.strip().upper() for item in args.dataset.split(",") if item.strip()]
    corpus = open_corpus(
        dataset_ids[0] if len(dataset_ids) == 1 else dataset_ids,
        shards=args.shards,
        h=args.num_mappings,
    )
    use_cache = not args.no_cache
    executions = [
        corpus.gather(query, k=args.top_k, use_cache=use_cache)
        for query in args.queries
    ]

    if args.json:
        payload = {
            "datasets": dataset_ids,
            "shards": args.shards,
            "num_shards": corpus.num_shards,
            "num_mappings": args.num_mappings,
            "top_k": args.top_k,
            "queries": [execution_to_json(execution) for execution in executions],
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0

    out.write(
        f"corpus {corpus.name}: {corpus.num_shards} shards over "
        f"{len(dataset_ids)} dataset(s), |M|={args.num_mappings}\n"
    )
    for query, execution in zip(args.queries, executions):
        out.write(f"\n== {query}\n")
        out.write(execution.format() + "\n")
    return 0


def _build_synthetic_delta(session, touch: int, mode: str):
    """A deterministic delta touching the ``touch`` least probable mappings.

    ``reweight`` rotates the probabilities of the touched mappings among
    themselves (mass-preserving by construction); ``structural`` removes each
    touched mapping's lexicographically largest correspondence.
    """
    from repro.engine import MappingDelta

    mapping_set = session.mapping_set
    ranked = sorted(mapping_set, key=lambda m: (m.probability, m.mapping_id))
    touched = sorted(m.mapping_id for m in ranked[: max(1, touch)])
    if mode == "structural":
        removals = []
        for mapping_id in touched:
            pairs = sorted(mapping_set[mapping_id].correspondences)
            if pairs:
                removals.append((mapping_id, pairs[-1]))
        return MappingDelta.build(remove=removals)
    rotated = {
        mapping_id: mapping_set[touched[(index + 1) % len(touched)]].probability
        for index, mapping_id in enumerate(touched)
    }
    return MappingDelta.build(reweight=rotated)


def _cmd_delta(args, out) -> int:
    session = Dataspace.from_dataset(args.dataset, h=args.num_mappings)
    # Warm every query so the post-delta run shows what survived.
    for query in args.queries:
        session.execute(query)
    delta = _build_synthetic_delta(session, args.touch, args.mode)
    report = session.apply_delta(delta)
    states = []
    for query in args.queries:
        explain = session.explain(query)
        states.append({"query": query, "cache": explain.cache,
                       "num_answers": explain.num_answers})
    cache_stats = session.result_cache.stats()

    if args.json:
        payload = {
            "dataset": args.dataset.upper(),
            "num_mappings": args.num_mappings,
            "mode": args.mode,
            "delta": delta_report_to_json(report),
            "queries": states,
            "result_cache": cache_stats.to_dict(),
        }
        out.write(json.dumps(payload, indent=2) + "\n")
        return 0

    out.write(report.format() + "\n")
    surviving = sum(1 for state in states if state["cache"] in ("hit", "retained"))
    out.write(f"queries:    {surviving}/{len(states)} served without re-evaluation "
              f"after the delta\n")
    for state in states:
        out.write(f"  {state['query']:<40} cache={state['cache']:<9} "
                  f"answers={state['num_answers']}\n")
    out.write(f"cache:      retained={cache_stats.retained} hits={cache_stats.hits} "
              f"misses={cache_stats.misses}\n")
    return 0


def _cmd_explain(args, out) -> int:
    session = Dataspace.from_dataset(args.dataset, h=args.num_mappings)
    report = session.explain(
        args.query, k=args.top_k, plan=_plan_name(args.algorithm), analyze=args.analyze
    )
    if args.json:
        out.write(json.dumps(explain_to_json(report), indent=2) + "\n")
    else:
        out.write(report.format() + "\n")
    return 0


def _cmd_store(args, out) -> int:
    from repro.store import ArtifactStore, SqliteBlockStore

    with SqliteBlockStore(args.path) as blocks:
        store = ArtifactStore(blocks)
        if args.action == "persist":
            session = Dataspace.from_dataset(
                args.dataset, h=args.num_mappings, store=store
            )
            report = session.persist()
            payload = {
                "ref": report["ref"],
                "manifest": report["manifest"],
                "artifacts": report["artifacts"],
                "elapsed_ms": round(report["elapsed_ms"], 1),
                "provenance": session.artifact_provenance(),
            }
            if args.json:
                out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            else:
                out.write(f"persisted {args.dataset} under {report['ref']}\n")
                out.write(f"  manifest:  {report['manifest'][:16]}...\n")
                out.write(f"  artifacts: {report['artifacts']}  "
                          f"results: {report['results']}  "
                          f"({report['elapsed_ms']:.1f} ms)\n")
        elif args.action == "stats":
            stats = store.stats()
            if args.json:
                out.write(json.dumps(stats, indent=2, sort_keys=True) + "\n")
            else:
                out.write(f"blocks:  {stats['blocks']} ({stats['total_bytes']} bytes)\n")
                out.write(f"refs:    {stats['refs']}\n")
                for name in sorted(blocks.refs()):
                    out.write(f"  {name}\n")
        elif args.action == "verify":
            report = store.verify()
            if args.json:
                out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
            else:
                for name, status in sorted(report["refs"].items()):
                    out.write(f"  {name}: {status}\n")
                out.write(f"checked {report['blocks_checked']} blocks, "
                          f"{report['errors']} errors\n")
            return 2 if report["errors"] else 0
        else:  # gc
            report = store.gc()
            if args.json:
                out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
            else:
                out.write(f"removed {report['removed']} unreachable blocks "
                          f"({report['live']} live)\n")
    return 0


def _cmd_serve(args, out) -> int:
    from repro.net import ReproServer

    if args.shards > 0:
        from repro.workloads import open_corpus

        target = open_corpus(args.dataset, shards=args.shards, h=args.num_mappings)
    else:
        target = Dataspace.from_dataset(args.dataset, h=args.num_mappings)
    server = ReproServer(
        target,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        request_timeout=args.timeout,
        use_cache=not args.no_cache,
    )

    def announce(started) -> None:
        out.write(f"serving {args.dataset.upper()} on "
                  f"{started.host}:{started.port} "
                  f"(max_inflight={started.server_stats()['max_inflight']}, "
                  f"max_queue={args.max_queue})\n")
        if hasattr(out, "flush"):
            out.flush()

    server.serve(max_seconds=args.max_seconds, on_start=announce)
    return 0


def _cmd_subscribe(args, out) -> int:
    import socket as _socket

    from repro.net import connect

    try:
        with connect(args.host, args.port, timeout=args.timeout) as client:
            stream = client.subscribe(args.query, k=args.top_k)
            rows: list = []
            delivered = 0
            try:
                for event in stream:
                    rows = event.apply(rows)
                    delivered += 1
                    if args.json:
                        out.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
                    else:
                        out.write(
                            f"[{event.kind}] epoch={event.delta_epoch} "
                            f"+{len(event.added)} -{len(event.removed)} "
                            f"~{len(event.rescored)} rows={len(rows)}\n"
                        )
                        for answer in rows[:5]:
                            out.write(f"  mapping {answer.mapping_id:<4} "
                                      f"p={answer.probability:.4f}\n")
                    if hasattr(out, "flush"):
                        out.flush()
                    if args.max_updates and delivered >= args.max_updates:
                        break
            except (KeyboardInterrupt, _socket.timeout):
                pass
            finally:
                stream.close()
    except OSError as error:
        out.write(f"error: cannot reach {args.host}:{args.port}: {error}\n")
        return 2
    return 0


def _cmd_client(args, out) -> int:
    from repro.net import connect

    if args.op in ("query", "explain") and len(args.arguments) != 1:
        out.write(f"error: '{args.op}' takes exactly one query\n")
        return 2
    if args.op == "batch" and not args.arguments:
        out.write("error: 'batch' takes at least one query\n")
        return 2
    try:
        with connect(args.host, args.port, timeout=args.timeout) as client:
            if args.op == "ping":
                client.ping()
                out.write("ok\n")
            elif args.op == "stats":
                out.write(json.dumps(client.stats(), indent=2, sort_keys=True) + "\n")
            elif args.op == "explain":
                report = client.explain(
                    args.arguments[0], k=args.top_k, plan=args.plan
                )
                if args.json:
                    out.write(json.dumps(explain_to_json(report), indent=2) + "\n")
                else:
                    out.write(report.format() + "\n")
            elif args.op == "batch":
                results = client.query_batch(
                    args.arguments, k=args.top_k, plan=args.plan,
                    use_cache=not args.no_cache,
                )
                if args.json:
                    payload = [
                        {"query": result.query, "result": result.to_json()}
                        for result in results
                    ]
                    out.write(json.dumps(payload, indent=2) + "\n")
                else:
                    for result in results:
                        out.write(f"  {result.query:<40} {len(result)} answers "
                                  f"({len(result.non_empty())} non-empty)\n")
            else:  # query
                result = client.query(
                    args.arguments[0], k=args.top_k, plan=args.plan,
                    use_cache=not args.no_cache,
                )
                if args.json:
                    payload = {"query": result.query, "result": result.to_json()}
                    out.write(json.dumps(payload, indent=2) + "\n")
                else:
                    out.write(f"{len(result)} answers "
                              f"({len(result.non_empty())} non-empty)\n")
                    for answer in list(result)[:10]:
                        out.write(f"  mapping {answer.mapping_id:<4} "
                                  f"p={answer.probability:.4f} "
                                  f"matches={answer.num_matches}\n")
    except OSError as error:
        out.write(f"error: cannot reach {args.host}:{args.port}: {error}\n")
        return 2
    return 0


_COMMANDS = {
    "schemas": _cmd_schemas,
    "show-schema": _cmd_show_schema,
    "datasets": _cmd_datasets,
    "match": _cmd_match,
    "mappings": _cmd_mappings,
    "blocktree": _cmd_blocktree,
    "query": _cmd_query,
    "batch": _cmd_batch,
    "corpus": _cmd_corpus,
    "delta": _cmd_delta,
    "explain": _cmd_explain,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "subscribe": _cmd_subscribe,
    "client": _cmd_client,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2
