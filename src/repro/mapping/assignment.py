"""Maximum-weight bipartite matching (the assignment substrate).

Two interchangeable backends solve the assignment problems that Murty's
ranking and the partition-based generator create:

* ``"python"`` — a from-scratch Hungarian (Kuhn–Munkres) implementation using
  the potentials + shortest-augmenting-path formulation, O(n² m).  This is
  the reference implementation and is always available.
* ``"scipy"`` — :func:`scipy.optimize.linear_sum_assignment`, used for large
  matrices (the paper-faithful "full bipartite" baseline spans more than a
  thousand elements per side) when SciPy is installed.

``"auto"`` picks SciPy for matrices above a size threshold when available and
the pure-Python solver otherwise, so the library has no hard dependency on
SciPy.

All solvers work on the *maximisation* problem with implicit zero-weight
"stay unmatched" edges: the returned edge set only ever contains real
(positive-weight, non-forbidden) correspondence edges.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import AssignmentError
from repro.mapping.bipartite import BipartiteGraph
from repro.matching.correspondence import CorrespondenceKey

__all__ = ["solve_max_weight_matching", "hungarian_min_cost", "available_backends"]

_SCIPY_THRESHOLD = 64  # matrix side above which "auto" prefers SciPy

try:  # pragma: no cover - exercised implicitly depending on the environment
    import numpy as _np
    from scipy.optimize import linear_sum_assignment as _linear_sum_assignment
except Exception:  # pragma: no cover
    _np = None
    _linear_sum_assignment = None


def available_backends() -> tuple[str, ...]:
    """Return the assignment backends usable in this environment."""
    if _linear_sum_assignment is not None:
        return ("python", "scipy")
    return ("python",)


# --------------------------------------------------------------------------- #
# Pure-Python Hungarian algorithm (minimisation, rectangular with rows <= cols)
# --------------------------------------------------------------------------- #
def hungarian_min_cost(cost: Sequence[Sequence[float]]) -> list[tuple[int, int]]:
    """Solve the rectangular assignment problem, minimising total cost.

    Parameters
    ----------
    cost:
        A dense ``n x m`` cost matrix with ``n <= m`` (every row gets
        assigned to a distinct column).

    Returns
    -------
    list[tuple[int, int]]
        ``(row, column)`` pairs of the optimal assignment, one per row.

    Raises
    ------
    AssignmentError
        If the matrix is empty, ragged, or has more rows than columns.
    """
    n = len(cost)
    if n == 0:
        return []
    m = len(cost[0])
    if any(len(row) != m for row in cost):
        raise AssignmentError("cost matrix is ragged")
    if n > m:
        raise AssignmentError(
            f"hungarian_min_cost requires rows <= columns, got {n} x {m}; transpose first"
        )

    infinity = float("inf")
    # Potentials for rows (u) and columns (v); p[j] is the row assigned to
    # column j (1-based, 0 means unassigned); way[j] is the previous column
    # on the alternating path.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [infinity] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = infinity
            j1 = 0
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                current = row[j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while True:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
            if j0 == 0:
                break
    return [(p[j] - 1, j - 1) for j in range(1, m + 1) if p[j] != 0]


# --------------------------------------------------------------------------- #
# Public solver over BipartiteGraph with forced / forbidden edges
# --------------------------------------------------------------------------- #
def solve_max_weight_matching(
    graph: BipartiteGraph,
    forced: Iterable[CorrespondenceKey] = (),
    forbidden: Iterable[CorrespondenceKey] = (),
    backend: str = "auto",
) -> tuple[float, frozenset[CorrespondenceKey]]:
    """Return the maximum-weight one-to-one matching of ``graph``.

    Parameters
    ----------
    graph:
        The bipartite to match.
    forced:
        Edges that must appear in the result.  They must be real edges of the
        graph and pairwise node-disjoint.
    forbidden:
        Edges that must not appear in the result.
    backend:
        ``"auto"``, ``"python"`` or ``"scipy"``.

    Returns
    -------
    (score, edges)
        The total weight and the set of chosen correspondence edges
        (including the forced ones).  Elements not covered by any returned
        edge are unmatched, i.e. paired with their image in the paper's
        formulation.

    Raises
    ------
    AssignmentError
        On conflicting constraints or an unavailable backend.
    """
    forced = list(forced)
    forbidden_set = set(forbidden)
    _validate_constraints(graph, forced, forbidden_set)

    forced_sources = {source_id for source_id, _ in forced}
    forced_targets = {target_id for _, target_id in forced}
    forced_score = sum(graph.weights[key] for key in forced)

    rows = [s for s in graph.source_ids if s not in forced_sources]
    cols = [t for t in graph.target_ids if t not in forced_targets]

    free_weights = {
        (source_id, target_id): weight
        for (source_id, target_id), weight in graph.weights.items()
        if source_id not in forced_sources
        and target_id not in forced_targets
        and (source_id, target_id) not in forbidden_set
    }

    if not free_weights or not rows or not cols:
        return forced_score, frozenset(forced)

    chosen = _solve_dense(rows, cols, free_weights, backend)
    score = forced_score + sum(graph.weights[key] for key in chosen)
    return score, frozenset(forced) | chosen


def _validate_constraints(
    graph: BipartiteGraph,
    forced: list[CorrespondenceKey],
    forbidden: set[CorrespondenceKey],
) -> None:
    seen_sources: set[int] = set()
    seen_targets: set[int] = set()
    for key in forced:
        if key not in graph.weights:
            raise AssignmentError(f"forced edge {key} is not an edge of the graph")
        if key in forbidden:
            raise AssignmentError(f"edge {key} is both forced and forbidden")
        source_id, target_id = key
        if source_id in seen_sources or target_id in seen_targets:
            raise AssignmentError("forced edges are not node-disjoint")
        seen_sources.add(source_id)
        seen_targets.add(target_id)


def _solve_dense(
    rows: list[int],
    cols: list[int],
    weights: dict[CorrespondenceKey, float],
    backend: str,
) -> frozenset[CorrespondenceKey]:
    """Solve the free part of the problem on a dense matrix."""
    if backend not in ("auto", "python", "scipy"):
        raise AssignmentError(f"unknown assignment backend {backend!r}")
    if backend == "scipy" and _linear_sum_assignment is None:
        raise AssignmentError("the scipy backend was requested but SciPy is not installed")
    use_scipy = backend == "scipy" or (
        backend == "auto"
        and _linear_sum_assignment is not None
        and max(len(rows), len(cols)) > _SCIPY_THRESHOLD
    )

    row_index = {source_id: i for i, source_id in enumerate(rows)}
    col_index = {target_id: j for j, target_id in enumerate(cols)}

    if use_scipy:
        matrix = _np.zeros((len(rows), len(cols)), dtype=float)
        for (source_id, target_id), weight in weights.items():
            matrix[row_index[source_id], col_index[target_id]] = weight
        assigned_rows, assigned_cols = _linear_sum_assignment(matrix, maximize=True)
        pairs = zip(assigned_rows.tolist(), assigned_cols.tolist())
    else:
        # Maximise by minimising (max_weight - w); implicit zero edges become
        # max_weight, so they are only used when nothing better is available.
        max_weight = max(weights.values())
        transposed = len(rows) > len(cols)
        if transposed:
            size_r, size_c = len(cols), len(rows)
        else:
            size_r, size_c = len(rows), len(cols)
        cost = [[max_weight] * size_c for _ in range(size_r)]
        for (source_id, target_id), weight in weights.items():
            i, j = row_index[source_id], col_index[target_id]
            if transposed:
                cost[j][i] = max_weight - weight
            else:
                cost[i][j] = max_weight - weight
        solution = hungarian_min_cost(cost)
        if transposed:
            pairs = ((i, j) for j, i in solution)
        else:
            pairs = iter(solution)

    chosen: set[CorrespondenceKey] = set()
    for i, j in pairs:
        key = (rows[i], cols[j])
        if key in weights:
            chosen.add(key)
    return frozenset(chosen)
