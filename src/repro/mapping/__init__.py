"""Possible-mapping model and top-h mapping generation.

A *possible mapping* (:class:`Mapping`) is a one-to-one partial matching
between source and target schema elements, drawn from the correspondences of
a :class:`~repro.matching.matching.SchemaMatching` and annotated with a
probability.  A :class:`MappingSet` is the paper's ``M``: the set of possible
mappings representing one schema matching, with probabilities summing to one.

Top-h mappings are produced either by Murty's ranking algorithm over the
whole bipartite (:mod:`repro.mapping.murty`, the paper's baseline) or by the
paper's divide-and-conquer partitioning approach
(:mod:`repro.mapping.partition`).
"""

from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.mapping.bipartite import BipartiteGraph
from repro.mapping.assignment import solve_max_weight_matching
from repro.mapping.murty import rank_mappings_murty
from repro.mapping.partition import partition_matching, rank_mappings_partitioned
from repro.mapping.generator import generate_top_h_mappings, GenerationMethod

__all__ = [
    "Mapping",
    "MappingSet",
    "BipartiteGraph",
    "solve_max_weight_matching",
    "rank_mappings_murty",
    "partition_matching",
    "rank_mappings_partitioned",
    "generate_top_h_mappings",
    "GenerationMethod",
]
