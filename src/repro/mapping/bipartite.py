"""Bipartite-graph view of a schema matching.

The paper (Section V, Figure 7) models the retrieval of top-h mappings as a
maximum bipartite matching problem: source elements on one side, target
elements on the other, correspondences as weighted edges, and an *image* node
per element to model the "matches nothing" choice.  Because every image edge
has weight zero, ranking assignments of that bipartite is equivalent to
ranking the sets of real correspondence edges that form a one-to-one partial
matching, which is how :class:`BipartiteGraph` exposes the problem: the image
nodes are implicit (an element not covered by the returned edge set is
unmatched).

The class also implements the paper's *partitioning* (Definition 6): the
connected components of the correspondence graph, each a much smaller
bipartite on which the assignment algorithms run independently.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import AssignmentError
from repro.matching.correspondence import CorrespondenceKey
from repro.matching.matching import SchemaMatching

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """A weighted bipartite graph between source and target element ids.

    Parameters
    ----------
    source_ids:
        Source-side node ids (rows of the weight matrix).
    target_ids:
        Target-side node ids (columns).
    weights:
        Edge weights, keyed by ``(source_id, target_id)``; only pairs present
        here are real correspondences, every other pair has implicit weight 0
        (i.e. "leave both elements unmatched instead").
    """

    def __init__(
        self,
        source_ids: Iterable[int],
        target_ids: Iterable[int],
        weights: dict[CorrespondenceKey, float],
    ) -> None:
        self.source_ids: list[int] = sorted(set(source_ids))
        self.target_ids: list[int] = sorted(set(target_ids))
        source_set = set(self.source_ids)
        target_set = set(self.target_ids)
        for (source_id, target_id), weight in weights.items():
            if source_id not in source_set or target_id not in target_set:
                raise AssignmentError(
                    f"edge ({source_id}, {target_id}) references a node outside the graph"
                )
            if weight < 0:
                raise AssignmentError(
                    f"edge ({source_id}, {target_id}) has negative weight {weight!r}"
                )
        self.weights: dict[CorrespondenceKey, float] = dict(weights)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_matching(
        cls, matching: SchemaMatching, include_unmatched_elements: bool = True
    ) -> "BipartiteGraph":
        """Build the bipartite of a schema matching.

        ``include_unmatched_elements=True`` reproduces the paper's baseline
        setting where the bipartite spans *all* ``|S.N| + |T.N|`` elements
        (its size is what makes plain Murty expensive); ``False`` restricts
        the graph to elements that participate in at least one correspondence,
        which is how the per-partition subproblems are built.
        """
        weights = {c.key: c.score for c in matching}
        if include_unmatched_elements:
            source_ids: Iterable[int] = matching.source.element_ids()
            target_ids: Iterable[int] = matching.target.element_ids()
        else:
            source_ids = matching.matched_source_ids()
            target_ids = matching.matched_target_ids()
        return cls(source_ids, target_ids, weights)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Total number of nodes (the paper's ``|S.N| + |T.N|``)."""
        return len(self.source_ids) + len(self.target_ids)

    @property
    def num_edges(self) -> int:
        """Number of weighted (real correspondence) edges."""
        return len(self.weights)

    def max_weight(self) -> float:
        """Largest edge weight (0 for an edgeless graph)."""
        return max(self.weights.values(), default=0.0)

    # ------------------------------------------------------------------ #
    # Partitioning (Definition 6 of the paper)
    # ------------------------------------------------------------------ #
    def connected_components(self) -> list["BipartiteGraph"]:
        """Split the graph into maximal connected sub-bipartites.

        Only nodes incident to at least one edge are placed in components;
        isolated nodes can only pair with their image (contribute score 0 to
        every mapping) and are therefore irrelevant to the ranking.
        Components are returned in a deterministic order (by their smallest
        source id).
        """
        parent: dict[tuple[str, int], tuple[str, int]] = {}

        def find(node: tuple[str, int]) -> tuple[str, int]:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:
                parent[node], node = root, parent[node]
            return root

        def union(a: tuple[str, int], b: tuple[str, int]) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        for source_id, target_id in self.weights:
            left = ("s", source_id)
            right = ("t", target_id)
            parent.setdefault(left, left)
            parent.setdefault(right, right)
            union(left, right)

        groups: dict[tuple[str, int], dict[str, set[int] | dict]] = {}
        for (source_id, target_id), weight in self.weights.items():
            root = find(("s", source_id))
            group = groups.setdefault(
                root, {"sources": set(), "targets": set(), "weights": {}}
            )
            group["sources"].add(source_id)  # type: ignore[union-attr]
            group["targets"].add(target_id)  # type: ignore[union-attr]
            group["weights"][(source_id, target_id)] = weight  # type: ignore[index]

        components = [
            BipartiteGraph(group["sources"], group["targets"], group["weights"])  # type: ignore[arg-type]
            for group in groups.values()
        ]
        components.sort(key=lambda g: g.source_ids[0])
        return components

    def restrict(self, keys: Iterable[CorrespondenceKey]) -> "BipartiteGraph":
        """Return the subgraph containing only the given edges (and their nodes)."""
        keys = set(keys)
        missing = keys - set(self.weights)
        if missing:
            raise AssignmentError(f"edges {sorted(missing)} are not in the graph")
        weights = {key: self.weights[key] for key in keys}
        sources = {source_id for source_id, _ in keys}
        targets = {target_id for _, target_id in keys}
        return BipartiteGraph(sources, targets, weights)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(sources={len(self.source_ids)}, targets={len(self.target_ids)}, "
            f"edges={self.num_edges})"
        )
