"""The :class:`MappingSet`: the paper's set ``M`` of possible mappings.

Besides the object model, this module hosts the two primitive bitset helpers
(:func:`mapping_mask` / :func:`iter_mapping_ids`) shared by the compiled
evaluation core (:mod:`repro.engine.compiled`), the block tree and the PTQ
evaluators: a set of mapping ids is encoded as a Python int with bit ``i``
set iff mapping ``i`` is a member, so set algebra over mappings becomes
single bitwise AND/OR/popcount operations.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.exceptions import MappingError
from repro.mapping.mapping import Mapping
from repro.matching.correspondence import CorrespondenceKey
from repro.matching.matching import SchemaMatching

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.compiled import CompiledMappingSet

__all__ = ["MappingSet", "mapping_mask", "iter_mapping_ids"]


def mapping_mask(mapping_ids: Iterable[int]) -> int:
    """Encode a set of mapping ids as a bitmask (bit ``i`` set iff ``i`` present)."""
    mask = 0
    for mapping_id in mapping_ids:
        mask |= 1 << mapping_id
    return mask


def iter_mapping_ids(mask: int) -> Iterator[int]:
    """Yield the mapping ids encoded in ``mask``, in ascending order."""
    while mask:
        low_bit = mask & -mask
        yield low_bit.bit_length() - 1
        mask ^= low_bit

#: Estimated storage cost of one correspondence (two element ids + a score),
#: used by the compression-ratio metric.  The exact constant does not matter;
#: it only scales both sides of the ratio.
CORRESPONDENCE_BYTES = 12
#: Estimated storage cost of one mapping id reference.
MAPPING_ID_BYTES = 4
#: Estimated fixed overhead per stored mapping (id + probability).
MAPPING_HEADER_BYTES = 12


class MappingSet:
    """A set of possible mappings ``M = {m_1, ..., m_|M|}`` with probabilities.

    Probabilities sum to one (the paper's model); they are usually obtained
    by normalising the mapping scores over the retained top-h mappings.

    Parameters
    ----------
    matching:
        The schema matching the mappings were derived from.
    mappings:
        The possible mappings.  Their ``mapping_id`` values must be the
        positions ``0 .. len-1``.
    normalize:
        When ``True`` (default) the constructor recomputes probabilities from
        the mapping scores; when ``False`` the provided probabilities are
        validated instead.
    """

    def __init__(
        self,
        matching: SchemaMatching,
        mappings: Sequence[Mapping],
        normalize: bool = True,
    ) -> None:
        if not mappings:
            raise MappingError("a mapping set must contain at least one mapping")
        self.matching = matching
        if normalize:
            total = sum(mapping.score for mapping in mappings)
            if total <= 0:
                # All-empty mappings: fall back to a uniform distribution.
                uniform = 1.0 / len(mappings)
                mappings = [m.with_probability(uniform) for m in mappings]
            else:
                mappings = [m.with_probability(m.score / total) for m in mappings]
        self._mappings: list[Mapping] = list(mappings)
        self._validate()
        # Compiled bitset view (repro.engine.compiled), built lazily on first
        # use and memoized for the set's lifetime: a MappingSet is immutable,
        # so the engine's generation machinery (which swaps whole sets on
        # invalidation) also governs the compiled artifact.  Kernel-backend
        # variants of the artifact (same neutral columns, different backend)
        # are memoized alongside it by backend name.
        self._compiled: "CompiledMappingSet | None" = None
        self._compiled_variants: dict[str, "CompiledMappingSet"] = {}
        self._compiled_lock = threading.Lock()

    @classmethod
    def _patched(
        cls, matching: SchemaMatching, mappings: Sequence[Mapping]
    ) -> "MappingSet":
        """Fast private constructor for delta application (no re-validation).

        :func:`repro.engine.delta.apply_mapping_delta` validates exactly the
        touched mappings (the untouched ones were validated when the
        predecessor set was built), so re-running the full ``O(h x pairs)``
        validation here would defeat the point of an incremental update.
        """
        self = cls.__new__(cls)
        self.matching = matching
        self._mappings = list(mappings)
        self._compiled = None
        self._compiled_variants = {}
        self._compiled_lock = threading.Lock()
        return self

    def _validate(self) -> None:
        for index, mapping in enumerate(self._mappings):
            if mapping.mapping_id != index:
                raise MappingError(
                    f"mapping at position {index} has id {mapping.mapping_id}; ids must be "
                    "their positions"
                )
            for source_id, target_id in mapping.correspondences:
                if self.matching.get(source_id, target_id) is None:
                    raise MappingError(
                        f"mapping {index} uses pair ({source_id}, {target_id}) which is not a "
                        f"correspondence of matching {self.matching.name!r}"
                    )
        total_probability = sum(m.probability for m in self._mappings)
        if abs(total_probability - 1.0) > 1e-6:
            raise MappingError(
                f"mapping probabilities must sum to 1, got {total_probability:.6f}"
            )

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._mappings)

    def __iter__(self) -> Iterator[Mapping]:
        return iter(self._mappings)

    def __getitem__(self, mapping_id: int) -> Mapping:
        return self._mappings[mapping_id]

    @property
    def mappings(self) -> list[Mapping]:
        """The mappings, indexed by ``mapping_id``."""
        return list(self._mappings)

    # ------------------------------------------------------------------ #
    # Compiled bitset view
    # ------------------------------------------------------------------ #
    def compile(self, kernels=None) -> "CompiledMappingSet":
        """Lower the set into the compiled bitset representation (memoized).

        The first call builds a :class:`~repro.engine.compiled.CompiledMappingSet`
        — per-correspondence posting lists, per-target source partitions and a
        probability column, all encoded as Python-int bitmasks — and caches it
        on the set; later calls (from any thread) return the same object.

        ``kernels`` selects the kernel backend the artifact's hot loops run
        on (a :class:`~repro.engine.kernels.Kernels` instance, a backend
        name, or ``None`` for the process default — see
        :func:`repro.engine.kernels.resolve_kernels`).  Requesting a backend
        other than the memoized artifact's returns a memoized *variant*
        sharing the same neutral columns, so mixed-backend sessions over one
        set never recompile.
        """
        if self._compiled is None:
            from repro.engine.compiled import CompiledMappingSet

            with self._compiled_lock:
                if self._compiled is None:
                    self._compiled = CompiledMappingSet(self, kernels)
        if kernels is None:
            return self._compiled
        from repro.engine.kernels import resolve_kernels

        resolved = resolve_kernels(kernels)
        if resolved is self._compiled.kernels:
            return self._compiled
        with self._compiled_lock:
            variant = self._compiled_variants.get(resolved.name)
            if variant is None or variant.kernels is not resolved:
                variant = self._compiled.with_kernels(resolved)
                self._compiled_variants[resolved.name] = variant
            return variant

    @property
    def is_compiled(self) -> bool:
        """``True`` once :meth:`compile` has built the bitset view."""
        return self._compiled is not None

    # ------------------------------------------------------------------ #
    # Queries used by the block tree and PTQ evaluation
    # ------------------------------------------------------------------ #
    def mappings_with_pair(self, key: CorrespondenceKey) -> set[int]:
        """Return ids of the mappings containing the correspondence ``key``."""
        return set(iter_mapping_ids(self.compile().pair_mask(key)))

    def relevant_mappings(self, target_ids: Iterable[int]) -> list[Mapping]:
        """The paper's ``filter_mappings``: mappings covering every target id.

        A mapping is *irrelevant* for a query when some query node's target
        element has no correspondence in it; such mappings can only produce
        empty (zero-probability) results and are pruned.  Runs on the compiled
        bitset view: one AND per target element instead of per-mapping hash
        lookups.
        """
        return self.compile().mappings_covering(target_ids)

    def top_k_by_probability(self, k: int) -> list[Mapping]:
        """Return the ``k`` mappings with the highest probabilities."""
        if k <= 0:
            raise MappingError(f"k must be positive, got {k}")
        ranked = sorted(self._mappings, key=lambda m: (-m.probability, m.mapping_id))
        return ranked[:k]

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def o_ratio(self) -> float:
        """Average pairwise overlap ratio of the mappings (Table II's *o-ratio*)."""
        mappings = self._mappings
        if len(mappings) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for i in range(len(mappings)):
            for j in range(i + 1, len(mappings)):
                total += mappings[i].overlap_ratio(mappings[j])
                pairs += 1
        return total / pairs

    def naive_storage_bytes(self) -> int:
        """Estimated bytes to store every mapping with all its correspondences.

        This is the denominator of the paper's compression ratio: the cost of
        the plain representation that repeats shared correspondences in every
        mapping.
        """
        total = 0
        for mapping in self._mappings:
            total += MAPPING_HEADER_BYTES
            total += CORRESPONDENCE_BYTES * len(mapping.correspondences)
        return total

    def describe(self) -> dict:
        """Summary statistics of the mapping set."""
        sizes = [len(m) for m in self._mappings]
        return {
            "num_mappings": len(self._mappings),
            "matching": self.matching.name,
            "min_size": min(sizes),
            "max_size": max(sizes),
            "mean_size": sum(sizes) / len(sizes),
            "o_ratio": self.o_ratio(),
        }

    def __repr__(self) -> str:
        return f"MappingSet(matching={self.matching.name!r}, mappings={len(self._mappings)})"
