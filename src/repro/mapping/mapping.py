"""A single possible mapping between two schemas."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import MappingError
from repro.matching.correspondence import CorrespondenceKey

__all__ = ["Mapping"]


@dataclass(frozen=True)
class Mapping:
    """One possible mapping ``m_i`` of a schema matching.

    A mapping is a set of correspondences in which every source element and
    every target element appears at most once (the paper's requirement that
    an element "either has no correspondence, or only matches to one single
    element in another schema").

    Parameters
    ----------
    mapping_id:
        Index of the mapping within its :class:`~repro.mapping.mapping_set.MappingSet`.
    correspondences:
        The ``(source_id, target_id)`` pairs the mapping contains.
    score:
        Unnormalised mapping score (by default the sum of correspondence
        scores, following the paper and [Gal 2006]).
    probability:
        Probability ``p_i`` that the mapping is the true one; assigned by the
        mapping set when normalising scores.
    """

    mapping_id: int
    correspondences: frozenset[CorrespondenceKey]
    score: float
    probability: float = 0.0
    _target_index: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.score < 0:
            raise MappingError(f"mapping score must be non-negative, got {self.score!r}")
        if not (0.0 <= self.probability <= 1.0 + 1e-9):
            raise MappingError(
                f"mapping probability must be in [0, 1], got {self.probability!r}"
            )
        source_ids = [source_id for source_id, _ in self.correspondences]
        target_ids = [target_id for _, target_id in self.correspondences]
        if len(set(source_ids)) != len(source_ids):
            raise MappingError(
                f"mapping {self.mapping_id} maps some source element more than once"
            )
        if len(set(target_ids)) != len(target_ids):
            raise MappingError(
                f"mapping {self.mapping_id} maps some target element more than once"
            )
        # Cache the target -> source lookup; the dataclass is frozen so we
        # populate the pre-created dict in place.
        self._target_index.update(
            {target_id: source_id for source_id, target_id in self.correspondences}
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.correspondences)

    def __contains__(self, key: object) -> bool:
        return key in self.correspondences

    def source_ids(self) -> set[int]:
        """Source element ids that have a correspondence in this mapping."""
        return {source_id for source_id, _ in self.correspondences}

    def target_ids(self) -> set[int]:
        """Target element ids that have a correspondence in this mapping."""
        return set(self._target_index)

    def source_for_target(self, target_id: int) -> int | None:
        """Return the source element mapped to ``target_id``, or ``None``."""
        return self._target_index.get(target_id)

    def covers_targets(self, target_ids) -> bool:
        """``True`` when every target element in ``target_ids`` is mapped."""
        return all(target_id in self._target_index for target_id in target_ids)

    # ------------------------------------------------------------------ #
    # Overlap
    # ------------------------------------------------------------------ #
    def overlap_ratio(self, other: "Mapping") -> float:
        """The paper's o-ratio of two mappings: ``|mi ∩ mj| / |mi ∪ mj|``."""
        if not self.correspondences and not other.correspondences:
            return 1.0
        intersection = len(self.correspondences & other.correspondences)
        union = len(self.correspondences | other.correspondences)
        return intersection / union

    def with_probability(self, probability: float) -> "Mapping":
        """Return a copy of this mapping carrying ``probability``."""
        return Mapping(
            mapping_id=self.mapping_id,
            correspondences=self.correspondences,
            score=self.score,
            probability=probability,
        )

    def __repr__(self) -> str:
        return (
            f"Mapping(id={self.mapping_id}, correspondences={len(self.correspondences)}, "
            f"score={self.score:.3f}, p={self.probability:.4f})"
        )
