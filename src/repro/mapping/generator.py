"""High-level top-h possible-mapping generation.

:func:`generate_top_h_mappings` is the public entry point: it runs either the
plain Murty ranking (the paper's baseline) or the partition-based
divide-and-conquer approach (the paper's contribution, Algorithm 5), turns
the ranked correspondence sets into :class:`~repro.mapping.mapping.Mapping`
objects and normalises their scores into probabilities, yielding the
:class:`~repro.mapping.mapping_set.MappingSet` that the block tree and the
probabilistic twig queries consume.
"""

from __future__ import annotations

from enum import Enum

from repro.exceptions import MappingError
from repro.mapping.mapping import Mapping
from repro.mapping.mapping_set import MappingSet
from repro.mapping.murty import RankedMapping, rank_mappings_murty
from repro.mapping.partition import rank_mappings_partitioned
from repro.matching.matching import SchemaMatching

__all__ = ["GenerationMethod", "generate_top_h_mappings", "mapping_set_from_ranking"]


class GenerationMethod(str, Enum):
    """How to derive the top-h mappings from a schema matching."""

    #: Plain Murty ranking over the full bipartite (the paper's baseline).
    MURTY = "murty"
    #: Partition the matching first, rank each partition, merge (Algorithm 5).
    PARTITION = "partition"


def mapping_set_from_ranking(
    matching: SchemaMatching, ranking: list[RankedMapping]
) -> MappingSet:
    """Build a normalised :class:`MappingSet` from a ranked list of mappings."""
    if not ranking:
        raise MappingError("cannot build a mapping set from an empty ranking")
    mappings = [
        Mapping(mapping_id=index, correspondences=edges, score=score)
        for index, (score, edges) in enumerate(ranking)
    ]
    return MappingSet(matching, mappings, normalize=True)


def generate_top_h_mappings(
    matching: SchemaMatching,
    h: int,
    method: GenerationMethod | str = GenerationMethod.PARTITION,
    backend: str = "auto",
    merge_strategy: str = "lazy",
) -> MappingSet:
    """Generate the top-h possible mappings of ``matching``.

    Parameters
    ----------
    matching:
        The schema matching (set of scored correspondences).
    h:
        Number of mappings to retain.  Fewer may be returned when the
        matching admits fewer distinct mappings.
    method:
        :class:`GenerationMethod` (or its string value): ``"partition"``
        (default, the paper's fast approach) or ``"murty"`` (baseline).
    backend:
        Assignment backend (``"auto"``, ``"python"`` or ``"scipy"``).
    merge_strategy:
        Partition-merge strategy, ``"lazy"`` or ``"exhaustive"``; ignored by
        the Murty method.

    Returns
    -------
    MappingSet
        Mappings ordered by non-increasing score, ids ``0 .. len-1``, with
        probabilities proportional to their scores.
    """
    if h <= 0:
        raise MappingError(f"h must be positive, got {h}")
    method = GenerationMethod(method)
    if method is GenerationMethod.MURTY:
        ranking = rank_mappings_murty(matching, h, backend=backend)
    else:
        ranking = rank_mappings_partitioned(
            matching, h, backend=backend, merge_strategy=merge_strategy
        )
    return mapping_set_from_ranking(matching, ranking)
