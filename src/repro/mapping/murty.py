"""Ranking possible mappings: Murty's algorithm (the paper's baseline).

Given a schema matching, the top-h possible mappings are the h one-to-one
partial matchings of its bipartite with the highest total scores.  The paper
(and [Gal 2006]) obtains them with Murty's ranking algorithm [Murty 1968],
optionally in Pascoal et al.'s improved variant: repeatedly partition the
solution space around the best solution found so far, solving one assignment
problem per branch.

The implementation here uses the standard Lawler/Murty partitioning scheme on
the space of *mappings* (sets of real correspondence edges): after reporting
a solution ``{e_1, ..., e_k}`` obtained under constraints ``(forced,
forbidden)``, it creates the child subproblems

    forced ∪ {e_1, ..., e_{i-1}},  forbidden ∪ {e_i}      for i = 1..k

whose best solutions are pushed into a max-heap.  The subproblem spaces are
pairwise disjoint and jointly cover every other mapping, so popping the heap
in score order enumerates mappings in non-increasing score order without
duplicates.  Branching only on real (positive-weight) edges avoids the
degenerate duplicates that the image-augmented formulation produces when
zero-weight image edges are permuted.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.exceptions import AssignmentError
from repro.mapping.assignment import solve_max_weight_matching
from repro.mapping.bipartite import BipartiteGraph
from repro.matching.correspondence import CorrespondenceKey
from repro.matching.matching import SchemaMatching

__all__ = ["rank_mappings_murty", "rank_graph_murty"]

#: A ranked mapping: (total score, set of correspondence keys).
RankedMapping = tuple[float, frozenset[CorrespondenceKey]]


def rank_graph_murty(
    graph: BipartiteGraph,
    h: int,
    backend: str = "auto",
    initial_forced: Iterable[CorrespondenceKey] = (),
    initial_forbidden: Iterable[CorrespondenceKey] = (),
) -> list[RankedMapping]:
    """Return up to ``h`` best mappings of ``graph`` in non-increasing score order.

    Parameters
    ----------
    graph:
        The bipartite to rank.
    h:
        Number of mappings requested; fewer are returned when the solution
        space (under the initial constraints) is smaller.
    backend:
        Assignment backend passed through to
        :func:`repro.mapping.assignment.solve_max_weight_matching`.
    initial_forced / initial_forbidden:
        Optional constraints restricting the ranked space; used by tests and
        by incremental re-ranking scenarios.
    """
    if h <= 0:
        raise AssignmentError(f"h must be positive, got {h}")

    forced0 = tuple(sorted(initial_forced))
    forbidden0 = frozenset(initial_forbidden)
    score0, solution0 = solve_max_weight_matching(
        graph, forced=forced0, forbidden=forbidden0, backend=backend
    )

    # Max-heap keyed by score; the counter breaks ties deterministically.
    counter = 0
    heap: list[tuple[float, int, tuple, frozenset, frozenset]] = [
        (-score0, counter, forced0, forbidden0, solution0)
    ]
    results: list[RankedMapping] = []

    while heap and len(results) < h:
        negative_score, _, forced, forbidden, solution = heapq.heappop(heap)
        results.append((-negative_score, solution))

        # Branch on the real edges of the solution that were not forced.
        branch_edges = sorted(solution - set(forced))
        accumulated_forced = list(forced)
        for edge in branch_edges:
            child_forbidden = forbidden | {edge}
            child_forced = tuple(accumulated_forced)
            child_score, child_solution = solve_max_weight_matching(
                graph, forced=child_forced, forbidden=child_forbidden, backend=backend
            )
            counter += 1
            heapq.heappush(
                heap,
                (-child_score, counter, child_forced, child_forbidden, child_solution),
            )
            accumulated_forced.append(edge)

    return results


def rank_mappings_murty(
    matching: SchemaMatching,
    h: int,
    backend: str = "auto",
    full_bipartite: bool = True,
) -> list[RankedMapping]:
    """Rank the top-h mappings of a schema matching with plain Murty.

    ``full_bipartite=True`` reproduces the paper's baseline, which builds the
    bipartite over *all* ``|S.N| + |T.N|`` schema elements; ``False`` uses
    only the elements that occur in some correspondence (the reduced graph
    has the same ranking but smaller assignment problems, and is what the
    per-partition subproblems use).
    """
    graph = BipartiteGraph.from_matching(matching, include_unmatched_elements=full_bipartite)
    return rank_graph_murty(graph, h, backend=backend)
