"""Partition-based top-h mapping generation (Section V-B, Algorithm 5).

The paper observes that XML schema matchings are sparse: the bipartite of a
matching decomposes into many small connected components ("partitions").
Because partitions share no elements, the score of a global mapping is the
sum of independent per-partition contributions, so the global top-h mappings
can be obtained by

1. ranking the top-h mappings of every partition independently (with Murty's
   algorithm on a much smaller bipartite), and
2. merging the per-partition rankings, keeping the h best score sums.

Two merge strategies are provided:

* ``"lazy"`` (default) — a best-first merge over the cross product of two
  ranked lists using a heap; only O(h) combinations are materialised per
  merge step.
* ``"exhaustive"`` — materialise all |A| × |B| combinations and keep the best
  h; quadratic, used as the ablation baseline for the merge-strategy study.
"""

from __future__ import annotations

import heapq

from repro.exceptions import AssignmentError, MappingError
from repro.mapping.bipartite import BipartiteGraph
from repro.mapping.murty import RankedMapping, rank_graph_murty
from repro.matching.matching import SchemaMatching

__all__ = ["partition_matching", "merge_rankings", "rank_mappings_partitioned"]


def partition_matching(matching: SchemaMatching) -> list[BipartiteGraph]:
    """Return the partitions (maximal connected sub-bipartites) of a matching.

    Mirrors the paper's ``partition`` function: every element that occurs in
    some correspondence ends up in exactly one partition; elements without
    correspondences are ignored (they can only map to their image and thus
    contribute nothing to any mapping's score).
    """
    graph = BipartiteGraph.from_matching(matching, include_unmatched_elements=False)
    return graph.connected_components()


def merge_rankings(
    first: list[RankedMapping],
    second: list[RankedMapping],
    h: int,
    strategy: str = "lazy",
) -> list[RankedMapping]:
    """Merge two per-partition rankings into the top-h combined ranking.

    Both inputs must be sorted by non-increasing score; because the
    partitions are disjoint, a combined mapping is simply the union of one
    mapping from each list and its score is the sum of the two scores.

    Parameters
    ----------
    first, second:
        Ranked ``(score, correspondence set)`` lists.
    h:
        Number of combinations to keep.
    strategy:
        ``"lazy"`` (heap-based best-first enumeration) or ``"exhaustive"``
        (full cross product, used as an ablation baseline).

    Raises
    ------
    MappingError
        If ``h`` is not positive or the strategy is unknown.
    """
    if h <= 0:
        raise MappingError(f"h must be positive, got {h}")
    if not first:
        return second[:h]
    if not second:
        return first[:h]

    if strategy == "exhaustive":
        combinations = [
            (score_a + score_b, edges_a | edges_b)
            for score_a, edges_a in first
            for score_b, edges_b in second
        ]
        combinations.sort(key=lambda item: -item[0])
        return combinations[:h]

    if strategy != "lazy":
        raise MappingError(f"unknown merge strategy {strategy!r}; expected 'lazy' or 'exhaustive'")

    # Best-first enumeration of index pairs (i, j) ordered by score sum.
    merged: list[RankedMapping] = []
    visited: set[tuple[int, int]] = {(0, 0)}
    heap = [(-(first[0][0] + second[0][0]), 0, 0)]
    while heap and len(merged) < h:
        negative_score, i, j = heapq.heappop(heap)
        merged.append((-negative_score, first[i][1] | second[j][1]))
        if i + 1 < len(first) and (i + 1, j) not in visited:
            visited.add((i + 1, j))
            heapq.heappush(heap, (-(first[i + 1][0] + second[j][0]), i + 1, j))
        if j + 1 < len(second) and (i, j + 1) not in visited:
            visited.add((i, j + 1))
            heapq.heappush(heap, (-(first[i][0] + second[j + 1][0]), i, j + 1))
    return merged


def rank_mappings_partitioned(
    matching: SchemaMatching,
    h: int,
    backend: str = "auto",
    merge_strategy: str = "lazy",
) -> list[RankedMapping]:
    """Rank the top-h mappings of ``matching`` with the partitioning approach.

    This is the paper's Algorithm 5: partition the matching, rank each
    partition with Murty's algorithm, then fold the per-partition rankings
    together while keeping only the h best combined mappings.

    The result is identical (up to ties between equal-score mappings) to
    :func:`repro.mapping.murty.rank_mappings_murty`, but much faster on
    sparse matchings because every assignment problem solved is restricted to
    one small partition.
    """
    if h <= 0:
        raise AssignmentError(f"h must be positive, got {h}")
    partitions = partition_matching(matching)
    if not partitions:
        return [(0.0, frozenset())]

    combined: list[RankedMapping] = [(0.0, frozenset())]
    for partition in partitions:
        ranking = rank_graph_murty(partition, h, backend=backend)
        combined = merge_rankings(combined, ranking, h, strategy=merge_strategy)
    return combined
