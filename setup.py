"""Setup shim for environments without the `wheel` package.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` can fall back to a legacy editable install when
PEP 660 editable wheels cannot be built (offline environments without the
``wheel`` package).
"""
from setuptools import setup

setup()
