#!/usr/bin/env python3
"""Normalise pytest-benchmark JSON output into a ``BENCH_<run>.json`` artifact.

The CI ``perf-trajectory`` job runs the ratio-only benchmark gates with
``--benchmark-json`` and feeds the raw report(s) through this script, which
strips the volatile bulk (per-round timings, full machine info) down to a
small, stable trajectory record: one row per benchmark with its summary
statistics, stamped with the CI run id and commit.  The resulting
``BENCH_<run>.json`` files are uploaded as workflow artifacts, so the perf
trajectory of the project accumulates run by run instead of being discarded
with each CI log.

Standard library only; usable standalone::

    python -m pytest benchmarks/... --benchmark-json raw.json
    python scripts/perf_trajectory.py raw.json --run-id local --out artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["normalise_report", "gate_ratio_summary", "build_trajectory", "main"]

#: Trajectory record schema version (bump on incompatible shape changes).
SCHEMA_VERSION = 2

#: Benchmark statistics copied into a trajectory row (seconds).
_STAT_FIELDS = ("min", "max", "mean", "stddev", "median", "rounds", "iterations")


def _normalise_extra(value):
    """Round floats (ratios, latencies) so trajectory diffs stay stable."""
    if isinstance(value, float):
        return round(value, 4)
    if isinstance(value, dict):
        return {str(key): _normalise_extra(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_normalise_extra(item) for item in value]
    return value


def normalise_report(payload: dict) -> list[dict]:
    """One trajectory row per benchmark of a raw pytest-benchmark report.

    Rows are sorted by benchmark name so trajectory diffs are stable even
    when pytest collection order changes.  A benchmark's ``extra_info``
    (speedup ratios, executor configuration) is carried through with floats
    rounded, so the gates' measured ratios accumulate in the artifact
    alongside the absolute timings.
    """
    rows: list[dict] = []
    for benchmark in payload.get("benchmarks", []):
        stats = benchmark.get("stats", {})
        row: dict = {
            "name": benchmark.get("fullname") or benchmark.get("name"),
            "group": benchmark.get("group"),
        }
        for field in _STAT_FIELDS:
            row[field] = stats.get(field)
        extra = benchmark.get("extra_info")
        if extra:
            row["extra_info"] = _normalise_extra(extra)
        rows.append(row)
    rows.sort(key=lambda row: row["name"] or "")
    return rows


def gate_ratio_summary(rows: Sequence[dict]) -> dict:
    """Promote each gate's measured speedup ratios into one top-level map.

    Every ratio gate records its headline measurement in ``extra_info``
    under a key ending in ``speedup`` or ``ratio``; collecting those into
    ``gate_ratios`` (``{test_name: {key: value}}``) lets trajectory tooling
    track the gates' headroom across runs without digging through each
    benchmark row.
    """
    summary: dict[str, dict] = {}
    for row in rows:
        extra = row.get("extra_info") or {}
        ratios = {
            key: value
            for key, value in extra.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
            and (key.endswith("speedup") or key.endswith("ratio"))
        }
        if ratios:
            name = (row.get("name") or "").rsplit("::", 1)[-1]
            summary[name] = ratios
    return summary


def _machine_summary(payload: dict) -> dict:
    machine = payload.get("machine_info", {})
    return {
        "python_version": machine.get("python_version"),
        "machine": machine.get("machine"),
        "system": machine.get("system"),
        "cpu_count": (machine.get("cpu") or {}).get("count"),
    }


def build_trajectory(
    reports: Sequence[dict],
    *,
    run_id: str,
    commit: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> dict:
    """Merge raw reports into one stamped trajectory record."""
    benchmarks: list[dict] = []
    for report in reports:
        benchmarks.extend(normalise_report(report))
    benchmarks.sort(key=lambda row: row["name"] or "")
    return {
        "schema": SCHEMA_VERSION,
        "run_id": run_id,
        "commit": commit,
        "timestamp": timestamp,
        "num_benchmarks": len(benchmarks),
        "machine": _machine_summary(reports[0]) if reports else {},
        "gate_ratios": gate_ratio_summary(benchmarks),
        "benchmarks": benchmarks,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; writes ``<out>/BENCH_<run-id>.json`` and prints its path."""
    parser = argparse.ArgumentParser(
        description="Normalise pytest-benchmark JSON into a BENCH_<run>.json artifact"
    )
    parser.add_argument("reports", nargs="+", help="raw --benchmark-json output files")
    parser.add_argument("--run-id", required=True, help="CI run id (artifact suffix)")
    parser.add_argument("--commit", default=None, help="commit SHA to stamp")
    parser.add_argument("--timestamp", default=None, help="ISO timestamp to stamp")
    parser.add_argument("--out", default="artifacts", help="output directory")
    args = parser.parse_args(argv)

    payloads = []
    for report_path in args.reports:
        path = Path(report_path)
        if not path.exists():
            print(f"error: benchmark report {path} does not exist", file=sys.stderr)
            return 2
        payloads.append(json.loads(path.read_text()))

    trajectory = build_trajectory(
        payloads, run_id=args.run_id, commit=args.commit, timestamp=args.timestamp
    )
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{args.run_id}.json"
    out_path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(out_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
