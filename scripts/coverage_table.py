#!/usr/bin/env python3
"""Render a per-package coverage table from a coverage.py JSON report.

The CI coverage gate (``--cov-fail-under``) guards the total, but a total
hides *where* a regression landed.  This script aggregates the JSON report
(``--cov-report=json``) per package under ``src/repro`` and prints an
aligned table, so a drop is attributable to the subsystem that caused it.

Standard library only; usable standalone::

    python -m pytest --cov=repro --cov-report=json:coverage.json ...
    python scripts/coverage_table.py coverage.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["package_of", "package_rows", "format_table", "main"]


def package_of(path: str, root: str = "repro") -> str:
    """Package name of a measured file path.

    ``src/repro/engine/cache.py`` → ``repro.engine``; files directly under
    the root package (``src/repro/cli.py``) → ``repro``.  Paths outside the
    root package keep their first directory as the bucket name.
    """
    parts = Path(path).parts
    if root in parts:
        index = parts.index(root)
        remainder = parts[index + 1 : -1]  # directories below the root package
        return ".".join((root, *remainder)) if remainder else root
    return parts[0] if len(parts) > 1 else root


def package_rows(payload: dict, root: str = "repro") -> list[dict]:
    """Aggregate a coverage JSON payload into per-package rows.

    Each row carries ``package``, ``statements``, ``missing`` and
    ``percent`` (covered statements over total, 1 decimal).  Rows are sorted
    by package name; a final ``TOTAL`` row sums everything.
    """
    totals: dict[str, list[int]] = {}
    for file_path, data in payload.get("files", {}).items():
        summary = data.get("summary", {})
        statements = int(summary.get("num_statements", 0))
        missing = int(summary.get("missing_lines", 0))
        bucket = totals.setdefault(package_of(file_path, root), [0, 0])
        bucket[0] += statements
        bucket[1] += missing
    rows = []
    for package in sorted(totals):
        statements, missing = totals[package]
        covered = statements - missing
        rows.append(
            {
                "package": package,
                "statements": statements,
                "missing": missing,
                "percent": round(100.0 * covered / statements, 1) if statements else 100.0,
            }
        )
    statements = sum(row["statements"] for row in rows)
    missing = sum(row["missing"] for row in rows)
    rows.append(
        {
            "package": "TOTAL",
            "statements": statements,
            "missing": missing,
            "percent": (
                round(100.0 * (statements - missing) / statements, 1)
                if statements
                else 100.0
            ),
        }
    )
    return rows


def format_table(rows: Sequence[dict]) -> str:
    """Aligned text table of :func:`package_rows` output."""
    width = max([len("package")] + [len(str(row["package"])) for row in rows])
    lines = [
        f"{'package':<{width}}  {'stmts':>7}  {'miss':>6}  {'cover':>6}",
        "-" * (width + 25),
    ]
    for row in rows:
        lines.append(
            f"{row['package']:<{width}}  {row['statements']:>7}  "
            f"{row['missing']:>6}  {row['percent']:>5.1f}%"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; prints the per-package table for a coverage report."""
    parser = argparse.ArgumentParser(
        description="Per-package coverage table from a coverage.py JSON report"
    )
    parser.add_argument(
        "report", nargs="?", default="coverage.json", help="coverage JSON report path"
    )
    parser.add_argument("--root", default="repro", help="root package name")
    args = parser.parse_args(argv)

    path = Path(args.report)
    if not path.exists():
        print(f"error: coverage report {path} does not exist", file=sys.stderr)
        return 2
    payload = json.loads(path.read_text())
    print(format_table(package_rows(payload, root=args.root)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
