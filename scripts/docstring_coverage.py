#!/usr/bin/env python3
"""Docstring-coverage gate over the library's public API surface.

The public API is what ``repro.__all__`` exports.  This script imports the
package, walks every exported symbol — and, for exported classes, every
public method and property — and reports the fraction that carry a
non-trivial docstring.  CI (the ``lint-and-types`` job) fails the build when
coverage drops below the ``--min`` threshold, so an undocumented public
symbol can never land silently.

Standard library only; usable standalone::

    PYTHONPATH=src python scripts/docstring_coverage.py --min 95
    python scripts/docstring_coverage.py --list-missing
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["collect_symbols", "coverage_report", "main"]

#: A docstring shorter than this (after stripping) counts as missing: a
#: placeholder like "TODO" or "x" documents nothing.
MIN_DOCSTRING_CHARS = 10


def _documented(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc) and len(doc.strip()) >= MIN_DOCSTRING_CHARS


def _is_public_member(name: str) -> bool:
    return not name.startswith("_")


def collect_symbols(package) -> tuple[list[tuple[str, bool]], list[str]]:
    """Walk ``package.__all__``; return ``(symbols, skipped_data_names)``.

    ``symbols`` is a list of ``(dotted name, documented?)`` rows covering
    every exported class and callable plus the public methods and properties
    defined by exported classes (inherited members are attributed to the
    class that defines them and only counted for exported classes).  Plain
    data exports (tuples, dicts, strings, ...) carry their *type's*
    docstring, which proves nothing, so they are excluded from the
    denominator and returned in ``skipped_data_names`` instead.
    """
    rows: list[tuple[str, bool]] = []
    skipped: list[str] = []
    seen_classes: set[type] = set()
    for name in sorted(getattr(package, "__all__", [])):
        obj = getattr(package, name)
        if inspect.isclass(obj):
            rows.append((name, _documented(obj)))
            if obj in seen_classes:
                continue
            seen_classes.add(obj)
            for member_name, member in vars(obj).items():
                if not _is_public_member(member_name):
                    continue
                if isinstance(member, property):
                    rows.append((f"{name}.{member_name}", _documented(member)))
                elif inspect.isfunction(member) or isinstance(
                    member, (classmethod, staticmethod)
                ):
                    func = member.__func__ if not inspect.isfunction(member) else member
                    rows.append((f"{name}.{member_name}", _documented(func)))
        elif callable(obj):
            rows.append((name, _documented(obj)))
        else:
            skipped.append(name)
    return rows, skipped


def coverage_report(rows: Sequence[tuple[str, bool]]) -> dict:
    """Aggregate symbol rows into ``{total, documented, percent, missing}``."""
    total = len(rows)
    documented = sum(1 for _, ok in rows if ok)
    return {
        "total": total,
        "documented": documented,
        "percent": round(100.0 * documented / total, 2) if total else 100.0,
        "missing": sorted(name for name, ok in rows if not ok),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns 0 when coverage meets the threshold."""
    parser = argparse.ArgumentParser(
        description="Docstring coverage over the public API (repro.__all__)"
    )
    parser.add_argument("--min", type=float, default=95.0, dest="minimum",
                        help="fail below this coverage percentage (default 95)")
    parser.add_argument("--package", default="repro", help="package to audit")
    parser.add_argument("--list-missing", action="store_true",
                        help="print every undocumented symbol")
    args = parser.parse_args(argv)

    # Allow running from a source checkout without installing the package.
    src = Path(__file__).resolve().parents[1] / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))
    try:
        package = __import__(args.package)
    except ImportError as error:
        print(f"error: cannot import {args.package}: {error}", file=sys.stderr)
        return 2

    rows, skipped = collect_symbols(package)
    report = coverage_report(rows)
    print(
        f"docstring coverage: {report['documented']}/{report['total']} public "
        f"symbols ({report['percent']:.1f}%), {len(skipped)} data exports skipped"
    )
    if args.list_missing or report["percent"] < args.minimum:
        for name in report["missing"]:
            print(f"  missing: {name}")
    if report["percent"] < args.minimum:
        print(
            f"error: coverage {report['percent']:.1f}% is below the "
            f"{args.minimum:.1f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
