#!/usr/bin/env python3
"""Verify that intra-repo markdown links resolve to real files.

Documentation rots when a refactor renames a file that README.md or docs/
still point at.  This script scans every tracked ``*.md`` file for inline
markdown links (``[text](target)``), resolves each *relative* target against
the linking file, and fails when the target does not exist.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``) are
skipped — the gate is about repository structure, not the internet.

Standard library only; usable standalone::

    python scripts/check_markdown_links.py          # scan the repo root
    python scripts/check_markdown_links.py --root docs
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["find_markdown_files", "extract_links", "check_file", "broken_links", "main"]

#: Inline markdown links: [text](target "optional title")
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

#: Directories never scanned for markdown files.
_EXCLUDED_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}

#: Link schemes that are not intra-repo file references.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def find_markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` file under ``root``, excluding tool/VCS directories."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in _EXCLUDED_DIRS for part in path.parts):
            files.append(path)
    return files


def extract_links(text: str) -> list[str]:
    """The link targets of every inline markdown link in ``text``.

    >>> extract_links("see [the docs](docs/architecture.md) and [x](http://e)")
    ['docs/architecture.md', 'http://e']
    """
    return [match.group(1) for match in _LINK_PATTERN.finditer(text)]


def check_file(markdown_file: Path) -> tuple[int, list[str]]:
    """``(links found, broken relative targets)`` of one markdown file."""
    links = extract_links(markdown_file.read_text(encoding="utf-8"))
    broken = []
    for target in links:
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (markdown_file.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(target)
    return len(links), broken


def broken_links(markdown_file: Path) -> list[str]:
    """Relative link targets of ``markdown_file`` that do not resolve."""
    return check_file(markdown_file)[1]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns 0 when every intra-repo link resolves."""
    parser = argparse.ArgumentParser(
        description="Check that intra-repo markdown links resolve"
    )
    parser.add_argument("--root", default=".", help="directory to scan (default: .)")
    args = parser.parse_args(argv)

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2

    files = find_markdown_files(root)
    failures = 0
    checked = 0
    for markdown_file in files:
        num_links, bad = check_file(markdown_file)
        checked += num_links
        for target in bad:
            print(f"{markdown_file}: broken link -> {target}")
            failures += 1
    print(
        f"checked {checked} links in {len(files)} markdown files: "
        f"{failures} broken"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
